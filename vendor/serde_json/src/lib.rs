//! Workspace-local stand-in for `serde_json` (the build environment has no
//! crates.io access): a JSON emitter and recursive-descent parser over the
//! local `serde` stub's `Value` tree.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Compact JSON for any `Serialize` type.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error::new(format!("cannot serialise non-finite number {n}")));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
            } else {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out)?;
            }
            if !fields.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars =
                std::str::from_utf8(rest).map_err(|_| Error::new("non-utf8 string"))?.chars();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("-2.25e2").unwrap(), -225.0);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_value_roundtrips() {
        let v = Value::Obj(vec![
            ("xs".to_string(), Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])),
            ("name".to_string(), Value::Str("sane".to_string())),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"xs":[1,2],"name":"sane","none":null}"#);
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"xs\": ["));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1,2,]garbage").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
    }
}
