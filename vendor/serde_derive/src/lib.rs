//! Workspace-local stand-in for `serde_derive` (the build environment has
//! no crates.io access, so `syn`/`quote` are unavailable — the item is
//! parsed with a small hand-rolled token cursor instead).
//!
//! Supports the shapes this workspace derives on:
//!
//! * structs with named fields,
//! * enums of unit and tuple variants,
//!
//! and generates impls of the local `serde` stub's `Serialize` /
//! `Deserialize` traits using serde's externally-tagged enum encoding
//! (`"Variant"`, `{"Variant": x}`, `{"Variant": [a, b]}`), so the JSON
//! matches what real serde would produce.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Skips any `#[...]` attribute groups (doc comments included) at the
/// cursor position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    while matches!(ident_at(&tokens, i).as_deref(), Some("pub")) {
        i += 1;
        // Skip a possible `(crate)`-style visibility group.
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = ident_at(&tokens, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i).expect("expected item name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub does not support generic types (derive on `{name}`)");
    }
    let body = loop {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("expected braced body for `{name}`"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_struct_fields(body) },
        "enum" => Item::Enum { name, variants: parse_enum_variants(body) },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        while matches!(ident_at(&tokens, i).as_deref(), Some("pub")) {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let field = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("expected field name, found {:?}", tokens.get(i)));
        fields.push(field);
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        // Skip the type: consume until a top-level comma. Generic angle
        // brackets contain no commas at punct level we care about, so
        // track `<`/`>` depth.
        let mut depth = 0i32;
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("expected variant name, found {:?}", tokens.get(i)));
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!(
                        "serde_derive stub does not support struct-like enum variants (`{name}`)"
                    )
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut entries = String::new();
            for f in &fields {
                let _ = write!(
                    entries,
                    "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"
                );
            }
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, arity) in &variants {
                match arity {
                    0 => {
                        let _ =
                            write!(arms, "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),");
                    }
                    1 => {
                        let _ = write!(
                            arms,
                            "{name}::{v}(x0) => serde::Value::Obj(vec![(\"{v}\".to_string(), serde::Serialize::to_value(x0))]),"
                        );
                    }
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{v}({}) => serde::Value::Obj(vec![(\"{v}\".to_string(), serde::Value::Arr(vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out.parse().expect("serde_derive stub generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let _ = write!(
                    inits,
                    "{f}: serde::Deserialize::from_value(serde::value::field(fields, \"{f}\"))\
                         .map_err(|e| serde::DeError::new(format!(\"{name}.{f}: {{e}}\")))?,"
                );
            }
            let bind = if fields.is_empty() { "_fields" } else { "fields" };
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         let {bind} = v.as_obj().ok_or_else(|| serde::DeError::new(\
                             format!(\"expected object for {name}, found {{v:?}}\")))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, arity) in &variants {
                match arity {
                    0 => {
                        let _ = write!(unit_arms, "\"{v}\" => Ok({name}::{v}),");
                    }
                    1 => {
                        let _ = write!(
                            tagged_arms,
                            "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(payload)?)),"
                        );
                    }
                    n => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                                     serde::DeError::new(\"missing tuple element {k} for {name}::{v}\"))?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{v}\" => {{\n\
                                 let items = payload.as_arr().ok_or_else(|| serde::DeError::new(\
                                     \"expected array payload for {name}::{v}\"))?;\n\
                                 Ok({name}::{v}({}))\n\
                             }},",
                            gets.join(",")
                        );
                    }
                }
            }
            let payload_bind = if tagged_arms.is_empty() { "_payload" } else { "payload" };
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::DeError::new(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                                 let (tag, {payload_bind}) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(serde::DeError::new(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => Err(serde::DeError::new(format!(\
                                 \"expected variant string or single-key object for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out.parse().expect("serde_derive stub generated invalid Deserialize impl")
}
