//! Workspace-local stand-in for `serde` (the build environment has no
//! crates.io access).
//!
//! Instead of serde's visitor-based serializer model, this stub routes
//! everything through one in-memory [`value::Value`] tree: `Serialize`
//! lowers a type to a `Value`, `Deserialize` raises it back. The derive
//! macros (re-exported from the local `serde_derive` proc-macro crate)
//! generate the same externally-tagged representation real serde uses, so
//! JSON produced by this stub matches what `serde_json` proper would emit
//! for the types in this workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialization failure with a human-readable path/context message.
#[derive(Clone, Debug)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a [`Value`] tree back into `Self`.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number for {}, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple_serde {
    ($(($($name:ident / $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => Ok(($(
                        $name::from_value(items.get($idx).ok_or_else(|| {
                            DeError::new(format!("missing tuple element {}", $idx))
                        })?)?,
                    )+)),
                    other => Err(DeError::new(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple_serde! {
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => {
                fields.iter().map(|(k, val)| Ok((k.clone(), T::from_value(val)?))).collect()
            }
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let some: Option<u8> = Some(9);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("nope".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(false)).is_err());
    }
}
