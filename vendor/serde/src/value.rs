//! The in-memory data model shared by `Serialize`, `Deserialize` and the
//! local `serde_json` stub.

/// A JSON-shaped value tree. Object fields keep insertion order so emitted
/// JSON matches struct declaration order (as real serde does).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Variant name, if this is a string (a unit enum variant).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up `name` in an object's fields; absent fields read as `Null` so
/// `Option` fields tolerate omission.
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}
