//! Workspace-local stand-in for `criterion` (the build environment has no
//! crates.io access).
//!
//! Mirrors the subset of the criterion API the bench crate uses —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — but performs a plain
//! timed loop (`sample_size` iterations after one warm-up) and prints the
//! mean wall-clock time per iteration. No statistics, no reports.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        run_benchmark(&name.into(), self.sample_size, &mut f);
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs one benchmark identified by name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group. (The stub prints per-benchmark lines eagerly, so
    /// this only exists for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: usize,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once per sample iteration, accumulating wall-clock
    /// time. The routine's output is returned through `black_box` so the
    /// optimiser cannot delete the computation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Opaque value sink. `std::hint::black_box` re-exported for call sites
/// that import it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass, untimed.
    let mut warm = Bencher { iters: 1, elapsed_ns: 0 };
    f(&mut warm);
    let mut b = Bencher { iters: sample_size, elapsed_ns: 0 };
    f(&mut b);
    let total = b.elapsed_ns.max(1);
    let per_iter = total / sample_size as u128;
    println!("bench {label:<50} {:>12} ns/iter ({sample_size} iters)", per_iter);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0usize;
        let mut b = Bencher { iters: 7, elapsed_ns: 0 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &5usize, |b, &x| {
            b.iter(|| ran += x)
        });
        group.bench_function("plain", |b| b.iter(|| ran += 1));
        group.finish();
        // 1 warm-up + 3 timed per benchmark.
        assert_eq!(ran, 5 * 4 + 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("64x64").0, "64x64");
    }
}
