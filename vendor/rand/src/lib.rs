//! Workspace-local stand-in for the `rand` crate, used because this build
//! environment has no network access to crates.io.
//!
//! It implements exactly the subset of the rand 0.8 API this workspace
//! uses: [`rngs::StdRng`] (seeded, deterministic), [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`, `choose_multiple`).
//!
//! Deliberately absent: `thread_rng` and `from_entropy`. Every RNG in this
//! workspace must be explicitly seeded (reproducible search runs), and the
//! xtask lint harness enforces that at the source level.

#![forbid(unsafe_code)]

pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed. Only `seed_from_u64` is provided; the
/// byte-array `from_seed` of the real crate is unused in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A value that can be drawn uniformly from an RNG (the stand-in for the
/// real crate's `Standard` distribution).
pub trait UniformDraw: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformDraw for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformDraw for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformDraw for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformDraw for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformDraw for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as UniformDraw>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as UniformDraw>::draw(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: UniformDraw>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1], got {p}");
        <f64 as UniformDraw>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded through SplitMix64 —
    /// the same construction the real `rand` crate documents for
    /// reproducible, explicitly-seeded use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..8).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 8);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
