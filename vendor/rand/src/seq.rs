//! Slice sampling helpers (`SliceRandom`), mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Iterator over elements chosen without replacement by
/// [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    items: std::vec::IntoIter<&'a T>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.items.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them if the
    /// slice is shorter).
    fn choose_multiple<R: RngCore>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // positions end up holding a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
        SliceChooseIter { items: picked.into_iter() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements left unshuffled is vanishingly unlikely");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..10).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4, "choose_multiple repeated an element");
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 10);
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng).is_some());
    }
}
