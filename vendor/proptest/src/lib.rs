//! Workspace-local stand-in for `proptest` (the build environment has no
//! crates.io access).
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, integer/float range strategies, tuple strategies,
//! [`collection::vec`], `prop_map`, [`ProptestConfig`] and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case prints its seed
//! and case index instead.

#![forbid(unsafe_code)]

pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration. Only `cases` is honoured; the other fields exist
/// so `..ProptestConfig::default()` spreads from the real crate's call
/// sites keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Unused; kept for source compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig;
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test seed derived from the test name, so every test
/// explores a stable but distinct case sequence.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut __rng = $crate::strategy::new_rng(seed, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u8..5, 0u8..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn vec_strategy_respects_lengths(v in prop::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn prop_map_applies(double in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(double % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
