//! Value-generation strategies for the proptest stand-in.
//!
//! A [`Strategy`] produces one value per call from a seeded [`StdRng`];
//! there is no value tree and no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Builds the RNG for one test case. The case index is mixed into the
/// seed (SplitMix64-style) so cases are independent but reproducible.
pub fn new_rng(seed: u64, case: u32) -> StdRng {
    let mut z = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Length specification for [`vec`]: a fixed length, `lo..hi`, or
/// `lo..=hi`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = new_rng(7, 0);
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&y));
            let z = (5i32..=5).generate(&mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn cases_differ_but_reproduce() {
        let a: Vec<u64> = (0..5).map(|c| (0u64..1_000_000).generate(&mut new_rng(1, c))).collect();
        let b: Vec<u64> = (0..5).map(|c| (0u64..1_000_000).generate(&mut new_rng(1, c))).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn just_and_map_compose() {
        let mut rng = new_rng(2, 0);
        assert_eq!(Just(41).generate(&mut rng), 41);
        let s = (1u8..4).prop_map(|x| x as usize * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    #[test]
    fn vec_of_tuples() {
        let s = vec((0u8..4, 0u8..4), 1..5);
        let mut rng = new_rng(3, 1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 4));
        }
    }
}
