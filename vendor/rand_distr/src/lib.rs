//! Workspace-local stand-in for `rand_distr` (the build environment has no
//! crates.io access). Provides the two distributions this workspace uses:
//! [`Normal`] (Box–Muller) and [`Binomial`] (exact Bernoulli summation for
//! small `n`, Gaussian approximation for large `n`).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that produce samples of `T` from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error from invalid [`Normal`] parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

fn standard_normal<R: RngCore>(rng: &mut R) -> f64 {
    // Box–Muller; u1 is nudged away from zero so ln() stays finite.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Float types [`Normal`] is defined over (a single generic `new` keeps
/// `Normal::new(0.0f32, 1.0)` unambiguous, as with the real crate).
pub trait NormalFloat: Copy {
    fn valid_std_dev(self) -> bool;
    fn from_standard(z: f64) -> Self;
    fn mul_add_sample(self, std_dev: Self, z: Self) -> Self;
}

macro_rules! impl_normal_float {
    ($($t:ty),*) => {$(
        impl NormalFloat for $t {
            fn valid_std_dev(self) -> bool {
                self.is_finite() && self >= 0.0
            }
            fn from_standard(z: f64) -> Self {
                z as $t
            }
            fn mul_add_sample(self, std_dev: Self, z: Self) -> Self {
                self + std_dev * z
            }
        }
    )*};
}
impl_normal_float!(f32, f64);

impl<T: NormalFloat> Normal<T> {
    pub fn new(mean: T, std_dev: T) -> Result<Self, NormalError> {
        if std_dev.valid_std_dev() {
            Ok(Self { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<T: NormalFloat> Distribution<T> for Normal<T> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> T {
        self.mean.mul_add_sample(self.std_dev, T::from_standard(standard_normal(rng)))
    }
}

/// Error from invalid [`Binomial`] parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinomialError;

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("binomial probability must be in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// Binomial distribution: number of successes in `n` trials of
/// probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Self { n, p })
        } else {
            Err(BinomialError)
        }
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        // Exact for small n; for large n the Gaussian approximation is
        // accurate (np and n(1-p) both grow) and O(1) instead of O(n).
        if self.n <= 256 {
            (0..self.n).filter(|_| rng.gen_bool(self.p)).count() as u64
        } else {
            let mean = self.n as f64 * self.p;
            let sd = (mean * (1.0 - self.p)).sqrt();
            let draw = (mean + sd * standard_normal(rng)).round();
            draw.clamp(0.0, self.n as f64) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(2.0f64, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_negative_sd() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f64, f64::NAN).is_err());
    }

    #[test]
    fn binomial_bounds_and_mean_small_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Binomial::new(20, 0.3).unwrap();
        let n = 5_000;
        let total: u64 = (0..n)
            .map(|_| {
                let v = d.sample(&mut rng);
                assert!(v <= 20);
                v
            })
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn binomial_mean_large_n() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Binomial::new(1_000_000, 0.01).unwrap();
        let n = 200;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10_000.0).abs() < 100.0, "mean {mean}");
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut rng), 10);
        assert!(Binomial::new(10, 1.5).is_err());
    }
}
