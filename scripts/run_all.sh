#!/usr/bin/env bash
# Regenerates every table and figure of the SANE paper.
#
#   scripts/run_all.sh            # laptop budget (~45 min on 2 cores)
#   BUDGET=paper scripts/run_all.sh   # full paper protocol (hours)
#
# Individual exhibits can always be run directly, e.g.
#   cargo run -p sane-bench --release --bin table6 -- --paper-scale
set -euo pipefail

OUT="${1:-results}"
BIN=target/release
LOGS="$OUT/logs"
mkdir -p "$LOGS"

if [ "${BUDGET:-laptop}" = paper ]; then
  COMMON=(--paper-scale)
  LEAN=(--paper-scale)
else
  # Laptop budget: 5% dataset scale, trimmed candidate counts.
  COMMON=(--scale 0.05 --samples 12 --search-epochs 30 --train-epochs 50 --repeats 3)
  LEAN=(--scale 0.05 --samples 10 --search-epochs 25 --train-epochs 40 --repeats 1)
fi

run() {
  local name="$1"; shift
  echo "=== $name: $* ==="
  local start=$SECONDS
  "$BIN/$name" "$@" 2>&1 | tee "$LOGS/$name.log"
  echo "--- $name finished in $((SECONDS - start)) s ---"
}

# Timing-sensitive exhibits first (run with an otherwise idle machine).
run table7 "${LEAN[@]}" --out "$OUT"
run fig3   "${LEAN[@]}" --dataset cora --dataset ppi --out "$OUT"

# The centerpiece comparison.
run table6 "${COMMON[@]}" --out "$OUT"

# DB task.
run table8 "${COMMON[@]}" --out "$OUT"

# Search-space and aggregator ablations.
run table9  "${LEAN[@]}" --repeats 2 --out "$OUT"
run table10 "${LEAN[@]}" --repeats 2 --out "$OUT"

# Searched architectures and the remaining ablations.
run fig2  "${LEAN[@]}" --out "$OUT"
run fig4a "${LEAN[@]}" --repeats 2 --dataset cora --dataset citeseer --out "$OUT"
run fig4b "${LEAN[@]}" --repeats 2 --dataset cora --out "$OUT"

echo "All exhibits done; JSON in $OUT/, logs in $LOGS/."
