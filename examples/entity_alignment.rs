//! The DB task (paper Section IV-D): cross-lingual entity alignment on a
//! synthetic DBP15K-like dataset — JAPE baseline, GCN-Align, and SANE's
//! searched node-aggregator combination, all evaluated with Hits@K.
//!
//! Run: `cargo run --release --example entity_alignment`

use sane::align::{
    sane_align_search, train_gnn_align, train_jape_like, AlignSearchConfig, AlignTask,
    AlignTrainConfig, HITS_KS,
};
use sane::data::AlignmentConfig;
use sane::gnn::{Architecture, NodeAggKind};

fn print_row(name: &str, out: &sane::align::AlignOutcome) {
    let fmt = |v: &[f64]| {
        v.iter().zip(HITS_KS).map(|(x, k)| format!("@{k}={x:.1}")).collect::<Vec<_>>().join(" ")
    };
    println!("{name:<12} ZH->EN: {}   EN->ZH: {}", fmt(&out.forward), fmt(&out.backward));
}

fn main() {
    // Two noisy structural views of one latent knowledge base, 600
    // aligned entities, 30/10/60 seed split (the GCN-Align protocol).
    let data = AlignmentConfig::dbp15k().scaled(0.04).generate();
    println!(
        "dataset: {} entities, view edges {} / {}, {} train pairs",
        data.graph1.num_nodes(),
        data.graph1.num_edges(),
        data.graph2.num_edges(),
        data.train_pairs.len()
    );
    let task = AlignTask::new(data);
    let cfg = AlignTrainConfig { embed_dim: 32, epochs: 60, seed: 4, ..Default::default() };

    print_row("JAPE", &train_jape_like(&task, &cfg));

    let gcn = Architecture::uniform(NodeAggKind::Gcn, 2, None);
    print_row("GCN-Align", &train_gnn_align(&task, &gcn, &cfg));

    // SANE: search the 2-layer node-aggregator combination (the layer
    // aggregator is removed for this task, as in the paper).
    let search = AlignSearchConfig { epochs: 25, hidden: 32, seed: 4, ..Default::default() };
    let arch = sane_align_search(&task, &search);
    println!("searched architecture: {}", arch.describe());
    print_row("SANE", &train_gnn_align(&task, &arch, &cfg));
}
