//! Using the library as a plain GNN toolkit: build each human-designed
//! architecture from the paper's Table II by hand, train it on a synthetic
//! citation graph and print a small leaderboard.
//!
//! Run: `cargo run --release --example model_zoo`

use sane::core::prelude::*;
use sane::data::CitationConfig;
use sane::gnn::AggChoice;

fn main() {
    let task = Task::node(CitationConfig::citeseer().scaled(0.08).generate());
    let hyper = ModelHyper { hidden: 32, ..ModelHyper::default() };
    let cfg = TrainConfig { epochs: 80, seed: 3, ..TrainConfig::default() };

    // Every Table II baseline is a point in the SANE search space
    // (uniform aggregator, optional JK layer aggregator) — plus LGCN,
    // which uses the CNN aggregator outside `O_n`.
    let mut rows: Vec<(String, f64)> = Vec::new();
    for kind in NodeAggKind::ALL {
        let plain = Architecture::uniform(kind, 2, None);
        let out = train_architecture(&task, &plain, &hyper, &cfg);
        rows.push((kind.name().to_string(), out.test_metric));

        let jk = Architecture::uniform(kind, 2, Some(LayerAggKind::Concat));
        let out = train_architecture(&task, &jk, &hyper, &cfg);
        rows.push((format!("{}-JK", kind.name()), out.test_metric));
    }
    let lgcn = Architecture::uniform(AggChoice::Cnn, 2, None);
    let out = train_architecture(&task, &lgcn, &hyper, &cfg);
    rows.push(("LGCN (CNN agg)".into(), out.test_metric));

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite metrics"));
    println!("{:<24} test accuracy", "model");
    println!("{}", "-".repeat(40));
    for (name, acc) in &rows {
        println!("{name:<24} {acc:.4}");
    }
    println!(
        "\nNote how no single aggregator dominates across datasets — the\n\
         motivation for searching data-specific architectures (paper §I)."
    );
}
