//! Quickstart: search a GNN architecture on a synthetic citation graph,
//! then retrain it from scratch and report accuracy.
//!
//! Run: `cargo run --release --example quickstart`

use sane::core::prelude::*;
use sane::data::CitationConfig;

fn main() {
    // 1. A Cora-like dataset at 10% scale (~270 nodes) so the example runs
    //    in seconds on a laptop.
    let dataset = CitationConfig::cora().scaled(0.1).generate();
    println!(
        "dataset: {} nodes, {} edges, {} features, {} classes",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.feature_dim(),
        dataset.num_classes
    );
    let task = Task::node(dataset);

    // 2. Run the SANE differentiable search (Algorithm 1): one supernet,
    //    alternating α (validation loss) and w (training loss) steps.
    let search_cfg = SaneSearchConfig {
        supernet: SupernetConfig { k: 3, hidden: 16, ..Default::default() },
        epochs: 40,
        seed: 1,
        ..Default::default()
    };
    println!(
        "searching ({} supernet epochs over 11^3 * 2^3 * 3 = 31,944 architectures)...",
        search_cfg.epochs
    );
    let found = sane_search(&task, &search_cfg);
    println!("search took {:.1}s", found.wall_seconds);
    println!("derived architecture: {}", found.arch.describe());

    // 3. Retrain the derived architecture from scratch.
    let hyper = ModelHyper { hidden: 32, ..ModelHyper::default() };
    let train_cfg = TrainConfig { epochs: 100, seed: 1, ..TrainConfig::default() };
    let outcome = train_architecture(&task, &found.arch, &hyper, &train_cfg);
    println!(
        "retrained: val accuracy {:.4}, test accuracy {:.4} ({} epochs)",
        outcome.val_metric, outcome.test_metric, outcome.epochs_run
    );

    // 4. Compare against a plain GCN trained identically.
    let gcn = Architecture::uniform(NodeAggKind::Gcn, 3, None);
    let baseline = train_architecture(&task, &gcn, &hyper, &train_cfg);
    println!("GCN baseline: test accuracy {:.4}", baseline.test_metric);
}
