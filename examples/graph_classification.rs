//! Whole-graph classification — the paper's future-work extension: search
//! the node-aggregation architecture *and* the graph pooling readout
//! jointly, on a synthetic topology-family dataset (ER vs BA vs
//! two-community graphs).
//!
//! Run: `cargo run --release --example graph_classification`

use sane::core::graphcls::{
    graphcls_search, train_graph_classifier, GraphClsGenotype, GraphClsSearchConfig, GraphClsSpace,
    GraphClsTask,
};
use sane::core::prelude::*;
use sane::data::GraphClsConfig;
use sane::gnn::PoolingKind;

fn main() {
    let data = GraphClsConfig::topology().scaled(0.5).generate();
    println!(
        "dataset: {} graphs ({} classes), {}-{} nodes each",
        data.graphs.len(),
        data.num_classes,
        data.graphs.iter().map(|g| g.graph.num_nodes()).min().unwrap(),
        data.graphs.iter().map(|g| g.graph.num_nodes()).max().unwrap(),
    );
    let task = GraphClsTask::new(data);
    println!("extended search space: {} genotypes\n", GraphClsSpace { k: 2 }.space().size());

    let hyper = ModelHyper { hidden: 16, dropout: 0.2, ..ModelHyper::default() };
    let cfg = TrainConfig { epochs: 60, seed: 5, ..TrainConfig::default() };

    // Hand-designed baselines: GIN + each pooling readout.
    for pooling in PoolingKind::ALL {
        let genotype =
            GraphClsGenotype { arch: Architecture::uniform(NodeAggKind::Gin, 2, None), pooling };
        let out = train_graph_classifier(&task, &genotype, &hyper, &cfg);
        println!("GIN + {:<9} test accuracy {:.3}", pooling.name(), out.test_metric);
    }

    // Differentiable search over architecture AND pooling.
    let search_cfg = GraphClsSearchConfig { epochs: 30, seed: 5, ..Default::default() };
    let genotype = graphcls_search(&task, &search_cfg);
    println!("\nsearched genotype: {}", genotype.describe());
    let out = train_graph_classifier(&task, &genotype, &hyper, &cfg);
    println!("searched model: test accuracy {:.3}", out.test_metric);
}
