//! Compare every search algorithm in the crate on one dataset: Random,
//! Bayesian (TPE), regularized Evolution, GraphNAS-style REINFORCE and the
//! SANE differentiable search — all over the same 11³·2³·3 space.
//!
//! Run: `cargo run --release --example search_methods`

use std::time::Instant;

use sane::core::prelude::*;
use sane::data::CitationConfig;

fn main() {
    let task = Task::node(CitationConfig::cora().scaled(0.08).generate());
    let space = SaneSpace::paper();
    let cat = space.space();
    println!("search space: {} architectures\n", cat.size());

    let hyper = ModelHyper { hidden: 32, ..ModelHyper::default() };
    let cfg = TrainConfig { epochs: 50, seed: 0, ..TrainConfig::default() };
    let budget = 12;

    let mut rows: Vec<(String, f64, f64, String)> = Vec::new();

    // The four trial-and-error searchers share one oracle construction.
    type Driver<'a> = Box<dyn FnOnce(&mut GenomeOracle<'_>) + 'a>;
    let searchers: Vec<(&str, Driver)> = vec![
        (
            "Random",
            Box::new(move |o: &mut GenomeOracle<'_>| {
                random_search(
                    &SaneSpace::paper().space(),
                    o,
                    &RandomSearchConfig { samples: budget, seed: 1 },
                )
            }),
        ),
        (
            "Bayesian (TPE)",
            Box::new(move |o: &mut GenomeOracle<'_>| {
                tpe_search(
                    &SaneSpace::paper().space(),
                    o,
                    &TpeConfig { samples: budget, warmup: 4, seed: 1, ..TpeConfig::default() },
                )
            }),
        ),
        (
            "Evolution",
            Box::new(move |o: &mut GenomeOracle<'_>| {
                evolution_search(
                    &SaneSpace::paper().space(),
                    o,
                    &EvolutionConfig { evaluations: budget, population: 6, tournament: 3, seed: 1 },
                )
            }),
        ),
        (
            "REINFORCE",
            Box::new(move |o: &mut GenomeOracle<'_>| {
                reinforce_search(
                    &SaneSpace::paper().space(),
                    o,
                    &ReinforceConfig {
                        episodes: budget,
                        final_samples: 3,
                        seed: 1,
                        ..ReinforceConfig::default()
                    },
                )
            }),
        ),
    ];

    for (name, drive) in searchers {
        let start = Instant::now();
        let mut oracle = GenomeOracle::new(|g: &[usize]| {
            train_architecture(&task, &space.decode(g), &hyper, &cfg)
        });
        drive(&mut oracle);
        let (genome, outcome, _) = oracle.finish();
        rows.push((
            name.to_string(),
            outcome.test_metric,
            start.elapsed().as_secs_f64(),
            space.decode(&genome).describe(),
        ));
    }

    // The differentiable search trains one supernet instead of `budget`
    // separate models.
    let start = Instant::now();
    let found = sane_search(
        &task,
        &SaneSearchConfig {
            supernet: SupernetConfig { k: 3, hidden: 32, ..Default::default() },
            epochs: 50,
            seed: 1,
            ..Default::default()
        },
    );
    let outcome = train_architecture(&task, &found.arch, &hyper, &cfg);
    rows.push((
        "SANE (differentiable)".into(),
        outcome.test_metric,
        start.elapsed().as_secs_f64(),
        found.arch.describe(),
    ));

    println!("{:<22} {:>9} {:>10}   architecture", "method", "test acc", "search s");
    println!("{}", "-".repeat(100));
    for (name, acc, secs, arch) in &rows {
        println!("{name:<22} {acc:>9.4} {secs:>10.1}   {arch}");
    }
}
