//! Inductive multi-graph workflow (the paper's PPI protocol): train on a
//! set of graphs, search an architecture, and evaluate on completely
//! unseen graphs with micro-F1.
//!
//! Run: `cargo run --release --example ppi_inductive`

use sane::core::prelude::*;
use sane::data::PpiConfig;

fn main() {
    // 8 small protein-like graphs (6 train / 1 val / 1 test) sharing a
    // global community pool, so structure learned on the training graphs
    // transfers to the held-out ones.
    let dataset = PpiConfig { num_graphs: 8, ..PpiConfig::ppi().scaled(0.06) }.generate();
    println!(
        "dataset: {} graphs, {} total nodes, {} total edges, {} labels",
        dataset.graphs.len(),
        dataset.total_nodes(),
        dataset.total_edges(),
        dataset.num_labels
    );
    let task = Task::multi(dataset);

    // Human-designed baselines on the inductive task.
    let hyper = ModelHyper { hidden: 32, dropout: 0.2, ..ModelHyper::default() };
    let cfg = TrainConfig { epochs: 50, seed: 2, ..TrainConfig::default() };
    for (name, arch) in [
        ("GraphSAGE", Architecture::uniform(NodeAggKind::SageSum, 3, None)),
        ("GAT-JK", Architecture::uniform(NodeAggKind::Gat, 3, Some(LayerAggKind::Lstm))),
    ] {
        let out = train_architecture(&task, &arch, &hyper, &cfg);
        println!("{name:<12} micro-F1 {:.4}", out.test_metric);
    }

    // SANE search on the inductive task (α steps on validation graphs,
    // w steps on training graphs, round-robin).
    let search = SaneSearchConfig {
        supernet: SupernetConfig { k: 3, hidden: 16, ..Default::default() },
        epochs: 30,
        seed: 2,
        ..Default::default()
    };
    let found = sane_search(&task, &search);
    println!("searched architecture: {}", found.arch.describe());
    let out = train_architecture(&task, &found.arch, &hyper, &cfg);
    println!("SANE         micro-F1 {:.4}", out.test_metric);
}
