//! # sane
//!
//! A from-scratch Rust reproduction of **SANE — Search to Aggregate
//! NEighborhood for Graph Neural Network** (Zhao, Yao & Tu, ICDE 2021):
//! differentiable neural architecture search for GNNs, including every
//! substrate the paper depends on (tensor/autodiff engine, graph storage,
//! the 11-aggregator model zoo, synthetic datasets, NAS baselines and the
//! entity-alignment DB task).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`autodiff`] — tensors, tape-based reverse-mode AD, optimizers.
//! * [`graph`] — CSR graphs, message-passing layouts, generators.
//! * [`data`] — synthetic Cora/CiteSeer/PubMed/PPI/DBP15K stand-ins.
//! * [`gnn`] — node/layer aggregators and the discrete GNN model.
//! * [`core`] — the SANE supernet, Algorithm 1 and the NAS baselines.
//! * [`align`] — the cross-lingual entity-alignment task.
//!
//! ## Quick start
//!
//! ```
//! use sane::core::prelude::*;
//! use sane::data::CitationConfig;
//!
//! // Tiny synthetic citation graph + a short budget so this doc test runs
//! // in seconds; scale both up for real experiments.
//! let task = Task::node(CitationConfig::cora().scaled(0.02).generate());
//! let cfg = SaneSearchConfig {
//!     supernet: SupernetConfig { k: 2, hidden: 8, ..Default::default() },
//!     epochs: 5,
//!     ..Default::default()
//! };
//! let found = sane_search(&task, &cfg);
//! let outcome = train_architecture(
//!     &task,
//!     &found.arch,
//!     &ModelHyper::default(),
//!     &TrainConfig { epochs: 20, ..TrainConfig::default() },
//! );
//! println!("{} -> test {:.3}", found.arch.describe(), outcome.test_metric);
//! ```

#![forbid(unsafe_code)]

pub use sane_align as align;
pub use sane_autodiff as autodiff;
pub use sane_core as core;
pub use sane_data as data;
pub use sane_gnn as gnn;
pub use sane_graph as graph;
