//! Property-based tests on graph-substrate invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_graph::{generators, norm, Graph, MessageLayout};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, prop::collection::vec((0u8..12, 0u8..12), 0..30)).prop_map(|(n, raw)| {
        let edges: Vec<(u32, u32)> =
            raw.iter().map(|&(a, b)| ((a as usize % n) as u32, (b as usize % n) as u32)).collect();
        Graph::from_edges(n, &edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Building a graph from its own edge list is the identity.
    #[test]
    fn from_edges_is_idempotent(g in arb_graph()) {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let rebuilt = Graph::from_edges(g.num_nodes(), &edges);
        prop_assert_eq!(rebuilt.edges().collect::<Vec<_>>(), edges);
        prop_assert_eq!(rebuilt.num_edges(), g.num_edges());
    }

    /// The handshake lemma: degree sum equals twice the edge count.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// Adjacency is symmetric.
    #[test]
    fn adjacency_symmetry(g in arb_graph()) {
        for u in 0..g.num_nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v as usize, u), "missing reverse edge {v}->{u}");
            }
        }
    }

    /// The message layout covers exactly Ñ(v) for every node.
    #[test]
    fn message_layout_matches_closed_neighborhood(g in arb_graph()) {
        let l = MessageLayout::build(&g);
        prop_assert_eq!(l.num_messages(), g.num_nodes() + 2 * g.num_edges());
        for v in 0..g.num_nodes() {
            let range = l.segments.range(v);
            let mut sources: Vec<u32> = l.src[range].to_vec();
            sources.sort_unstable();
            let mut expected: Vec<u32> = g.neighbors(v).to_vec();
            expected.push(v as u32);
            expected.sort_unstable();
            prop_assert_eq!(sources, expected, "node {}", v);
        }
    }

    /// GCN normalisation is symmetric and row sums of the mean operator
    /// are exactly one.
    #[test]
    fn normalised_operators_invariants(g in arb_graph()) {
        let gcn = norm::gcn_norm(&g).to_dense();
        prop_assert_eq!(gcn.transpose(), gcn.clone());

        let mean = norm::mean_norm(&g).to_dense();
        for r in 0..g.num_nodes() {
            let sum: f32 = mean.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }

        // sum = sum_no_self + I.
        let with = norm::sum_adj(&g).to_dense();
        let without = norm::sum_adj_no_self(&g).to_dense();
        for v in 0..g.num_nodes() {
            prop_assert_eq!(with.get(v, v), 1.0);
            prop_assert_eq!(without.get(v, v), 0.0);
        }
    }

    /// Generators are deterministic in their seed.
    #[test]
    fn generators_deterministic(seed in 0u64..10_000) {
        let g1 = generators::gnm(30, 60, &mut StdRng::seed_from_u64(seed));
        let g2 = generators::gnm(30, 60, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());

        let p1 = generators::preferential_attachment(40, 2, &mut StdRng::seed_from_u64(seed));
        let p2 = generators::preferential_attachment(40, 2, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(p1.edges().collect::<Vec<_>>(), p2.edges().collect::<Vec<_>>());
    }

    /// SBM respects block sizes and never produces out-of-range labels.
    #[test]
    fn sbm_label_invariants(k in 1usize..5, size in 3usize..20, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, labels) = generators::planted_partition(k, size, 0.2, 0.05, &mut rng);
        prop_assert_eq!(g.num_nodes(), k * size);
        prop_assert_eq!(labels.len(), k * size);
        for b in 0..k as u32 {
            prop_assert_eq!(labels.iter().filter(|&&l| l == b).count(), size);
        }
    }
}
