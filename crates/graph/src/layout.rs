//! Message-passing layout: the edge-array view of `Ñ(v)` that attention
//! and set aggregators consume.
//!
//! For every destination node `v` (in node order) the layout lists the
//! sources of its incoming messages — first the self-loop `v`, then the
//! neighbors `N(v)` in sorted order. Messages into the same destination are
//! contiguous and described by [`Segments`], which is exactly what the
//! autodiff segment ops expect.

use std::sync::Arc;

use sane_autodiff::Segments;

use crate::graph::Graph;

/// Precomputed gather/scatter indices for one graph.
#[derive(Clone)]
pub struct MessageLayout {
    /// Source node of each message (length = Σ (deg(v) + 1)).
    pub src: Arc<Vec<u32>>,
    /// Destination node of each message (grouped, non-decreasing).
    pub dst: Arc<Vec<u32>>,
    /// Segment boundaries: segment `v` covers the messages into node `v`.
    pub segments: Arc<Segments>,
    /// Message index of each node's self-loop (for ops that treat the
    /// central node specially, e.g. GIN's `(1 + ε) · h_v`).
    pub self_loop_pos: Arc<Vec<u32>>,
}

impl MessageLayout {
    /// Builds the layout for `Ñ(v) = {v} ∪ N(v)`.
    pub fn build(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let total = n + 2 * graph.num_edges();
        let mut src = Vec::with_capacity(total);
        let mut dst = Vec::with_capacity(total);
        let mut lengths = Vec::with_capacity(n);
        let mut self_loop_pos = Vec::with_capacity(n);
        for v in 0..n {
            self_loop_pos.push(src.len() as u32);
            src.push(v as u32);
            dst.push(v as u32);
            for &u in graph.neighbors(v) {
                src.push(u);
                dst.push(v as u32);
            }
            lengths.push(graph.degree(v) + 1);
        }
        Self {
            src: Arc::new(src),
            dst: Arc::new(dst),
            segments: Arc::new(Segments::from_lengths(&lengths)),
            self_loop_pos: Arc::new(self_loop_pos),
        }
    }

    /// Number of messages (edges incl. self-loops).
    pub fn num_messages(&self) -> usize {
        self.src.len()
    }

    /// Number of destination nodes.
    pub fn num_nodes(&self) -> usize {
        self.segments.num_segments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_of_path_graph() {
        // 0 - 1 - 2
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let l = MessageLayout::build(&g);
        assert_eq!(l.num_messages(), 3 + 4);
        assert_eq!(l.num_nodes(), 3);
        // Node 0: self + neighbor 1.
        assert_eq!(&l.src[l.segments.range(0)], &[0, 1]);
        // Node 1: self + neighbors 0, 2.
        assert_eq!(&l.src[l.segments.range(1)], &[1, 0, 2]);
        // dst is grouped.
        assert_eq!(&l.dst[l.segments.range(1)], &[1, 1, 1]);
        // Self-loop positions point at the right entries.
        for v in 0..3 {
            assert_eq!(l.src[l.self_loop_pos[v] as usize], v as u32);
            assert_eq!(l.dst[l.self_loop_pos[v] as usize], v as u32);
        }
    }

    #[test]
    fn isolated_node_still_gets_self_loop() {
        let g = Graph::from_edges(2, &[]);
        let l = MessageLayout::build(&g);
        assert_eq!(l.num_messages(), 2);
        assert_eq!(&l.src[l.segments.range(0)], &[0]);
        assert_eq!(&l.src[l.segments.range(1)], &[1]);
    }
}
