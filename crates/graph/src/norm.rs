//! Normalised sparse aggregation operators.
//!
//! These build the fixed `N x N` CSR operators that the spmm-style
//! aggregators multiply into the feature matrix each layer:
//!
//! * [`gcn_norm`] — `D̃^{-1/2} (A + I) D̃^{-1/2}` (Kipf & Welling).
//! * [`mean_norm`] — `D̃^{-1} (A + I)` (SAGE-MEAN over `Ñ(v)`).
//! * [`sum_adj`] — `A + I` (SAGE-SUM / the summation inside GIN).

use std::sync::Arc;

use sane_autodiff::Csr;

use crate::graph::Graph;

fn self_loop_triplets(graph: &Graph) -> Vec<(u32, u32, f32)> {
    let n = graph.num_nodes();
    let mut t = Vec::with_capacity(n + 2 * graph.num_edges());
    for v in 0..n {
        t.push((v as u32, v as u32, 1.0));
        for &u in graph.neighbors(v) {
            t.push((v as u32, u, 1.0));
        }
    }
    t
}

/// Symmetric GCN normalisation `D̃^{-1/2} Ã D̃^{-1/2}` with `Ã = A + I`.
pub fn gcn_norm(graph: &Graph) -> Arc<Csr> {
    let n = graph.num_nodes();
    let deg: Vec<f32> = (0..n).map(|v| (graph.degree(v) + 1) as f32).collect();
    let mut triplets = self_loop_triplets(graph);
    for (r, c, v) in &mut triplets {
        *v = 1.0 / (deg[*r as usize].sqrt() * deg[*c as usize].sqrt());
    }
    Arc::new(Csr::from_coo(n, n, &triplets))
}

/// Row-stochastic mean operator `D̃^{-1} Ã`.
pub fn mean_norm(graph: &Graph) -> Arc<Csr> {
    let n = graph.num_nodes();
    let deg: Vec<f32> = (0..n).map(|v| (graph.degree(v) + 1) as f32).collect();
    let mut triplets = self_loop_triplets(graph);
    for (r, _, v) in &mut triplets {
        *v = 1.0 / deg[*r as usize];
    }
    Arc::new(Csr::from_coo(n, n, &triplets))
}

/// Unnormalised `Ã = A + I` (sum aggregation over `Ñ(v)`).
pub fn sum_adj(graph: &Graph) -> Arc<Csr> {
    let n = graph.num_nodes();
    Arc::new(Csr::from_coo(n, n, &self_loop_triplets(graph)))
}

/// Neighbor-only sum `A` (no self-loop) — GIN aggregates `Σ_{u ∈ N(v)}`
/// separately from the `(1 + ε) h_v` term.
pub fn sum_adj_no_self(graph: &Graph) -> Arc<Csr> {
    let n = graph.num_nodes();
    let mut t = Vec::with_capacity(2 * graph.num_edges());
    for v in 0..n {
        for &u in graph.neighbors(v) {
            t.push((v as u32, u, 1.0));
        }
    }
    Arc::new(Csr::from_coo(n, n, &t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn gcn_norm_rows() {
        let a = gcn_norm(&path3());
        let d = a.to_dense();
        // Node 0: deg̃ = 2; node 1: deg̃ = 3.
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(0, 1) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
        assert!((d.get(1, 1) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn gcn_norm_is_symmetric() {
        let a = gcn_norm(&path3());
        let d = a.to_dense();
        assert_eq!(d.transpose(), d);
    }

    #[test]
    fn mean_norm_rows_sum_to_one() {
        let a = mean_norm(&path3());
        let d = a.to_dense();
        for r in 0..3 {
            let sum: f32 = d.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_adj_has_self_loops() {
        let a = sum_adj(&path3());
        let d = a.to_dense();
        for v in 0..3 {
            assert_eq!(d.get(v, v), 1.0);
        }
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn sum_adj_no_self_excludes_diagonal() {
        let a = sum_adj_no_self(&path3());
        let d = a.to_dense();
        for v in 0..3 {
            assert_eq!(d.get(v, v), 0.0);
        }
        assert_eq!(d.get(1, 0), 1.0);
    }
}
