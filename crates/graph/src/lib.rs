//! # sane-graph
//!
//! Graph storage, message-passing layouts, normalised aggregation operators
//! and random-graph generators — the graph substrate of the SANE
//! (ICDE 2021) reproduction.
//!
//! * [`Graph`] — undirected simple graph in CSR form.
//! * [`MessageLayout`] — the per-destination edge grouping consumed by
//!   attention/set aggregators.
//! * [`norm`] — fixed sparse operators (`GCN`, mean, sum) for spmm-style
//!   aggregation.
//! * [`generators`] — SBM / planted partition, Erdős–Rényi, preferential
//!   attachment.

#![forbid(unsafe_code)]

pub mod generators;
mod graph;
mod layout;
pub mod norm;

pub use graph::Graph;
pub use layout::MessageLayout;
