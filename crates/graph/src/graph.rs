//! Undirected simple-graph storage in CSR form.

use serde::{Deserialize, Serialize};

/// An undirected simple graph over nodes `0..n`.
///
/// Adjacency is stored CSR-style with every undirected edge appearing in
/// both endpoint's neighbor lists. Self-loops are *not* stored here — the
/// paper's `Ñ(v) = {v} ∪ N(v)` augmentation is applied by the message-
/// passing layout and the normalised-operator builders, so the raw graph
/// stays a simple graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    indptr: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from undirected edges. Duplicate edges and self-loops
    /// in the input are dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of bounds for n={n}");
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        indptr.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            indptr.push(neighbors.len());
        }
        Self { n, indptr, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbor list of `v` (no self-loop).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Degree of `v` (self-loops excluded).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    /// True if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u).iter().filter(move |&&v| (u as u32) < v).map(move |&v| (u as u32, v))
        })
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.n as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of isolated nodes (degree zero).
    pub fn num_isolated(&self) -> usize {
        (0..self.n).filter(|&v| self.degree(v) == 0).count()
    }

    /// Fraction of edges whose endpoints share a label (edge homophily).
    ///
    /// # Panics
    /// Panics if `labels.len() != n`.
    pub fn edge_homophily(&self, labels: &[u32]) -> f64 {
        assert_eq!(labels.len(), self.n, "labels must cover every node");
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in self.edges() {
            total += 1;
            if labels[u as usize] == labels[v as usize] {
                same += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn duplicates_and_self_loops_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn has_edge_symmetry() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterate_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn homophily() {
        let g = triangle_plus_tail();
        // labels: 0,0,1,1 — same-label edges: (0,1) and (2,3) => 2/4
        assert_eq!(g.edge_homophily(&[0, 0, 1, 1]), 0.5);
    }

    #[test]
    fn isolated_nodes_counted() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_isolated(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_edge() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
