//! Random-graph generators used to synthesise the paper's datasets.
//!
//! All generators are deterministic given an RNG and run in
//! `O(nodes + edges)` expected time — the SBM avoids the naive `O(n²)`
//! pair scan by drawing the edge *count* per block pair from a binomial and
//! then sampling that many endpoints.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Binomial, Distribution};

use crate::graph::Graph;

/// Stochastic block model: nodes are partitioned into `block_sizes.len()`
/// blocks; an edge between blocks `i` and `j` appears with probability
/// `p[i][j]` (symmetric).
///
/// Returns the graph and each node's block id.
///
/// # Panics
/// Panics if the probability matrix is not square of matching size or
/// contains values outside `[0, 1]`.
pub fn sbm(block_sizes: &[usize], p: &[Vec<f64>], rng: &mut StdRng) -> (Graph, Vec<u32>) {
    let k = block_sizes.len();
    assert_eq!(p.len(), k, "probability matrix must be {k}x{k}");
    for row in p {
        assert_eq!(row.len(), k, "probability matrix must be {k}x{k}");
        assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)), "probabilities in [0,1]");
    }
    let n: usize = block_sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(k);
    let mut offset = 0usize;
    for (b, &size) in block_sizes.iter().enumerate() {
        starts.push(offset);
        block_of.extend(std::iter::repeat_n(b as u32, size));
        offset += size;
    }

    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..k {
        for j in i..k {
            let prob = p[i][j];
            if prob <= 0.0 {
                continue;
            }
            let pairs = if i == j {
                block_sizes[i] * block_sizes[i].saturating_sub(1) / 2
            } else {
                block_sizes[i] * block_sizes[j]
            };
            if pairs == 0 {
                continue;
            }
            let count = Binomial::new(pairs as u64, prob).expect("valid binomial").sample(rng); // lint:allow(expect) -- valid binomial
            for _ in 0..count {
                let (u, v) = if i == j {
                    // Uniform unordered pair within the block.
                    let a = rng.gen_range(0..block_sizes[i]);
                    let mut b = rng.gen_range(0..block_sizes[i] - 1);
                    if b >= a {
                        b += 1;
                    }
                    (starts[i] + a, starts[i] + b)
                } else {
                    (
                        starts[i] + rng.gen_range(0..block_sizes[i]),
                        starts[j] + rng.gen_range(0..block_sizes[j]),
                    )
                };
                edges.push((u as u32, v as u32));
            }
        }
    }
    (Graph::from_edges(n, &edges), block_of)
}

/// Planted-partition convenience wrapper: `k` equal blocks of size
/// `block_size`, within-block probability `p_in`, across-block `p_out`.
pub fn planted_partition(
    k: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut StdRng,
) -> (Graph, Vec<u32>) {
    let sizes = vec![block_size; k];
    let p: Vec<Vec<f64>> =
        (0..k).map(|i| (0..k).map(|j| if i == j { p_in } else { p_out }).collect()).collect();
    sbm(&sizes, &p, rng)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform edges (best effort —
/// fewer if `m` exceeds the number of possible edges).
pub fn gnm(n: usize, m: usize, rng: &mut StdRng) -> Graph {
    let max_edges = n * n.saturating_sub(1) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < m * 50 {
        attempts += 1;
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to degree.
///
/// # Panics
/// Panics if `n <= m` or `m == 0`.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut StdRng) -> Graph {
    assert!(m > 0 && n > m, "need n > m >= 1");
    // Repeated-endpoint list makes degree-proportional sampling O(1).
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed: a star over the first m+1 nodes.
    for v in 0..m {
        edges.push((m as u32, v as u32));
        endpoints.push(m as u32);
        endpoints.push(v as u32);
    }
    for v in (m + 1)..n {
        // A Vec keeps insertion order deterministic (HashSet iteration
        // order would leak randomness into the endpoint list).
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v as u32, t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn planted_partition_is_homophilous() {
        let (g, labels) = planted_partition(4, 100, 0.08, 0.005, &mut rng(1));
        assert_eq!(g.num_nodes(), 400);
        assert!(g.num_edges() > 500, "got {} edges", g.num_edges());
        let h = g.edge_homophily(&labels);
        assert!(h > 0.6, "homophily {h} unexpectedly low");
    }

    #[test]
    fn sbm_edge_count_tracks_expectation() {
        let (g, _) = planted_partition(2, 200, 0.05, 0.01, &mut rng(2));
        // Expected: 2 * C(200,2)*0.05 + 200*200*0.01 = 2*995 + 400 = 2390.
        let e = g.num_edges() as f64;
        assert!((e - 2390.0).abs() < 2390.0 * 0.25, "edge count {e}");
    }

    #[test]
    fn sbm_determinism() {
        let (g1, l1) = planted_partition(3, 50, 0.1, 0.01, &mut rng(7));
        let (g2, l2) = planted_partition(3, 50, 0.1, 0.01, &mut rng(7));
        assert_eq!(l1, l2);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnm_hits_target_edge_count() {
        let g = gnm(100, 300, &mut rng(3));
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm(5, 100, &mut rng(4));
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn preferential_attachment_degree_skew() {
        let g = preferential_attachment(500, 2, &mut rng(5));
        assert_eq!(g.num_nodes(), 500);
        // A BA graph should have a hub much larger than the average degree.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    #[should_panic(expected = "need n > m")]
    fn preferential_attachment_rejects_bad_params() {
        let _ = preferential_attachment(3, 5, &mut rng(6));
    }
}
