//! Reading side: parse, validate and summarise a recorded JSONL trace.
//!
//! This is what `cargo xtask trace-report <file>` runs, and what the
//! search-trace tests assert against. [`summarize`] is strict on purpose:
//! a trace with unparseable lines, backwards timestamps, unbalanced or
//! orphan-parented spans, inconsistent histogram buckets, non-monotone
//! epochs or alpha rows that are not probability distributions is an
//! **error**, so CI fails on a malformed trace instead of summarising
//! garbage. The same checks cover multi-thread traces: attached workers
//! write through the recorder's serialising lock, so `t_ns` stays
//! monotone in file order and every worker span's `parent` must already
//! be open when the worker opens it.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::value::Value;

/// Aggregated time of one span name across the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}

/// Quantiles of one latency histogram from the last `metrics` record.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistStat {
    pub count: u64,
    pub dropped: u64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

/// One `search.epoch` event, as far as the summary cares.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRow {
    pub epoch: u64,
    pub val_metric: Option<f64>,
    pub genotype: Option<String>,
}

/// What a valid trace contained.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    pub run: String,
    pub elapsed_ns: Option<u64>,
    pub records: usize,
    pub events: usize,
    /// Span totals, longest first.
    pub spans: Vec<SpanStat>,
    /// `search.epoch` rows in trace order (strictly increasing epochs).
    pub epochs: Vec<EpochRow>,
    /// Number of `search.alpha` rows validated as softmax distributions.
    pub alpha_rows: usize,
    /// Mean softmax entropy per alpha group (`node`, `skip`, `layer`),
    /// from the *last* epoch that reported each group.
    pub final_entropy: BTreeMap<String, f64>,
    /// Distinct genotypes in first-seen order with the epoch they appeared.
    pub genotypes: Vec<(u64, String)>,
    /// Counters from the last `metrics` record.
    pub counters: BTreeMap<String, u64>,
    /// Gauges from the last `metrics` record.
    pub gauges: BTreeMap<String, f64>,
    /// Kernel timing summaries (`kernel.<name>.ns`) from the last
    /// `metrics` record: (name, count, total_ns, mean_ns).
    pub kernels: Vec<(String, u64, f64, f64)>,
    /// Latency histogram quantiles from the last `metrics` record, keyed
    /// by full stream name (`kernel.spmm.ns`, `span.trial.ns`, …).
    pub hists: BTreeMap<String, HistStat>,
    /// Distinct worker labels (`thread` fields) seen in the trace.
    pub threads: Vec<String>,
}

impl TraceSummary {
    /// The genotype the search settled on, if any epoch reported one.
    pub fn final_genotype(&self) -> Option<&str> {
        self.epochs.iter().rev().find_map(|e| e.genotype.as_deref())
    }

    /// Per-epoch validation metric series `(epoch, val_metric)`.
    pub fn val_curve(&self) -> Vec<(u64, f64)> {
        self.epochs.iter().filter_map(|e| Some((e.epoch, e.val_metric?))).collect()
    }
}

fn field<'a>(rec: &'a Value, key: &str) -> Option<&'a Value> {
    rec.get("fields").and_then(|f| f.get(key))
}

/// Validates and summarises one JSONL trace. See the module docs for what
/// counts as malformed.
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let mut out = TraceSummary::default();
    let mut last_t = 0u64;
    let mut open_spans: BTreeMap<u64, String> = BTreeMap::new();
    let mut span_totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut last_epoch: Option<u64> = None;
    let mut entropy_epoch: BTreeMap<String, u64> = BTreeMap::new();
    let mut entropy_sum: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    let mut saw_end = false;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let rec = Value::parse(line).map_err(|e| format!("line {lineno}: bad JSON: {e}"))?;
        out.records += 1;

        if let Some(thread) = rec.get("thread").and_then(Value::as_str) {
            if !out.threads.iter().any(|t| t == thread) {
                out.threads.push(thread.to_string());
            }
        }

        let t_ns = rec
            .get("t_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing t_ns"))?;
        if t_ns < last_t {
            return Err(format!("line {lineno}: t_ns went backwards ({t_ns} < {last_t})"));
        }
        last_t = t_ns;

        let kind = rec
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing kind"))?;

        match kind {
            "run_start" => {
                if out.records != 1 {
                    return Err(format!("line {lineno}: run_start must be the first record"));
                }
                out.run = rec.get("run").and_then(Value::as_str).unwrap_or("?").to_string();
            }
            "run_end" => {
                saw_end = true;
                out.elapsed_ns = rec.get("elapsed_ns").and_then(Value::as_u64);
            }
            "span_open" => {
                let id = rec
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_open without id"))?;
                let name = rec.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
                // A span's parent must be open at open time: worker root
                // spans parent to the owning thread's span, which stays
                // open while workers run, so a miss means a broken link.
                if let Some(parent) = rec.get("parent").and_then(Value::as_u64) {
                    if !open_spans.contains_key(&parent) {
                        return Err(format!(
                            "line {lineno}: span id {id} has orphan parent {parent} (not open)"
                        ));
                    }
                }
                if open_spans.insert(id, name).is_some() {
                    return Err(format!("line {lineno}: span id {id} opened twice"));
                }
            }
            "span_close" => {
                let id = rec
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_close without id"))?;
                let name = open_spans.remove(&id).ok_or_else(|| {
                    format!("line {lineno}: span id {id} closed but never opened")
                })?;
                let ns = rec.get("elapsed_ns").and_then(Value::as_u64).unwrap_or(0);
                let entry = span_totals.entry(name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += ns;
            }
            "metrics" => {
                // Later snapshots supersede earlier ones: metrics are
                // cumulative over the run.
                out.counters = rec
                    .get("counters")
                    .and_then(Value::as_obj)
                    .map(|kv| {
                        kv.iter().filter_map(|(k, v)| Some((k.clone(), v.as_u64()?))).collect()
                    })
                    .unwrap_or_default();
                out.gauges = rec
                    .get("gauges")
                    .and_then(Value::as_obj)
                    .map(|kv| {
                        kv.iter().filter_map(|(k, v)| Some((k.clone(), v.as_f64()?))).collect()
                    })
                    .unwrap_or_default();
                out.kernels.clear();
                if let Some(kv) = rec.get("summaries").and_then(Value::as_obj) {
                    for (k, v) in kv {
                        let Some(short) =
                            k.strip_prefix("kernel.").and_then(|k| k.strip_suffix(".ns"))
                        else {
                            continue;
                        };
                        let count = v.get("count").and_then(Value::as_u64).unwrap_or(0);
                        let sum = v.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
                        let mean = v.get("mean").and_then(Value::as_f64).unwrap_or(0.0);
                        out.kernels.push((short.to_string(), count, sum, mean));
                    }
                }
                out.hists.clear();
                if let Some(kv) = rec.get("hists").and_then(Value::as_obj) {
                    for (k, v) in kv {
                        let count = v.get("count").and_then(Value::as_u64).unwrap_or(0);
                        // Histograms must be internally consistent: the
                        // bucket counts account for every kept sample.
                        let bucket_total: u64 = v
                            .get("buckets")
                            .and_then(Value::as_arr)
                            .map(|rows| {
                                rows.iter()
                                    .filter_map(|r| r.as_arr()?.get(1).and_then(Value::as_u64))
                                    .sum()
                            })
                            .unwrap_or(0);
                        if bucket_total != count {
                            return Err(format!(
                                "line {lineno}: histogram `{k}` buckets sum to {bucket_total}, \
                                 count says {count}"
                            ));
                        }
                        out.hists.insert(
                            k.clone(),
                            HistStat {
                                count,
                                dropped: v.get("dropped").and_then(Value::as_u64).unwrap_or(0),
                                p50: v.get("p50").and_then(Value::as_f64).unwrap_or(0.0),
                                p90: v.get("p90").and_then(Value::as_f64).unwrap_or(0.0),
                                p99: v.get("p99").and_then(Value::as_f64).unwrap_or(0.0),
                                max: v.get("max").and_then(Value::as_f64).unwrap_or(0.0),
                            },
                        );
                    }
                }
            }
            "event" => {
                out.events += 1;
                let name = rec.get("name").and_then(Value::as_str).unwrap_or("");
                match name {
                    "search.epoch" => {
                        let epoch = field(&rec, "epoch")
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("line {lineno}: search.epoch without epoch"))?;
                        if let Some(prev) = last_epoch {
                            if epoch <= prev {
                                return Err(format!(
                                    "line {lineno}: epochs not monotone ({epoch} after {prev})"
                                ));
                            }
                        }
                        last_epoch = Some(epoch);
                        let genotype =
                            field(&rec, "genotype").and_then(Value::as_str).map(str::to_string);
                        if let Some(g) = &genotype {
                            if out.genotypes.last().map(|(_, prev)| prev) != Some(g) {
                                out.genotypes.push((epoch, g.clone()));
                            }
                        }
                        out.epochs.push(EpochRow {
                            epoch,
                            val_metric: field(&rec, "val_metric").and_then(Value::as_f64),
                            genotype,
                        });
                    }
                    "search.alpha" => {
                        validate_alpha(&rec, lineno)?;
                        out.alpha_rows += 1;
                        let group =
                            field(&rec, "group").and_then(Value::as_str).unwrap_or("?").to_string();
                        let epoch = field(&rec, "epoch").and_then(Value::as_u64).unwrap_or(0);
                        let entropy = field(&rec, "entropy").and_then(Value::as_f64).unwrap_or(0.0);
                        // Keep the running mean of the newest epoch only.
                        if entropy_epoch.get(&group) != Some(&epoch) {
                            entropy_epoch.insert(group.clone(), epoch);
                            entropy_sum.insert(group.clone(), (0.0, 0));
                        }
                        let e = entropy_sum.entry(group).or_insert((0.0, 0));
                        e.0 += entropy;
                        e.1 += 1;
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {lineno}: unknown record kind `{other}`")),
        }
    }

    if out.records == 0 {
        return Err("trace is empty".to_string());
    }
    if out.run.is_empty() {
        return Err("trace has no run_start record".to_string());
    }
    if !saw_end {
        return Err("trace has no run_end record (run aborted or trace truncated)".to_string());
    }
    if !open_spans.is_empty() {
        let names: Vec<&str> = open_spans.values().map(String::as_str).collect();
        return Err(format!("{} span(s) never closed: {}", names.len(), names.join(", ")));
    }

    out.spans = span_totals
        .into_iter()
        .map(|(name, (count, total_ns))| SpanStat { name, count, total_ns })
        .collect();
    out.spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    out.final_entropy = entropy_sum
        .into_iter()
        .map(|(g, (sum, n))| (g, if n == 0 { 0.0 } else { sum / n as f64 }))
        .collect();
    Ok(out)
}

/// Reads and summarises a trace file.
pub fn summarize_file(path: impl AsRef<Path>) -> Result<TraceSummary, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    summarize(&text)
}

/// Recorded trace files (`TRACE_*.jsonl`) directly under `dir`, sorted by
/// file name. Missing or unreadable directories yield an empty list — the
/// callers' error paths list whatever is available.
pub fn list_traces(dir: impl AsRef<Path>) -> Vec<std::path::PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir.as_ref()) else { return Vec::new() };
    let mut out: Vec<std::path::PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("TRACE_") && n.ends_with(".jsonl"))
        })
        .collect();
    out.sort();
    out
}

/// The most recently modified trace file under `dir`, for tooling that
/// defaults to "the run you just recorded". Ties (or filesystems without
/// mtimes) fall back to name order, so the pick stays deterministic.
pub fn newest_trace(dir: impl AsRef<Path>) -> Option<std::path::PathBuf> {
    list_traces(dir)
        .into_iter()
        .max_by_key(|p| (std::fs::metadata(p).and_then(|m| m.modified()).ok(), p.clone()))
}

/// A `search.alpha` row must be a probability distribution: every entry
/// finite in [0, 1], summing to 1 within 1e-3, with a finite non-negative
/// entropy field.
fn validate_alpha(rec: &Value, lineno: usize) -> Result<(), String> {
    let probs = field(rec, "probs")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("line {lineno}: search.alpha without probs array"))?;
    if probs.is_empty() {
        return Err(format!("line {lineno}: search.alpha probs is empty"));
    }
    let mut sum = 0.0f64;
    for p in probs {
        let p =
            p.as_f64().ok_or_else(|| format!("line {lineno}: non-numeric alpha probability"))?;
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(format!("line {lineno}: alpha probability {p} outside [0,1]"));
        }
        sum += p;
    }
    if (sum - 1.0).abs() > 1e-3 {
        return Err(format!("line {lineno}: alpha probs sum to {sum}, not 1"));
    }
    let entropy = field(rec, "entropy")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {lineno}: search.alpha without entropy"))?;
    if !entropy.is_finite() || entropy < -1e-6 {
        return Err(format!("line {lineno}: invalid alpha entropy {entropy}"));
    }
    Ok(())
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run `{}`: {} record(s), {} event(s)", self.run, self.records, self.events)?;
        if let Some(ns) = self.elapsed_ns {
            writeln!(f, "  wall time: {:.3}s", ns as f64 / 1e9)?;
        }
        if !self.spans.is_empty() {
            writeln!(f, "  top spans by total time:")?;
            for s in self.spans.iter().take(8) {
                writeln!(
                    f,
                    "    {:<28} {:>6}x {:>12.3} ms",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6
                )?;
            }
        }
        if !self.threads.is_empty() {
            writeln!(f, "  worker threads: {}", self.threads.join(", "))?;
        }
        if let (Some(first), Some(last)) = (self.epochs.first(), self.epochs.last()) {
            write!(f, "  epochs {}..={}", first.epoch, last.epoch)?;
            if let Some(v) = last.val_metric {
                write!(f, ", final val metric {v:.4}")?;
            }
            writeln!(f)?;
        }
        if self.alpha_rows > 0 {
            write!(f, "  {} alpha row(s) validated; final mean entropy:", self.alpha_rows)?;
            for (g, e) in &self.final_entropy {
                write!(f, " {g}={e:.3}")?;
            }
            writeln!(f)?;
        }
        if let Some(last) = self.genotypes.last() {
            writeln!(
                f,
                "  genotype changed {} time(s); stable since epoch {}",
                self.genotypes.len().saturating_sub(1),
                last.0
            )?;
            if let Some(g) = self.final_genotype() {
                writeln!(f, "  final genotype: {g}")?;
            }
        }
        let pool: Vec<(&String, &u64)> =
            self.counters.iter().filter(|(k, _)| k.starts_with("pool.")).collect();
        if !pool.is_empty() {
            write!(f, "  pool:")?;
            for (k, v) in pool {
                write!(f, " {}={v}", k.trim_start_matches("pool."))?;
            }
            writeln!(f)?;
        }
        if !self.kernels.is_empty() {
            writeln!(f, "  kernels:")?;
            let mut by_total: Vec<_> = self.kernels.clone();
            by_total.sort_by(|a, b| b.2.total_cmp(&a.2));
            for (name, count, sum, mean) in by_total {
                write!(
                    f,
                    "    {:<28} {:>8}x {:>12.3} ms total {:>10.1} ns/call",
                    name,
                    count,
                    sum / 1e6,
                    mean
                )?;
                if let Some(h) = self.hists.get(&format!("kernel.{name}.ns")) {
                    write!(f, "  p50 {:>9.0} p90 {:>9.0} p99 {:>9.0} ns", h.p50, h.p90, h.p99)?;
                }
                writeln!(f)?;
            }
        }
        // Span latency streams with quantiles (per-trial spans etc.);
        // kernel and per-phase streams already render via the profiler.
        let other: Vec<(&String, &HistStat)> = self
            .hists
            .iter()
            .filter(|(k, _)| !k.starts_with("kernel.") && !k.starts_with("phase."))
            .collect();
        if !other.is_empty() {
            writeln!(f, "  latency quantiles:")?;
            for (name, h) in other {
                writeln!(
                    f,
                    "    {:<28} {:>8}x p50 {:>11.0} p90 {:>11.0} p99 {:>11.0} max {:>11.0} ns",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;
    use crate::recorder::{self, Recorder};
    use crate::sink::MemoryBuffer;
    use crate::value::Value;

    fn recorded_trace(run: impl FnOnce()) -> String {
        let buf = MemoryBuffer::default();
        let guard = Recorder::new("test").with_memory(buf.clone()).install();
        run();
        drop(guard);
        let text = buf.borrow().clone();
        text
    }

    fn alpha_fields(epoch: i64, probs: &[f32]) -> Vec<(&'static str, Value)> {
        let entropy: f64 = probs
            .iter()
            .map(|&p| {
                let p = p as f64;
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            })
            .sum();
        vec![
            ("epoch", Value::Int(epoch)),
            ("group", Value::from("node")),
            ("index", Value::Int(0)),
            ("probs", Value::from(probs)),
            ("entropy", Value::Num(entropy)),
        ]
    }

    #[test]
    fn well_formed_trace_summarises() {
        let text = recorded_trace(|| {
            let _search = recorder::span("search");
            for epoch in 0..3i64 {
                let _e = recorder::span("epoch");
                recorder::event(Level::Info, "search.alpha", &alpha_fields(epoch, &[0.25; 4]));
                recorder::event(
                    Level::Info,
                    "search.epoch",
                    &[
                        ("epoch", Value::Int(epoch)),
                        ("val_metric", Value::Num(0.5 + epoch as f64 * 0.1)),
                        ("genotype", Value::from(if epoch < 2 { "a" } else { "b" })),
                    ],
                );
            }
            recorder::kernel_sample("spmm", 500);
            recorder::flush_metrics();
        });
        let s = summarize(&text).expect("valid trace");
        assert_eq!(s.run, "test");
        assert_eq!(s.epochs.len(), 3);
        assert_eq!(s.alpha_rows, 3);
        assert_eq!(s.final_genotype(), Some("b"));
        assert_eq!(s.genotypes.len(), 2);
        assert_eq!(s.val_curve(), vec![(0, 0.5), (1, 0.6), (2, 0.7)]);
        assert_eq!(s.spans[0].name, "search");
        assert!(s.kernels.iter().any(|(k, count, ..)| k == "spmm" && *count == 1));
        // And the report renders.
        let report = s.to_string();
        assert!(report.contains("final genotype: b"), "{report}");
    }

    #[test]
    fn bad_alpha_row_is_rejected() {
        let text = recorded_trace(|| {
            recorder::event(
                Level::Info,
                "search.alpha",
                &[
                    ("epoch", Value::Int(0)),
                    ("group", Value::from("node")),
                    ("probs", Value::from(&[0.9f32, 0.9][..])),
                    ("entropy", Value::Num(0.3)),
                ],
            );
        });
        let err = summarize(&text).expect_err("sum 1.8 must fail");
        assert!(err.contains("sum"), "{err}");
    }

    #[test]
    fn non_monotone_epochs_are_rejected() {
        let text = recorded_trace(|| {
            for epoch in [1i64, 0] {
                recorder::event(Level::Info, "search.epoch", &[("epoch", Value::Int(epoch))]);
            }
        });
        let err = summarize(&text).expect_err("0 after 1 must fail");
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn spans_without_alpha_rows_summarise_with_empty_search_views() {
        // A train-only trace (spans + kernels, no search events) is valid;
        // the search-facing accessors degrade to empty, not panic.
        let text = recorded_trace(|| {
            let _t = recorder::span("train");
            recorder::kernel_sample("gemm", 800);
            recorder::flush_metrics();
        });
        let s = summarize(&text).expect("span-only trace is valid");
        assert_eq!(s.alpha_rows, 0);
        assert!(s.epochs.is_empty());
        assert_eq!(s.val_curve(), Vec::new());
        assert_eq!(s.final_genotype(), None);
        assert!(s.final_entropy.is_empty());
        assert!(s.genotypes.is_empty());
        assert_eq!(s.spans[0].name, "train");
    }

    #[test]
    fn duplicate_epoch_events_are_rejected() {
        // Two `search.epoch` records for the same epoch would make
        // val_curve()/final_genotype() ambiguous; the validator treats a
        // repeat as a monotonicity violation.
        let text = recorded_trace(|| {
            for _ in 0..2 {
                recorder::event(
                    Level::Info,
                    "search.epoch",
                    &[("epoch", Value::Int(3)), ("val_metric", Value::Num(0.5))],
                );
            }
        });
        let err = summarize(&text).expect_err("duplicate epoch 3 must fail");
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn histograms_surface_quantiles_and_validate_buckets() {
        let text = recorded_trace(|| {
            let _t = recorder::span("train");
            for ns in [1_000u64, 2_000, 50_000] {
                recorder::kernel_sample("spmm", ns);
            }
            recorder::flush_metrics();
        });
        let s = summarize(&text).expect("valid trace");
        let h = s.hists.get("kernel.spmm.ns").expect("spmm histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 50_000.0);
        assert!(h.p50 >= 2_000.0 && h.p50 <= 2_000.0 * 1.13, "p50={}", h.p50);
        assert!(h.p99 >= h.p90 && h.p90 >= h.p50);
        let report = s.to_string();
        assert!(report.contains("p99"), "{report}");

        // A histogram whose buckets disagree with its count is malformed.
        let broken = text.replace("\"count\":3", "\"count\":4");
        let err = summarize(&broken).expect_err("inconsistent buckets must fail");
        assert!(err.contains("buckets sum"), "{err}");
    }

    #[test]
    fn worker_records_carry_thread_and_parent_links() {
        let text = recorded_trace(|| {
            let _root = recorder::span("root");
            let h = recorder::handle().expect("active");
            let _w = h.attach("w7");
            let _trial = recorder::span("trial");
        });
        let s = summarize(&text).expect("worker trace validates");
        assert_eq!(s.threads, vec!["w7".to_string()]);
        assert!(s.spans.iter().any(|sp| sp.name == "trial"));
    }

    #[test]
    fn orphan_span_parents_are_rejected() {
        let text = recorded_trace(|| {
            let _s = recorder::span("root");
        });
        // Rewrite the root span's parent to an id that was never opened.
        let broken: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("span_open") {
                    l.replace("\"name\":\"root\"", "\"name\":\"root\",\"parent\":999")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let err = summarize(&broken.join("\n")).expect_err("orphan parent must fail");
        assert!(err.contains("orphan parent"), "{err}");
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let text = recorded_trace(|| {});
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop(); // drop run_end
        let err = summarize(&lines.join("\n")).expect_err("no run_end must fail");
        assert!(err.contains("run_end"), "{err}");
        assert!(summarize("not json").is_err());
        assert!(summarize("").is_err());
    }
}
