//! # sane-telemetry
//!
//! Structured spans, metrics and search-trace recording for the SANE
//! workspace — zero external dependencies.
//!
//! ## Model
//!
//! A run installs a [`Recorder`] on its thread; until the returned
//! [`RecorderGuard`] drops, every span, event and metric from that thread
//! streams to the recorder's sinks:
//!
//! * a JSONL sink (`results/TRACE_<run>.jsonl`) recording every line for
//!   `cargo xtask trace-report` and offline analysis,
//! * a console sink printing one-line human renderings to stderr, filtered
//!   by the `SANE_LOG` environment variable (`error|warn|info|debug|trace`
//!   or `off`; default `warn`),
//! * an in-memory sink for tests.
//!
//! With **no** recorder installed, events still reach stderr when
//! `SANE_LOG` admits them (default: warnings and errors), so library
//! warnings are never lost; spans and metrics become no-ops.
//!
//! ## Cross-thread recording
//!
//! One run's state is shared: the owning thread captures a `Send + Sync`
//! [`RecorderHandle`] with [`handle`], and worker threads
//! [`attach`](RecorderHandle::attach) it for a scope. Attached workers
//! emit spans/events/samples into the same trace — records carry a
//! `thread` field and worker root spans parent to the owner's span at
//! capture time — while their metrics buffer thread-locally and merge on
//! detach. [`snapshot::SnapshotExporter`] serialises the merged registry
//! mid-run. See the recorder module docs for the full model.
//!
//! ## Span convention
//!
//! Spans nest `search → epoch → {arch_step, weight_step} → kernel`, named
//! with the subsystem as prefix (`search`, `search.epoch`,
//! `search.arch_step`, `train.epoch`, …). Timings are monotonic
//! (`std::time::Instant`) and reported in nanoseconds.
//!
//! ## Record schema (one JSON object per line)
//!
//! | `kind`       | extra fields                                            |
//! |--------------|---------------------------------------------------------|
//! | `run_start`  | `run`                                                   |
//! | `span_open`  | `id`, `name`, `parent?`, `fields?`                      |
//! | `span_close` | `id`, `name`, `elapsed_ns`                              |
//! | `event`      | `name`, `span?`, `fields` (event payload)               |
//! | `metrics`    | `counters`, `gauges`, `summaries`, `hists` (cumulative) |
//! | `run_end`    | `elapsed_ns`, `open_spans`                              |
//!
//! Every record carries `t_ns` (monotone nanoseconds since install —
//! also across attached workers: stamps are taken inside the writer
//! lock) and `level`; records from attached workers additionally carry
//! `thread`. `hists` entries expose `p50`/`p90`/`p99` quantiles and raw
//! log-scale buckets for every latency stream. [`trace::summarize`]
//! validates all of this strictly, including that a `span_open`'s
//! `parent` refers to a span that is open at that point in the trace.

#![forbid(unsafe_code)]

pub mod diff;
mod level;
mod metrics;
pub mod profile;
mod recorder;
pub mod report;
mod sink;
pub mod snapshot;
pub mod trace;
mod value;

pub use level::Level;
pub use metrics::{Histogram, MetricSet, Summary, QUANTILE_REL_ERROR};
pub use recorder::{
    active, counter_add, enabled, event, flush_metrics, gauge_max, gauge_set, handle,
    kernel_sample, kernel_timing_enabled, phase_span, phase_span_with, record, record_latency,
    span, span_with, Recorder, RecorderGuard, RecorderHandle, SpanGuard, WorkerGuard,
};
pub use sink::MemoryBuffer;
pub use snapshot::SnapshotExporter;
pub use value::Value;

/// Emits an error event: the run's output is suspect.
pub fn error(name: &'static str, fields: &[(&'static str, Value)]) {
    event(Level::Error, name, fields);
}

/// Emits a warning event.
pub fn warn(name: &'static str, fields: &[(&'static str, Value)]) {
    event(Level::Warn, name, fields);
}

/// Emits an info event (per-epoch progress).
pub fn info(name: &'static str, fields: &[(&'static str, Value)]) {
    event(Level::Info, name, fields);
}

/// Emits a debug event (per-step detail).
pub fn debug(name: &'static str, fields: &[(&'static str, Value)]) {
    event(Level::Debug, name, fields);
}
