//! The recorder's metric registry: counters, gauges, summaries and
//! log-bucketed latency histograms.
//!
//! Metrics accumulate silently on the active recorder and are written out
//! as one `metrics` record per [`crate::flush_metrics`] call (the search
//! and train loops flush once per run; benches flush per scenario). High
//! rate sources — the kernel timing hooks in `sane_autodiff::parallel` —
//! therefore cost a map update, not a trace record, per sample.
//!
//! Since the cross-thread recorder refactor every attached worker owns a
//! private `MetricSet` buffer that is [`MetricSet::merge`]d into the run's
//! shared registry on detach. Merging is commutative for counters, gauges
//! (max), extremes and **histogram bucket counts**; only the floating
//! `sum` fields depend on merge order (addition is not associative in
//! f64), which is why determinism checks compare buckets, not sums.

use std::collections::BTreeMap;

use crate::value::Value;

/// Summary statistics of one stream of samples.
///
/// Non-finite or negative samples would poison `min`/`max`/`sum` for the
/// rest of the run, so they are skipped and counted in `dropped` instead
/// (the recorder emits one `telemetry.bad_sample` warning per run).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// NaN/negative samples rejected by [`Summary::record`].
    pub dropped: u64,
}

impl Summary {
    /// Records one sample; returns `false` (and counts it as dropped)
    /// when the sample is NaN, infinite or negative.
    pub fn record(&mut self, v: f64) -> bool {
        if !v.is_finite() || v < 0.0 {
            self.dropped += 1;
            return false;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        true
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds another summary of the same stream into this one (worker
    /// detach). Order-independent except for the f64 `sum`.
    pub fn merge(&mut self, other: &Summary) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.dropped += other.dropped;
    }

    fn to_value(self) -> Value {
        Value::Obj(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::Num(self.sum)),
            ("min".to_string(), Value::Num(self.min)),
            ("max".to_string(), Value::Num(self.max)),
            ("mean".to_string(), Value::Num(self.mean())),
            ("dropped".to_string(), Value::UInt(self.dropped)),
        ])
    }
}

/// Sub-buckets per power-of-two octave: 8, so a bucket spans at most
/// 1/8th of its octave and a quantile read off a bucket edge carries at
/// most ~12.5% relative error.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Worst-case relative error of a quantile read back from the histogram:
/// a bucket spans at most 1/[`SUBS`]th of its octave, so any value inside
/// reads back within ~12.5% of its true magnitude. Consumers comparing
/// quantiles across runs (the trace differ) treat shifts inside this band
/// as bucket-resolution noise, not signal.
pub const QUANTILE_REL_ERROR: f64 = 1.0 / SUBS as f64;

/// Log-bucketed latency histogram (HDR-style). Each power-of-two octave
/// of the sample magnitude is split into [`SUBS`] linear sub-buckets, so
/// bucketing a sample is a handful of integer ops with no configuration:
/// the same histogram covers nanosecond kernels and second-long trials.
/// Buckets are **unit-agnostic** pure magnitudes; callers record whatever
/// unit the stream's name declares (`.ns` streams record nanoseconds).
///
/// Buckets hold sample *counts*, which makes cross-worker merges exact
/// and order-independent — the property the multi-thread determinism
/// tests rely on, and the reason workers ship buckets instead of raw
/// sample vectors (bounded memory, commutative merge).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    dropped: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Sparse bucket index → sample count. Index 511 is the ceiling for
    /// u64-range magnitudes (octave 63), so u16 never saturates.
    buckets: BTreeMap<u16, u64>,
}

/// Bucket index of a magnitude: `octave * SUBS + sub` where `octave` is
/// `floor(log2(v))` and `sub` the top [`SUB_BITS`] mantissa bits below
/// the leading one. Samples below 1 share bucket 0.
fn bucket_index(v: f64) -> u16 {
    if v < 2.0 {
        return 0;
    }
    let b = if v >= u64::MAX as f64 { u64::MAX } else { v as u64 };
    let octave = 63 - u64::from(b.leading_zeros());
    let sub = if octave <= u64::from(SUB_BITS) {
        b - (1 << octave)
    } else {
        (b >> (octave - u64::from(SUB_BITS))) - SUBS
    };
    (octave * SUBS + sub) as u16
}

/// Exclusive upper edge of a bucket, computed in f64 (the top octaves
/// would overflow u64).
fn bucket_upper(idx: u16) -> f64 {
    let octave = u64::from(idx) / SUBS;
    let sub = u64::from(idx) % SUBS;
    if octave <= u64::from(SUB_BITS) {
        ((1 << octave) + sub + 1) as f64
    } else {
        (SUBS + sub + 1) as f64 * f64::exp2((octave - u64::from(SUB_BITS)) as f64)
    }
}

impl Histogram {
    /// Records one sample; returns `false` (and counts it as dropped)
    /// when the sample is NaN, infinite or negative.
    pub fn record(&mut self, v: f64) -> bool {
        if !v.is_finite() || v < 0.0 {
            self.dropped += 1;
            return false;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        true
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sparse bucket table (index → count).
    pub fn buckets(&self) -> &BTreeMap<u16, u64> {
        &self.buckets
    }

    /// Estimated `q`-quantile: the upper edge of the bucket holding the
    /// `ceil(q * count)`-th sample, clamped to the observed extremes
    /// (so `quantile(1.0) == max` exactly). 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram of the same stream into this one. Bucket
    /// counts add exactly, so the merged buckets are identical for every
    /// merge order; only `sum` is order-sensitive (f64 addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.dropped += other.dropped;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("dropped".to_string(), Value::UInt(self.dropped)),
            ("sum".to_string(), Value::Num(self.sum)),
            ("min".to_string(), Value::Num(self.min)),
            ("max".to_string(), Value::Num(self.max)),
            ("p50".to_string(), Value::Num(self.quantile(0.5))),
            ("p90".to_string(), Value::Num(self.quantile(0.9))),
            ("p99".to_string(), Value::Num(self.quantile(0.99))),
            (
                "buckets".to_string(),
                Value::Arr(
                    self.buckets
                        .iter()
                        .map(|(&idx, &n)| {
                            Value::Arr(vec![Value::UInt(u64::from(idx)), Value::UInt(n)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// All metrics of one recorder (or of one attached worker's buffer).
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// Kernel and span timing summaries, in the sample's own unit
    /// (nanoseconds for the autodiff hooks).
    summaries: BTreeMap<String, Summary>,
    /// Latency histograms for the streams fed via [`MetricSet::record_latency`];
    /// keys mirror `summaries` so readers can pair totals with quantiles.
    hists: BTreeMap<String, Histogram>,
}

impl MetricSet {
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Keeps the maximum of all observations (peak gauges).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = g.max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Records one sample into a named summary; `false` when dropped.
    pub fn record(&mut self, name: &str, v: f64) -> bool {
        match self.summaries.get_mut(name) {
            Some(s) => s.record(v),
            None => {
                let mut s = Summary::default();
                let ok = s.record(v);
                self.summaries.insert(name.to_string(), s);
                ok
            }
        }
    }

    /// Records one latency sample into both the summary and the
    /// histogram of `name`, so the stream reports totals *and*
    /// p50/p90/p99; `false` when dropped.
    pub fn record_latency(&mut self, name: &str, v: f64) -> bool {
        let ok = self.record(name, v);
        match self.hists.get_mut(name) {
            Some(h) => {
                h.record(v);
            }
            None => {
                let mut h = Histogram::default();
                h.record(v);
                self.hists.insert(name.to_string(), h);
            }
        }
        ok
    }

    /// Folds another metric set into this one (worker detach): counters
    /// and histogram buckets add, summaries merge, gauges keep the max
    /// (the only order-independent choice for concurrent writers).
    pub fn merge(&mut self, other: MetricSet) {
        for (k, v) in other.counters {
            match self.counters.get_mut(&k) {
                Some(c) => *c += v,
                None => {
                    self.counters.insert(k, v);
                }
            }
        }
        for (k, v) in other.gauges {
            match self.gauges.get_mut(&k) {
                Some(g) => *g = g.max(v),
                None => {
                    self.gauges.insert(k, v);
                }
            }
        }
        for (k, s) in other.summaries {
            match self.summaries.get_mut(&k) {
                Some(d) => d.merge(&s),
                None => {
                    self.summaries.insert(k, s);
                }
            }
        }
        for (k, h) in other.hists {
            match self.hists.get_mut(&k) {
                Some(d) => d.merge(&h),
                None => {
                    self.hists.insert(k, h);
                }
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.summaries.is_empty()
            && self.hists.is_empty()
    }

    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    pub fn summaries(&self) -> &BTreeMap<String, Summary> {
        &self.summaries
    }

    pub fn hists(&self) -> &BTreeMap<String, Histogram> {
        &self.hists
    }

    /// The payload fields of a `metrics` trace record.
    pub fn to_fields(&self) -> Vec<(String, Value)> {
        vec![
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Value::Num(v))).collect()),
            ),
            (
                "summaries".to_string(),
                Value::Obj(
                    self.summaries.iter().map(|(k, &s)| (k.clone(), s.to_value())).collect(),
                ),
            ),
            (
                "hists".to_string(),
                Value::Obj(self.hists.iter().map(|(k, h)| (k.clone(), h.to_value())).collect()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricSet::default();
        m.counter_add("tapes", 2);
        m.counter_add("tapes", 3);
        m.gauge_set("hit_rate", 0.5);
        m.gauge_set("hit_rate", 0.9);
        m.gauge_max("peak", 10.0);
        m.gauge_max("peak", 4.0);
        assert_eq!(m.counters()["tapes"], 5);
        assert_eq!(m.gauges()["hit_rate"], 0.9);
        assert_eq!(m.gauges()["peak"], 10.0);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut m = MetricSet::default();
        for v in [4.0, 1.0, 7.0] {
            m.record("spmm", v);
        }
        let s = m.summaries()["spmm"];
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn bad_samples_are_dropped_not_poisonous() {
        let mut s = Summary::default();
        assert!(s.record(2.0));
        assert!(!s.record(f64::NAN));
        assert!(!s.record(-1.0));
        assert!(!s.record(f64::INFINITY));
        assert!(s.record(4.0));
        assert_eq!(s.count, 2);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);

        let mut h = Histogram::default();
        assert!(h.record(2.0));
        assert!(!h.record(f64::NAN));
        assert!(!h.record(-3.0));
        assert_eq!(h.count(), 1);
        assert_eq!(h.dropped(), 2);
        assert_eq!(h.buckets().values().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        // Log buckets guarantee at most 1/SUBS relative error upward.
        let p50 = h.quantile(0.5);
        assert!((500.0..=580.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990.0..=1000.0 * 1.13).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_bucket_edges_are_consistent() {
        // Every sample's bucket upper edge must be >= the sample, and the
        // index function must be monotone in the sample.
        let mut prev_idx = 0u16;
        for v in [0.0, 0.5, 1.0, 3.0, 8.0, 9.0, 100.0, 1e6, 1e12, 1e18] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            assert!(bucket_upper(idx) > v || v < 2.0, "upper edge below sample at {v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn histogram_merge_is_order_independent_on_buckets() {
        let chunks: Vec<Vec<f64>> =
            vec![vec![10.0, 500.0, 3.0], vec![70_000.0, 12.0], vec![1e9, 2.0, 640.0]];
        let mut whole = Histogram::default();
        for v in chunks.iter().flatten() {
            whole.record(*v);
        }
        // Merge the per-chunk histograms in two different orders.
        let parts: Vec<Histogram> = chunks
            .iter()
            .map(|c| {
                let mut h = Histogram::default();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut fwd = Histogram::default();
        let mut rev = Histogram::default();
        for p in &parts {
            fwd.merge(p);
        }
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.buckets(), whole.buckets());
        assert_eq!(rev.buckets(), whole.buckets());
        assert_eq!(fwd.count(), rev.count());
        assert_eq!(fwd.min(), rev.min());
        assert_eq!(fwd.max(), rev.max());
    }

    #[test]
    fn metric_set_merge_combines_all_kinds() {
        let mut a = MetricSet::default();
        a.counter_add("n", 1);
        a.gauge_max("peak", 5.0);
        a.record("s", 1.0);
        a.record_latency("lat", 100.0);
        let mut b = MetricSet::default();
        b.counter_add("n", 2);
        b.gauge_max("peak", 9.0);
        b.record("s", 3.0);
        b.record_latency("lat", 900.0);
        a.merge(b);
        assert_eq!(a.counters()["n"], 3);
        assert_eq!(a.gauges()["peak"], 9.0);
        assert_eq!(a.summaries()["s"].count, 2);
        let h = &a.hists()["lat"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 100.0);
        assert_eq!(h.max(), 900.0);
    }

    #[test]
    fn fields_serialise_to_json() {
        let mut m = MetricSet::default();
        m.counter_add("n", 1);
        m.record("k", 2.0);
        m.record_latency("lat", 50.0);
        let obj = Value::Obj(m.to_fields().into_iter().collect());
        let text = obj.to_json();
        let back = Value::parse(&text).expect("parse");
        assert_eq!(back.get("counters").and_then(|c| c.get("n")).and_then(Value::as_u64), Some(1));
        assert_eq!(
            back.get("summaries")
                .and_then(|s| s.get("k"))
                .and_then(|k| k.get("mean"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        let lat = back.get("hists").and_then(|h| h.get("lat")).expect("lat histogram");
        assert_eq!(lat.get("count").and_then(Value::as_u64), Some(1));
        assert!(lat.get("p99").and_then(Value::as_f64).is_some());
        let buckets = lat.get("buckets").and_then(Value::as_arr).expect("buckets");
        assert_eq!(buckets.len(), 1);
    }
}
