//! The recorder's metric registry: counters, gauges and kernel-timing
//! histogram summaries.
//!
//! Metrics accumulate silently on the active recorder and are written out
//! as one `metrics` record per [`crate::flush_metrics`] call (the search
//! and train loops flush once per run; benches flush per scenario). High
//! rate sources — the kernel timing hooks in `sane_autodiff::parallel` —
//! therefore cost a map update, not a trace record, per sample.

use std::collections::BTreeMap;

use crate::value::Value;

/// Summary statistics of one stream of samples (no buckets: the consumers
/// of kernel timings want totals and extremes, and a fixed-bucket histogram
/// would hard-code a nanosecond scale other metrics don't share).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_value(self) -> Value {
        Value::Obj(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::Num(self.sum)),
            ("min".to_string(), Value::Num(self.min)),
            ("max".to_string(), Value::Num(self.max)),
            ("mean".to_string(), Value::Num(self.mean())),
        ])
    }
}

/// All metrics of one recorder.
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// Kernel and span timing summaries, in the sample's own unit
    /// (nanoseconds for the autodiff hooks).
    summaries: BTreeMap<String, Summary>,
}

impl MetricSet {
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Keeps the maximum of all observations (peak gauges).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = g.max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    pub fn record(&mut self, name: &str, v: f64) {
        match self.summaries.get_mut(name) {
            Some(s) => s.record(v),
            None => {
                let mut s = Summary::default();
                s.record(v);
                self.summaries.insert(name.to_string(), s);
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.summaries.is_empty()
    }

    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    pub fn summaries(&self) -> &BTreeMap<String, Summary> {
        &self.summaries
    }

    /// The payload fields of a `metrics` trace record.
    pub fn to_fields(&self) -> Vec<(String, Value)> {
        vec![
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Value::Num(v))).collect()),
            ),
            (
                "summaries".to_string(),
                Value::Obj(
                    self.summaries.iter().map(|(k, &s)| (k.clone(), s.to_value())).collect(),
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricSet::default();
        m.counter_add("tapes", 2);
        m.counter_add("tapes", 3);
        m.gauge_set("hit_rate", 0.5);
        m.gauge_set("hit_rate", 0.9);
        m.gauge_max("peak", 10.0);
        m.gauge_max("peak", 4.0);
        assert_eq!(m.counters()["tapes"], 5);
        assert_eq!(m.gauges()["hit_rate"], 0.9);
        assert_eq!(m.gauges()["peak"], 10.0);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut m = MetricSet::default();
        for v in [4.0, 1.0, 7.0] {
            m.record("spmm", v);
        }
        let s = m.summaries()["spmm"];
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn fields_serialise_to_json() {
        let mut m = MetricSet::default();
        m.counter_add("n", 1);
        m.record("k", 2.0);
        let obj = Value::Obj(m.to_fields().into_iter().collect());
        let text = obj.to_json();
        let back = Value::parse(&text).expect("parse");
        assert_eq!(back.get("counters").and_then(|c| c.get("n")).and_then(Value::as_u64), Some(1));
        assert_eq!(
            back.get("summaries")
                .and_then(|s| s.get("k"))
                .and_then(|k| k.get("mean"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
    }
}
