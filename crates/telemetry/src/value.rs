//! A minimal self-contained JSON value: enough to write and read back the
//! JSONL trace format without external dependencies.
//!
//! The writer emits strict JSON (non-finite floats become `null`); the
//! parser accepts the full JSON grammar so traces survive hand edits and
//! third-party producers.

use std::fmt::{self, Write as _};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact rather than routed through `f64`.
    Int(i64),
    /// Unsigned counters above `i64::MAX` still serialise exactly.
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object fields in insertion order (trace records are small; a map
    /// would only buy asymptotics nothing here needs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: ints, uints and floats all convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    /// Human-oriented rendering for the console sink: strings unquoted,
    /// everything else as JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => f.write_str(&other.to_json()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Num(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&[f32]> for Value {
    fn from(v: &[f32]) -> Self {
        Value::Arr(v.iter().map(|&x| Value::Num(f64::from(x))).collect())
    }
}
impl From<&Vec<f32>> for Value {
    fn from(v: &Vec<f32>) -> Self {
        Value::from(v.as_slice())
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Arr(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogates (e.g. emoji) are not produced by
                            // this writer; map them to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("malformed number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("epoch \"3\"\n".into())),
            ("n".into(), Value::Int(-7)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("x".into(), Value::Num(0.25)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("row".into(), Value::from(&[0.5f32, 0.5][..])),
        ]);
        let text = v.to_json();
        let back = Value::parse(&text).expect("parse back");
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parses_whitespace_and_exponents() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5e-2 , true ] } ").expect("parse");
        let arr = v.get("a").and_then(Value::as_arr).expect("array");
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1], Value::Num(0.025));
        assert_eq!(arr[2], Value::Bool(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "12x", "\"unterminated", "{} trailing"] {
            assert!(Value::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Value::parse("\"\\u0041\\u00e9\"").expect("parse");
        assert_eq!(v, Value::Str("Aé".to_string()));
    }

    #[test]
    fn numeric_views_convert() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Num(4.0).as_u64(), Some(4));
        assert_eq!(Value::Num(4.5).as_u64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
