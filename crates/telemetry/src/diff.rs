//! Regression forensics: align two recorded traces into a diff tree and
//! attribute a regressed gate metric to the hottest changed subtree.
//!
//! ## Alignment model
//!
//! Both traces are first replayed into [`Profile`]s, so the differ works
//! on the same attribution the flamegraph uses. Span nodes align by full
//! **stack path** (root-first span names); kernel nodes align by
//! **(phase tag, kernel name)** — a span renamed between runs therefore
//! shows up as a removed path plus an added path, while its kernels (which
//! keep their phase tag) still align and diff cleanly. Nodes present on
//! only one side carry a [`Presence`] marker instead of being dropped.
//!
//! ## Delta model
//!
//! Span nodes diff total and self nanoseconds; self time has the phased
//! kernel nanoseconds grafted under the path subtracted (exactly as
//! [`Profile::to_collapsed`] does), so a kernel slowdown is charged to the
//! kernel node once, never also to its enclosing span's self time. Kernel
//! nodes diff total time and histogram quantiles; a p50/p99 shift smaller
//! than twice [`crate::metrics::QUANTILE_REL_ERROR`] is within the
//! histogram's bucket resolution and rendered as noise, not signal.
//!
//! ## Attribution
//!
//! [`attribute`] scopes the diff tree to the regressed metric's scenario
//! (first dotted component of the metric key matched against stack
//! frames), ranks the positive-delta nodes, and marks each suspect
//! significant when its delta clears a [`NoiseModel`] derived from the
//! baseline history window — `max(3 × MAD, gate floor)` — so scheduler
//! jitter on a sub-millisecond kernel is never reported as the cause of a
//! regression.
//!
//! The differential collapsed-stack export ([`TraceDiff::to_collapsed`])
//! puts regressions under a synthetic `regressed` root frame and
//! improvements (delta-magnitude-weighted) under `improved`, and
//! round-trips through [`crate::profile::parse_collapsed`].

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::QUANTILE_REL_ERROR;
use crate::profile::{graftable, KernelStat, Profile};
use crate::value::Value;

/// Schema tag stamped on every `DIFF_<bench>.json` artifact.
pub const DIFF_SCHEMA: &str = "sane.diff.v1";

/// Which side(s) of the diff a node appeared on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Presence {
    Both,
    BaselineOnly,
    CandidateOnly,
}

impl Presence {
    pub fn label(self) -> &'static str {
        match self {
            Presence::Both => "both",
            Presence::BaselineOnly => "baseline_only",
            Presence::CandidateOnly => "candidate_only",
        }
    }

    fn marker(self) -> char {
        match self {
            Presence::Both => ' ',
            Presence::BaselineOnly => '-',
            Presence::CandidateOnly => '+',
        }
    }
}

/// One side's aggregate for a diff node. Span nodes carry `self_ns` with
/// grafted kernel time already subtracted; kernel nodes mirror their
/// total into `self_ns` and carry quantiles when the trace recorded a
/// histogram for the stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Side {
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    /// `(p50, p99)` nanoseconds, kernel nodes only.
    pub quantiles: Option<(f64, f64)>,
}

/// One aligned node of the diff tree.
#[derive(Clone, Debug)]
pub struct DiffNode {
    /// Root-first stack path; kernel nodes end in a `kernel:<name>` leaf
    /// under the phase-declaring span path (the flamegraph convention).
    pub stack: Vec<String>,
    /// Kernel name for kernel nodes, `None` for span nodes.
    pub kernel: Option<String>,
    pub presence: Presence,
    pub base: Side,
    pub cand: Side,
}

impl DiffNode {
    pub fn total_delta_ns(&self) -> i64 {
        self.cand.total_ns as i64 - self.base.total_ns as i64
    }

    pub fn self_delta_ns(&self) -> i64 {
        self.cand.self_ns as i64 - self.base.self_ns as i64
    }

    /// The delta this node is *responsible* for: total time for kernels,
    /// grafted-adjusted self time for spans — additive across the tree,
    /// so one slow kernel is never charged twice.
    pub fn attributable_delta_ns(&self) -> i64 {
        if self.kernel.is_some() {
            self.total_delta_ns()
        } else {
            self.self_delta_ns()
        }
    }

    fn attributable_sides_ns(&self) -> (u64, u64) {
        if self.kernel.is_some() {
            (self.base.total_ns, self.cand.total_ns)
        } else {
            (self.base.self_ns, self.cand.self_ns)
        }
    }

    /// Relative change of the attributable time; `None` when the baseline
    /// side is empty (a ratio against zero carries no information).
    pub fn rel_change(&self) -> Option<f64> {
        let (b, _) = self.attributable_sides_ns();
        (b > 0).then(|| self.attributable_delta_ns() as f64 / b as f64)
    }

    /// Relative `(p50, p99)` shifts, when both sides carry quantiles with
    /// a nonzero baseline.
    pub fn quantile_shifts(&self) -> Option<(f64, f64)> {
        let (b50, b99) = self.base.quantiles?;
        let (c50, c99) = self.cand.quantiles?;
        (b50 > 0.0 && b99 > 0.0).then(|| ((c50 - b50) / b50, (c99 - b99) / b99))
    }
}

/// True when a relative quantile shift exceeds what histogram bucket
/// resolution alone can produce (each side reads back within
/// [`QUANTILE_REL_ERROR`] of the true value).
pub fn quantile_shift_significant(shift: f64) -> bool {
    shift.abs() > 2.0 * QUANTILE_REL_ERROR
}

/// The aligned diff of two traces.
#[derive(Clone, Debug, Default)]
pub struct TraceDiff {
    pub base_run: String,
    pub cand_run: String,
    pub base_wall_ns: u64,
    pub cand_wall_ns: u64,
    /// Span nodes in stack-path order, then kernel nodes in
    /// (phase, name) order — deterministic for byte-stable artifacts.
    pub nodes: Vec<DiffNode>,
}

fn kernel_side(k: &KernelStat) -> Side {
    Side {
        count: k.count,
        total_ns: k.total_ns,
        self_ns: k.total_ns,
        quantiles: k.quantiles.map(|(p50, _p90, p99)| (p50, p99)),
    }
}

/// Aligns two profiled traces into a [`TraceDiff`]. Pure and total: any
/// pair of valid profiles diffs, including empty or disjoint ones.
pub fn diff(base: &Profile, cand: &Profile) -> TraceDiff {
    let mut out = TraceDiff {
        base_run: base.run.clone(),
        cand_run: cand.run.clone(),
        base_wall_ns: base.wall_ns,
        cand_wall_ns: cand.wall_ns,
        nodes: Vec::new(),
    };

    // Span nodes: align by stack path, self time net of grafted kernels.
    let base_grafted = base.grafted_by_path();
    let cand_grafted = cand.grafted_by_path();
    let mut spans: BTreeMap<&[String], (Option<Side>, Option<Side>)> = BTreeMap::new();
    for f in &base.frames {
        let taken = base_grafted.get(&f.stack).copied().unwrap_or(0);
        let side = Side {
            count: f.count,
            total_ns: f.total_ns,
            self_ns: f.self_ns.saturating_sub(taken),
            quantiles: None,
        };
        spans.entry(&f.stack).or_default().0 = Some(side);
    }
    for f in &cand.frames {
        let taken = cand_grafted.get(&f.stack).copied().unwrap_or(0);
        let side = Side {
            count: f.count,
            total_ns: f.total_ns,
            self_ns: f.self_ns.saturating_sub(taken),
            quantiles: None,
        };
        spans.entry(&f.stack).or_default().1 = Some(side);
    }
    for (stack, (b, c)) in spans {
        out.nodes.push(DiffNode {
            stack: stack.to_vec(),
            kernel: None,
            presence: presence_of(b.is_some(), c.is_some()),
            base: b.unwrap_or_default(),
            cand: c.unwrap_or_default(),
        });
    }

    // Kernel nodes: align by (phase, name); the stack path is taken from
    // whichever side has the node (candidate wins when both do, so the
    // report shows current paths).
    type KernelKey = (Option<String>, String);
    let mut kernels: BTreeMap<KernelKey, (Option<&KernelStat>, Option<&KernelStat>)> =
        BTreeMap::new();
    for k in &base.kernels {
        kernels.entry((k.phase.clone(), k.name.clone())).or_default().0 = Some(k);
    }
    for k in &cand.kernels {
        kernels.entry((k.phase.clone(), k.name.clone())).or_default().1 = Some(k);
    }
    for ((_phase, name), (b, c)) in kernels {
        let stack = match (b, c) {
            (_, Some(k)) => cand.kernel_stack(k),
            (Some(k), None) => base.kernel_stack(k),
            (None, None) => continue,
        };
        out.nodes.push(DiffNode {
            stack,
            kernel: Some(name),
            presence: presence_of(b.is_some(), c.is_some()),
            base: b.map(kernel_side).unwrap_or_default(),
            cand: c.map(kernel_side).unwrap_or_default(),
        });
    }
    out
}

fn presence_of(base: bool, cand: bool) -> Presence {
    match (base, cand) {
        (true, false) => Presence::BaselineOnly,
        (false, true) => Presence::CandidateOnly,
        _ => Presence::Both,
    }
}

impl TraceDiff {
    /// Nodes with any delta or one-sided presence, hottest (largest
    /// absolute attributable delta) first; ties break on stack path.
    pub fn changed(&self) -> Vec<&DiffNode> {
        let mut out: Vec<&DiffNode> = self
            .nodes
            .iter()
            .filter(|n| n.attributable_delta_ns() != 0 || n.presence != Presence::Both)
            .collect();
        out.sort_by(|a, b| {
            b.attributable_delta_ns()
                .abs()
                .cmp(&a.attributable_delta_ns().abs())
                .then_with(|| a.stack.cmp(&b.stack))
        });
        out
    }

    /// The machine-readable diff ([`DIFF_SCHEMA`]); `attributions` are the
    /// per-regressed-metric verdicts produced by [`attribute`].
    pub fn to_json(&self, attributions: &[Attribution]) -> Value {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let side = |s: &Side| {
                    let mut fields = vec![
                        ("count".to_string(), Value::UInt(s.count)),
                        ("total_ns".to_string(), Value::UInt(s.total_ns)),
                        ("self_ns".to_string(), Value::UInt(s.self_ns)),
                    ];
                    if let Some((p50, p99)) = s.quantiles {
                        fields.push(("p50_ns".to_string(), Value::Num(p50)));
                        fields.push(("p99_ns".to_string(), Value::Num(p99)));
                    }
                    Value::Obj(fields)
                };
                Value::Obj(vec![
                    (
                        "stack".to_string(),
                        Value::Arr(n.stack.iter().cloned().map(Value::Str).collect()),
                    ),
                    (
                        "kind".to_string(),
                        Value::Str(if n.kernel.is_some() { "kernel" } else { "span" }.to_string()),
                    ),
                    ("presence".to_string(), Value::Str(n.presence.label().to_string())),
                    ("base".to_string(), side(&n.base)),
                    ("cand".to_string(), side(&n.cand)),
                    ("total_delta_ns".to_string(), Value::Int(n.total_delta_ns())),
                    ("self_delta_ns".to_string(), Value::Int(n.self_delta_ns())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(DIFF_SCHEMA.to_string())),
            ("base_run".to_string(), Value::Str(self.base_run.clone())),
            ("cand_run".to_string(), Value::Str(self.cand_run.clone())),
            ("base_wall_ns".to_string(), Value::UInt(self.base_wall_ns)),
            ("cand_wall_ns".to_string(), Value::UInt(self.cand_wall_ns)),
            ("nodes".to_string(), Value::Arr(nodes)),
            (
                "attributions".to_string(),
                Value::Arr(attributions.iter().map(Attribution::to_json).collect()),
            ),
        ])
    }

    /// Differential collapsed stacks: regressions grow under a synthetic
    /// `regressed` root, improvements under `improved` (weighted by delta
    /// magnitude, since collapsed counts are unsigned). Load either root
    /// in a flamegraph viewer to see where the time went. Output parses
    /// with [`crate::profile::parse_collapsed`]; enclosing kernels (whose
    /// samples contain other kernels) are excluded, as in single-run
    /// flamegraphs.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            if n.kernel.as_deref().is_some_and(|k| !graftable(k)) {
                continue;
            }
            let delta = n.attributable_delta_ns();
            if delta == 0 {
                continue;
            }
            out.push_str(if delta > 0 { "regressed;" } else { "improved;" });
            out.push_str(&n.stack.join(";"));
            out.push(' ');
            out.push_str(&delta.unsigned_abs().to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wall_delta = self.cand_wall_ns as i64 - self.base_wall_ns as i64;
        writeln!(
            f,
            "trace diff: `{}` -> `{}` ({:.3} ms -> {:.3} ms wall, {:+.3} ms)",
            self.base_run,
            self.cand_run,
            self.base_wall_ns as f64 / 1e6,
            self.cand_wall_ns as f64 / 1e6,
            wall_delta as f64 / 1e6
        )?;
        let changed = self.changed();
        if changed.is_empty() {
            return writeln!(f, "  no changed nodes: traces attribute identically");
        }
        writeln!(
            f,
            "   {:<52} {:>10} {:>10} {:>10} {:>8}  p50/p99",
            "node (kernels carry total, spans self time)", "base ms", "cand ms", "delta ms", "rel"
        )?;
        const SHOWN: usize = 24;
        for n in changed.iter().take(SHOWN) {
            let (b, c) = n.attributable_sides_ns();
            let rel = match n.rel_change() {
                Some(r) => format!("{:+.1}%", r * 100.0),
                None => "-".to_string(),
            };
            let quant = match n.quantile_shifts() {
                Some((p50, p99)) => {
                    let mark = |s: f64| {
                        if quantile_shift_significant(s) {
                            format!("{:+.0}%", s * 100.0)
                        } else {
                            // Under bucket resolution: noise, not signal.
                            "~".to_string()
                        }
                    };
                    format!("{}/{}", mark(p50), mark(p99))
                }
                None => String::new(),
            };
            writeln!(
                f,
                "  {} {:<52} {:>10.3} {:>10.3} {:>+10.3} {:>8}  {quant}",
                n.presence.marker(),
                n.stack.join(";"),
                b as f64 / 1e6,
                c as f64 / 1e6,
                n.attributable_delta_ns() as f64 / 1e6,
                rel
            )?;
        }
        if changed.len() > SHOWN {
            writeln!(
                f,
                "  ... {} more changed node(s) in the JSON artifact",
                changed.len() - SHOWN
            )?;
        }
        Ok(())
    }
}

/// Median absolute deviation: the robust per-sample scatter of a history
/// window (insensitive to the spikes the gate's median already absorbs).
/// Zero for empty or constant windows.
pub fn mad(samples: &[f64]) -> f64 {
    fn median(mut xs: Vec<f64>) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        }
    }
    if samples.is_empty() {
        return 0.0;
    }
    let m = median(samples.to_vec());
    median(samples.iter().map(|x| (x - m).abs()).collect())
}

/// Expected run-to-run scatter of one gate metric, derived from its
/// baseline history window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// Robust per-sample scatter (MAD of the window), milliseconds.
    pub sigma_ms: f64,
    /// The gate's absolute floor, milliseconds.
    pub floor_ms: f64,
}

impl NoiseModel {
    /// Builds the model from the trailing history window of the metric
    /// (the same samples the gate took its median over).
    pub fn from_window(window: &[f64], floor_ms: f64) -> Self {
        NoiseModel { sigma_ms: mad(window), floor_ms }
    }

    /// A suspect's delta must clear this to count as signal: three robust
    /// sigmas, but never below the gate's own floor.
    pub fn threshold_ms(&self) -> f64 {
        (3.0 * self.sigma_ms).max(self.floor_ms)
    }
}

/// One ranked cause candidate for a regressed metric.
#[derive(Clone, Debug)]
pub struct Suspect {
    pub stack: Vec<String>,
    /// Attributable delta (kernel total / span self), milliseconds.
    pub delta_ms: f64,
    pub base_ms: f64,
    pub cand_ms: f64,
    pub rel: Option<f64>,
    pub p50_shift: Option<f64>,
    pub p99_shift: Option<f64>,
    /// Delta clears the noise threshold.
    pub significant: bool,
    pub presence: Presence,
}

/// The attribution verdict for one regressed gate metric.
#[derive(Clone, Debug)]
pub struct Attribution {
    pub metric: String,
    /// Scenario frame the diff tree was scoped to; `None` when no frame
    /// matched and the whole tree was ranked.
    pub scope: Option<String>,
    /// Gate numbers: the regressed median and committed base, ms.
    pub median_ms: f64,
    pub base_ms: f64,
    pub noise: NoiseModel,
    /// Positive-delta nodes, hottest first.
    pub suspects: Vec<Suspect>,
}

impl Attribution {
    /// The hottest suspect — the report's one-line answer.
    pub fn top(&self) -> Option<&Suspect> {
        self.suspects.first()
    }

    pub fn to_json(&self) -> Value {
        let opt = |v: Option<f64>| v.map(Value::Num).unwrap_or(Value::Null);
        let suspects = self
            .suspects
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    (
                        "stack".to_string(),
                        Value::Arr(s.stack.iter().cloned().map(Value::Str).collect()),
                    ),
                    ("delta_ms".to_string(), Value::Num(s.delta_ms)),
                    ("base_ms".to_string(), Value::Num(s.base_ms)),
                    ("cand_ms".to_string(), Value::Num(s.cand_ms)),
                    ("rel".to_string(), opt(s.rel)),
                    ("p50_shift".to_string(), opt(s.p50_shift)),
                    ("p99_shift".to_string(), opt(s.p99_shift)),
                    ("significant".to_string(), Value::Bool(s.significant)),
                    ("presence".to_string(), Value::Str(s.presence.label().to_string())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("metric".to_string(), Value::Str(self.metric.clone())),
            ("scope".to_string(), self.scope.clone().map(Value::Str).unwrap_or(Value::Null)),
            ("median_ms".to_string(), Value::Num(self.median_ms)),
            ("base_ms".to_string(), Value::Num(self.base_ms)),
            (
                "noise".to_string(),
                Value::Obj(vec![
                    ("sigma_ms".to_string(), Value::Num(self.noise.sigma_ms)),
                    ("floor_ms".to_string(), Value::Num(self.noise.floor_ms)),
                    ("threshold_ms".to_string(), Value::Num(self.noise.threshold_ms())),
                ]),
            ),
            ("suspects".to_string(), Value::Arr(suspects)),
        ])
    }
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metric `{}`: median {:.4} ms vs base {:.4} ms ({:+.1}%), noise ±{:.4} ms \
             (threshold {:.4} ms)",
            self.metric,
            self.median_ms,
            self.base_ms,
            if self.base_ms > 0.0 {
                (self.median_ms - self.base_ms) / self.base_ms * 100.0
            } else {
                0.0
            },
            self.noise.sigma_ms,
            self.noise.threshold_ms()
        )?;
        match &self.scope {
            Some(s) => writeln!(f, "  suspects (scoped to `{s}`):")?,
            None => writeln!(f, "  suspects (no scenario frame matched; whole tree):")?,
        }
        if self.suspects.is_empty() {
            return writeln!(
                f,
                "    none: no node slowed down — the regression is outside the traced scope \
                 (setup, allocator, environment)"
            );
        }
        for (i, s) in self.suspects.iter().enumerate() {
            let rel = match s.rel {
                Some(r) => format!("x{:.2}", 1.0 + r),
                None => "new".to_string(),
            };
            let quant = match (s.p50_shift, s.p99_shift) {
                (Some(p50), Some(p99))
                    if quantile_shift_significant(p50) || quantile_shift_significant(p99) =>
                {
                    format!(", p50 {:+.0}% p99 {:+.0}%", p50 * 100.0, p99 * 100.0)
                }
                _ => String::new(),
            };
            writeln!(
                f,
                "   {:>2}. {} {:<52} {:+.4} ms ({rel}{quant}){}",
                i + 1,
                s.presence.marker(),
                s.stack.join(";"),
                s.delta_ms,
                if s.significant { "  SIGNIFICANT" } else { "  (within noise)" }
            )?;
        }
        Ok(())
    }
}

/// True when `frame` names `scenario`: exactly, or as the final dotted /
/// colon-separated component (`bench.spmm_forward` and `kernel:spmm` both
/// match their scenarios).
fn frame_matches(frame: &str, scenario: &str) -> bool {
    frame == scenario
        || frame
            .strip_suffix(scenario)
            .is_some_and(|prefix| prefix.ends_with('.') || prefix.ends_with(':'))
}

/// Attributes one regressed gate metric to the diff tree's hottest
/// changed nodes. `gate_ms` is the `(median, base)` pair the gate
/// reported; `top` caps the suspect list.
pub fn attribute(
    d: &TraceDiff,
    metric: &str,
    gate_ms: (f64, f64),
    noise: NoiseModel,
    top: usize,
) -> Attribution {
    let scenario = metric.split('.').next().unwrap_or(metric);
    let in_scope: Vec<&DiffNode> =
        d.nodes.iter().filter(|n| n.stack.iter().any(|fr| frame_matches(fr, scenario))).collect();
    let (scope, nodes) = if in_scope.is_empty() {
        (None, d.nodes.iter().collect::<Vec<_>>())
    } else {
        (Some(scenario.to_string()), in_scope)
    };

    let mut suspects: Vec<Suspect> = nodes
        .into_iter()
        .filter(|n| n.attributable_delta_ns() > 0)
        .map(|n| {
            let (b, c) = n.attributable_sides_ns();
            let delta_ms = n.attributable_delta_ns() as f64 / 1e6;
            let shifts = n.quantile_shifts();
            Suspect {
                stack: n.stack.clone(),
                delta_ms,
                base_ms: b as f64 / 1e6,
                cand_ms: c as f64 / 1e6,
                rel: n.rel_change(),
                p50_shift: shifts.map(|(p50, _)| p50),
                p99_shift: shifts.map(|(_, p99)| p99),
                significant: delta_ms >= noise.threshold_ms(),
                presence: n.presence,
            }
        })
        .collect();
    suspects.sort_by(|a, b| {
        b.delta_ms
            .partial_cmp(&a.delta_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.stack.cmp(&b.stack))
    });
    suspects.truncate(top);
    Attribution {
        metric: metric.to_string(),
        scope,
        median_ms: gate_ms.0,
        base_ms: gate_ms.1,
        noise,
        suspects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{parse_collapsed, profile};
    use std::fmt::Write as _;

    /// One synthetic kernel row: name, phase, count, summed ns, quantiles.
    type KernelRow<'a> = (&'a str, Option<&'a str>, u64, u64, (f64, f64, f64));

    /// Hand-built deterministic trace: a chain of nested spans (opened in
    /// order, closed in reverse) plus per-(kernel, phase) timing
    /// summaries, exactly as the recorder would emit them.
    fn synth(run: &str, spans: &[(&str, Option<&str>, u64)], kernels: &[KernelRow]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, r#"{{"kind":"run_start","t_ns":0,"level":"info","run":"{run}"}}"#);
        for (i, (name, phase, _)) in spans.iter().enumerate() {
            let parent = if i == 0 { String::new() } else { format!(r#""parent":{i},"#) };
            let phase = phase.map(|p| format!(r#""phase":"{p}","#)).unwrap_or_default();
            let id = i + 1;
            let _ = writeln!(
                out,
                r#"{{"kind":"span_open","t_ns":{id},"level":"debug","id":{id},{parent}{phase}"name":"{name}"}}"#
            );
        }
        for (i, (name, _, elapsed)) in spans.iter().enumerate().rev() {
            let id = i + 1;
            let _ = writeln!(
                out,
                r#"{{"kind":"span_close","t_ns":{},"level":"debug","id":{id},"name":"{name}","elapsed_ns":{elapsed}}}"#,
                100 + (spans.len() - i)
            );
        }
        // Summaries: one per (phase, kernel) row plus the per-kernel
        // totals the profiler subtracts phases from.
        let mut summaries = String::new();
        let mut hists = String::new();
        let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for &(kernel, phase, count, sum, (p50, p90, p99)) in kernels {
            let t = totals.entry(kernel).or_insert((0, 0));
            t.0 += count;
            t.1 += sum;
            if let Some(phase) = phase {
                let stream = format!("phase.{phase}.kernel.{kernel}.ns");
                let _ = write!(summaries, r#""{stream}":{{"count":{count},"sum":{sum}.0}},"#);
                let _ = write!(hists, r#""{stream}":{{"p50":{p50},"p90":{p90},"p99":{p99}}},"#);
            }
        }
        for &(kernel, phase, _, _, (p50, p90, p99)) in kernels {
            if phase.is_none() {
                let stream = format!("kernel.{kernel}.ns");
                let _ = write!(hists, r#""{stream}":{{"p50":{p50},"p90":{p90},"p99":{p99}}},"#);
            }
        }
        for (kernel, (count, sum)) in &totals {
            let _ = write!(summaries, r#""kernel.{kernel}.ns":{{"count":{count},"sum":{sum}.0}},"#);
        }
        summaries.pop();
        hists.pop();
        let _ = writeln!(
            out,
            r#"{{"kind":"metrics","t_ns":500,"level":"debug","counters":{{}},"gauges":{{}},"summaries":{{{summaries}}},"hists":{{{hists}}}}}"#
        );
        let _ = writeln!(
            out,
            r#"{{"kind":"run_end","t_ns":1000,"level":"info","elapsed_ns":1000000,"open_spans":0}}"#
        );
        out
    }

    fn base_trace() -> String {
        synth(
            "base",
            &[("bench", None, 900_000), ("spmm_forward", Some("spmm_forward"), 500_000)],
            &[("spmm", Some("spmm_forward"), 4, 400_000, (100_000.0, 110_000.0, 120_000.0))],
        )
    }

    fn node<'a>(d: &'a TraceDiff, leaf: &str) -> &'a DiffNode {
        d.nodes
            .iter()
            .find(|n| n.stack.last().map(String::as_str) == Some(leaf))
            .unwrap_or_else(|| panic!("no node ending in {leaf}"))
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let p = profile(&base_trace()).expect("valid trace");
        let d = diff(&p, &p);
        assert!(d.changed().is_empty(), "{d}");
        assert!(d.nodes.iter().all(|n| n.presence == Presence::Both));
        assert!(d.nodes.iter().all(|n| n.total_delta_ns() == 0 && n.self_delta_ns() == 0));
        assert_eq!(d.to_collapsed(), "");
        // And nothing ranks as a suspect.
        let a = attribute(&d, "spmm_forward.ms_1t", (1.0, 1.0), NoiseModel::default(), 5);
        assert!(a.suspects.is_empty(), "{a}");
        assert!(a.to_string().contains("none:"), "{a}");
    }

    #[test]
    fn kernel_slowdown_diffs_and_attributes_top_1() {
        let base = profile(&base_trace()).expect("valid trace");
        // Candidate: the spmm kernel doubles; everything else unchanged.
        let cand = profile(&synth(
            "cand",
            &[("bench", None, 900_000), ("spmm_forward", Some("spmm_forward"), 900_000)],
            &[("spmm", Some("spmm_forward"), 4, 800_000, (200_000.0, 220_000.0, 240_000.0))],
        ))
        .expect("valid trace");
        let d = diff(&base, &cand);
        let k = node(&d, "kernel:spmm");
        assert_eq!(k.total_delta_ns(), 400_000);
        assert_eq!(k.presence, Presence::Both);
        let (p50, p99) = k.quantile_shifts().expect("quantiles on both sides");
        assert!(quantile_shift_significant(p50), "p50 shift {p50}");
        assert!(quantile_shift_significant(p99), "p99 shift {p99}");
        // The span's grafted-adjusted self time did not change: its extra
        // 400 µs total is exactly the kernel's, charged to the kernel.
        let span = node(&d, "spmm_forward");
        assert_eq!(span.self_delta_ns(), 0);
        assert_eq!(span.total_delta_ns(), 400_000);

        let noise = NoiseModel::from_window(&[1.0, 1.01, 0.99, 1.0, 1.02], 0.05);
        let a = attribute(&d, "spmm_forward.ms_1t", (2.0, 1.0), noise, 5);
        assert_eq!(a.scope.as_deref(), Some("spmm_forward"));
        let top = a.top().expect("has a suspect");
        assert_eq!(top.stack.last().map(String::as_str), Some("kernel:spmm"));
        assert!(top.significant, "{a}");

        // The differential flame has the kernel under the regressed root
        // and round-trips through the collapsed parser.
        let flame = d.to_collapsed();
        let rows = parse_collapsed(&flame).expect("diff flame parses");
        assert!(
            rows.iter().any(|(stack, n)| stack.first().map(String::as_str) == Some("regressed")
                && stack.last().map(String::as_str) == Some("kernel:spmm")
                && *n == 400_000),
            "{flame}"
        );
        // JSON artifact carries the schema and both sections.
        let json = d.to_json(&[a]);
        assert_eq!(json.get("schema").and_then(Value::as_str), Some(DIFF_SCHEMA));
        assert!(json.get("nodes").and_then(Value::as_arr).is_some_and(|n| !n.is_empty()));
        assert_eq!(json.get("attributions").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
    }

    #[test]
    fn renamed_span_shows_as_remove_plus_add_while_kernels_align() {
        let base = profile(&base_trace()).expect("valid trace");
        // The span was renamed but kept its phase tag: span nodes split
        // into one-sided pairs, the kernel still aligns by (phase, name).
        let cand = profile(&synth(
            "cand",
            &[("bench", None, 900_000), ("spmm_fwd_renamed", Some("spmm_forward"), 500_000)],
            &[("spmm", Some("spmm_forward"), 4, 400_000, (100_000.0, 110_000.0, 120_000.0))],
        ))
        .expect("valid trace");
        let d = diff(&base, &cand);
        assert_eq!(node(&d, "spmm_forward").presence, Presence::BaselineOnly);
        assert_eq!(node(&d, "spmm_fwd_renamed").presence, Presence::CandidateOnly);
        let k = node(&d, "kernel:spmm");
        assert_eq!(k.presence, Presence::Both);
        assert_eq!(k.total_delta_ns(), 0);
        // The kernel frame renders under the *candidate's* current path.
        assert!(k.stack.contains(&"spmm_fwd_renamed".to_string()), "{:?}", k.stack);
    }

    #[test]
    fn one_sided_kernel_and_span_only_baseline() {
        // Baseline recorded spans but no kernel timing at all.
        let base = profile(&synth("base", &[("bench", None, 900_000)], &[])).expect("valid trace");
        let cand = profile(&base_trace()).expect("valid trace");
        let d = diff(&base, &cand);
        let k = node(&d, "kernel:spmm");
        assert_eq!(k.presence, Presence::CandidateOnly);
        assert_eq!(k.base, Side::default());
        assert_eq!(k.total_delta_ns(), 400_000);
        assert_eq!(k.rel_change(), None, "no baseline side: no ratio");
        // It still ranks as a suspect (a new kernel is a real change)...
        let a = attribute(&d, "spmm_forward.ms_1t", (2.0, 1.0), NoiseModel::default(), 5);
        assert!(a.suspects.iter().any(|s| s.presence == Presence::CandidateOnly));
        // ...and the report renders it as `new`.
        assert!(a.to_string().contains("new"), "{a}");
    }

    #[test]
    fn quantile_shifts_below_bucket_resolution_are_noise() {
        assert!(!quantile_shift_significant(QUANTILE_REL_ERROR));
        assert!(!quantile_shift_significant(-2.0 * QUANTILE_REL_ERROR));
        assert!(quantile_shift_significant(2.0 * QUANTILE_REL_ERROR + 0.01));
        assert!(quantile_shift_significant(-0.5));
    }

    #[test]
    fn mad_is_robust_to_single_spikes() {
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        // One 10× spike barely moves the MAD.
        let m = mad(&[1.0, 1.1, 0.9, 1.0, 10.0]);
        assert!(m <= 0.2, "mad={m}");
        let noise = NoiseModel::from_window(&[1.0, 1.1, 0.9, 1.0, 10.0], 0.05);
        assert!((noise.threshold_ms() - 3.0 * m).abs() < 1e-12 || noise.threshold_ms() == 0.05);
    }
}
