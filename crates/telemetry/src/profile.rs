//! Trace profiler: aggregates a recorded JSONL trace's span tree and the
//! `kernel.<name>.ns` timing summaries into per-phase / per-kernel wall
//! time attribution, and exports `inferno`-compatible collapsed-stack
//! flamegraph text (no external dependencies; the emitted format
//! round-trips through [`parse_collapsed`]).
//!
//! ## Attribution model
//!
//! Spans form a tree (`span_open` carries `parent`); each closed span
//! contributes its `elapsed_ns` to the aggregate of its *stack path*
//! (root-first span names). **Self time** is a span's elapsed time minus
//! the elapsed time of its direct children, so sums stay additive.
//! Kernel samples live in the `metrics` record, not the span stream;
//! phase-tagged spans ([`crate::phase_span`]) book each sample against
//! the innermost phase (`phase.<phase>.kernel.<name>.ns`), which lets the
//! profiler graft kernel frames *under* the span path that declared the
//! phase — splitting e.g. arch-step from weight-step kernel time — while
//! subtracting the grafted nanoseconds from that path's self time to keep
//! the flamegraph additive. Kernel time sampled outside any phase is
//! reported in the kernel table but not grafted (it is already inside
//! some span's self time).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::value::Value;

/// Aggregated statistics of one span stack path.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameStat {
    /// Root-first span names.
    pub stack: Vec<String>,
    /// Number of span instances closed on this path.
    pub count: u64,
    /// Total elapsed nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Elapsed nanoseconds minus direct children (exclusive).
    pub self_ns: u64,
}

/// Aggregated time of one kernel, optionally within one phase.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStat {
    pub name: String,
    /// Phase the samples were booked under; `None` for the remainder
    /// sampled outside any phase-tagged span.
    pub phase: Option<String>,
    pub count: u64,
    pub total_ns: u64,
    /// Latency quantiles `(p50, p90, p99)` in nanoseconds, from the
    /// stream's histogram. Phase rows read the per-phase histogram; the
    /// remainder row only carries quantiles when *all* samples were
    /// unphased (quantiles, unlike sums, cannot be subtracted).
    pub quantiles: Option<(f64, f64, f64)>,
}

/// Per-phase / per-kernel attribution of one run trace.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    pub run: String,
    /// Run wall time from the `run_end` record.
    pub wall_ns: u64,
    /// Span aggregates keyed by stack path, depth-first order.
    pub frames: Vec<FrameStat>,
    /// Kernel aggregates: one row per `(kernel, phase)` plus a `None`
    /// phase row for the unattributed remainder of each kernel.
    pub kernels: Vec<KernelStat>,
    /// `tape.peak_resident_bytes` gauge, when the run recorded tapes.
    pub peak_resident_bytes: Option<f64>,
    /// Counters from the final metrics snapshot.
    pub counters: BTreeMap<String, u64>,
    /// Span stack path (joined) per phase tag, from `span_open` records.
    /// A phase maps to one path in well-formed instrumentation; multiple
    /// paths disable grafting for that phase.
    pub phase_paths: BTreeMap<String, Vec<Vec<String>>>,
}

/// One open span while replaying the trace.
struct OpenSpan {
    path: Vec<String>,
    child_ns: u64,
}

/// Kernels whose samples *enclose* other sampled kernels (`tape_backward`
/// times a whole backward pass, which itself runs spmm/gemm/segment
/// kernels). Their time is reported in the kernel table but never grafted
/// into the flamegraph — grafting would count the inner kernels twice.
const ENCLOSING_KERNELS: [&str; 1] = ["tape_backward"];

pub(crate) fn graftable(kernel: &str) -> bool {
    !ENCLOSING_KERNELS.contains(&kernel)
}

impl Profile {
    /// Nanoseconds covered by top-level spans.
    pub fn attributed_ns(&self) -> u64 {
        self.frames.iter().filter(|f| f.stack.len() == 1).map(|f| f.total_ns).sum()
    }

    /// Fraction of the run's wall time covered by top-level spans
    /// (0 when the trace recorded no wall time).
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.attributed_ns() as f64 / self.wall_ns as f64
    }

    /// Total nanoseconds of `kernel` across all phases.
    pub fn kernel_total_ns(&self, kernel: &str) -> u64 {
        self.kernels.iter().filter(|k| k.name == kernel).map(|k| k.total_ns).sum()
    }

    /// The stack path a `(phase, kernel)` row renders under in collapsed
    /// output: the unambiguous phase-declaring span path plus a
    /// `kernel:<name>` leaf, or a synthetic `phase:<tag>` root when the
    /// phase was declared on several paths. The differ uses the same
    /// convention so diffed kernel frames line up with single-run
    /// flamegraphs.
    pub fn kernel_stack(&self, k: &KernelStat) -> Vec<String> {
        let mut stack = match k.phase.as_deref() {
            Some(phase) => match self.graft_path(phase) {
                Some(path) => path.to_vec(),
                None => vec![format!("phase:{phase}")],
            },
            None => Vec::new(),
        };
        stack.push(format!("kernel:{}", k.name));
        stack
    }

    /// The single span path that declared `phase`, when unambiguous.
    pub(crate) fn graft_path(&self, phase: &str) -> Option<&[String]> {
        match self.phase_paths.get(phase).map(Vec::as_slice) {
            Some([path]) => Some(path),
            _ => None,
        }
    }

    /// Kernel nanoseconds grafted under each span path (see module docs).
    pub(crate) fn grafted_by_path(&self) -> BTreeMap<Vec<String>, u64> {
        let mut grafted: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for k in &self.kernels {
            let Some(phase) = k.phase.as_deref() else { continue };
            if !graftable(&k.name) {
                continue;
            }
            if let Some(path) = self.graft_path(phase) {
                *grafted.entry(path.to_vec()).or_insert(0) += k.total_ns;
            }
        }
        grafted
    }

    /// Renders the profile as collapsed stacks (`frame;frame;... count`,
    /// counts in nanoseconds of self time) — the input format of
    /// `inferno-flamegraph` / Brendan Gregg's `flamegraph.pl`. Phased
    /// kernel time appears as `kernel:<name>` leaf frames under the span
    /// path that declared the phase, and is subtracted from that path's
    /// self time so every nanosecond is counted once.
    pub fn to_collapsed(&self) -> String {
        let grafted = self.grafted_by_path();
        let mut out = String::new();
        for f in &self.frames {
            let taken = grafted.get(&f.stack).copied().unwrap_or(0);
            let self_ns = f.self_ns.saturating_sub(taken);
            if self_ns > 0 {
                out.push_str(&f.stack.join(";"));
                out.push(' ');
                out.push_str(&self_ns.to_string());
                out.push('\n');
            }
        }
        for k in &self.kernels {
            let Some(phase) = k.phase.as_deref() else { continue };
            if k.total_ns == 0 || !graftable(&k.name) {
                continue;
            }
            match self.graft_path(phase) {
                Some(path) => {
                    out.push_str(&path.join(";"));
                    out.push(';');
                }
                // Ambiguous phase: keep the frames under a synthetic root
                // rather than double-booking under several span paths.
                None => {
                    out.push_str("phase:");
                    out.push_str(phase);
                    out.push(';');
                }
            }
            out.push_str("kernel:");
            out.push_str(&k.name);
            out.push(' ');
            out.push_str(&k.total_ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// Parses collapsed-stack text back into `(stack, count)` rows — the
/// inverse of [`Profile::to_collapsed`], used by its round-trip test and
/// by anything that post-processes the emitted flamegraph files.
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let (stack, count) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {lineno}: no count after stack"))?;
        let count: u64 =
            count.parse().map_err(|_| format!("line {lineno}: malformed count `{count}`"))?;
        if stack.is_empty() {
            return Err(format!("line {lineno}: empty stack"));
        }
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {lineno}: empty frame in `{stack}`"));
        }
        rows.push((frames, count));
    }
    Ok(rows)
}

/// Replays one JSONL trace into a [`Profile`]. Fails on unparseable
/// lines, unbalanced spans, or a trace with no `run_end` (the profiler
/// needs the wall time to attribute against).
pub fn profile(text: &str) -> Result<Profile, String> {
    let mut out = Profile::default();
    let mut open: BTreeMap<u64, OpenSpan> = BTreeMap::new();
    // Path -> (count, total, self); insertion keyed by path for stable,
    // depth-grouped output.
    let mut agg: BTreeMap<Vec<String>, (u64, u64, u64)> = BTreeMap::new();
    let mut saw_end = false;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let rec = Value::parse(line).map_err(|e| format!("line {lineno}: bad JSON: {e}"))?;
        let kind = rec
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing kind"))?;
        match kind {
            "run_start" => {
                out.run = rec.get("run").and_then(Value::as_str).unwrap_or("?").to_string();
            }
            "run_end" => {
                saw_end = true;
                out.wall_ns = rec.get("elapsed_ns").and_then(Value::as_u64).unwrap_or(0);
            }
            "span_open" => {
                let id = rec
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_open without id"))?;
                let name = rec.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
                let parent = rec.get("parent").and_then(Value::as_u64);
                let mut path = match parent.and_then(|p| open.get(&p)) {
                    Some(parent) => parent.path.clone(),
                    None => Vec::new(),
                };
                path.push(name);
                if let Some(phase) = rec.get("phase").and_then(Value::as_str) {
                    let paths = out.phase_paths.entry(phase.to_string()).or_default();
                    if !paths.contains(&path) {
                        paths.push(path.clone());
                    }
                }
                open.insert(id, OpenSpan { path, child_ns: 0 });
            }
            "span_close" => {
                let id = rec
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_close without id"))?;
                let span = open.remove(&id).ok_or_else(|| {
                    format!("line {lineno}: span id {id} closed but never opened")
                })?;
                let elapsed = rec.get("elapsed_ns").and_then(Value::as_u64).unwrap_or(0);
                let entry = agg.entry(span.path.clone()).or_insert((0, 0, 0));
                entry.0 += 1;
                entry.1 += elapsed;
                entry.2 += elapsed.saturating_sub(span.child_ns);
                // Charge this span's time against the innermost *open*
                // ancestor: with parents still open, that is the path
                // prefix one frame up.
                if span.path.len() > 1 {
                    if let Some(parent) = open
                        .values_mut()
                        .find(|o| o.path.as_slice() == &span.path[..span.path.len() - 1])
                    {
                        parent.child_ns += elapsed;
                    }
                }
            }
            "metrics" => apply_metrics(&mut out, &rec),
            _ => {}
        }
    }

    if out.run.is_empty() {
        return Err("trace has no run_start record".to_string());
    }
    if !saw_end {
        return Err("trace has no run_end record (run aborted or trace truncated)".to_string());
    }
    if !open.is_empty() {
        return Err(format!("{} span(s) never closed", open.len()));
    }
    out.frames = agg
        .into_iter()
        .map(|(stack, (count, total_ns, self_ns))| FrameStat { stack, count, total_ns, self_ns })
        .collect();
    Ok(out)
}

/// Folds the latest `metrics` record into the profile (later snapshots
/// supersede earlier ones, mirroring `trace::summarize`).
fn apply_metrics(out: &mut Profile, rec: &Value) {
    out.counters = rec
        .get("counters")
        .and_then(Value::as_obj)
        .map(|kv| kv.iter().filter_map(|(k, v)| Some((k.clone(), v.as_u64()?))).collect())
        .unwrap_or_default();
    out.peak_resident_bytes =
        rec.get("gauges").and_then(|g| g.get("tape.peak_resident_bytes")).and_then(Value::as_f64);
    out.kernels.clear();
    // Histogram quantiles per full stream name, when the record has them.
    let quantiles_of = |stream: &str| -> Option<(f64, f64, f64)> {
        let h = rec.get("hists").and_then(|h| h.get(stream))?;
        Some((
            h.get("p50").and_then(Value::as_f64)?,
            h.get("p90").and_then(Value::as_f64)?,
            h.get("p99").and_then(Value::as_f64)?,
        ))
    };
    let Some(summaries) = rec.get("summaries").and_then(Value::as_obj) else { return };
    // First the phased rows, tracking how much of each kernel they cover.
    let mut phased: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (key, v) in summaries {
        let Some(rest) = key.strip_prefix("phase.") else { continue };
        let Some((phase, kernel)) =
            rest.split_once(".kernel.").and_then(|(p, k)| Some((p, k.strip_suffix(".ns")?)))
        else {
            continue;
        };
        let count = v.get("count").and_then(Value::as_u64).unwrap_or(0);
        let ns = v.get("sum").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let covered = phased.entry(kernel.to_string()).or_insert((0, 0));
        covered.0 += count;
        covered.1 += ns;
        out.kernels.push(KernelStat {
            name: kernel.to_string(),
            phase: Some(phase.to_string()),
            count,
            total_ns: ns,
            quantiles: quantiles_of(key),
        });
    }
    // Then the per-kernel totals; whatever the phases did not cover is
    // the `None`-phase remainder.
    for (key, v) in summaries {
        let Some(kernel) = key.strip_prefix("kernel.").and_then(|k| k.strip_suffix(".ns")) else {
            continue;
        };
        let count = v.get("count").and_then(Value::as_u64).unwrap_or(0);
        let ns = v.get("sum").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let (pc, pns) = phased.get(kernel).copied().unwrap_or((0, 0));
        let rest_count = count.saturating_sub(pc);
        let rest_ns = ns.saturating_sub(pns);
        if rest_count > 0 || rest_ns > 0 {
            out.kernels.push(KernelStat {
                name: kernel.to_string(),
                phase: None,
                count: rest_count,
                total_ns: rest_ns,
                quantiles: if pc == 0 { quantiles_of(key) } else { None },
            });
        }
    }
    out.kernels.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
}

/// Reads and profiles a trace file.
pub fn profile_file(path: impl AsRef<Path>) -> Result<Profile, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    profile(&text)
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile of run `{}`: {:.3}s wall, {:.1}% attributed to spans",
            self.run,
            self.wall_ns as f64 / 1e9,
            self.attributed_fraction() * 100.0
        )?;
        if !self.frames.is_empty() {
            writeln!(
                f,
                "  {:<44} {:>8} {:>12} {:>12} {:>7}",
                "span path", "calls", "total ms", "self ms", "% wall"
            )?;
            for fr in &self.frames {
                let label = format!(
                    "{}{}",
                    "  ".repeat(fr.stack.len().saturating_sub(1)),
                    fr.stack.last().map(String::as_str).unwrap_or("?")
                );
                let pct = if self.wall_ns == 0 {
                    0.0
                } else {
                    fr.total_ns as f64 / self.wall_ns as f64 * 100.0
                };
                writeln!(
                    f,
                    "  {:<44} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
                    label,
                    fr.count,
                    fr.total_ns as f64 / 1e6,
                    fr.self_ns as f64 / 1e6,
                    pct
                )?;
            }
        }
        if !self.kernels.is_empty() {
            writeln!(f, "  {:<28} {:<16} {:>10} {:>12}", "kernel", "phase", "calls", "total ms")?;
            for k in &self.kernels {
                write!(
                    f,
                    "  {:<28} {:<16} {:>10} {:>12.3}",
                    k.name,
                    k.phase.as_deref().unwrap_or("(unphased)"),
                    k.count,
                    k.total_ns as f64 / 1e6
                )?;
                if let Some((p50, p90, p99)) = k.quantiles {
                    write!(f, "  p50 {p50:>9.0} p90 {p90:>9.0} p99 {p99:>9.0} ns")?;
                }
                writeln!(f)?;
            }
        }
        if let Some(bytes) = self.peak_resident_bytes {
            writeln!(f, "  peak tape-resident: {:.2} MiB", bytes / (1024.0 * 1024.0))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{self, Recorder};
    use crate::sink::MemoryBuffer;

    fn recorded_trace(run: impl FnOnce()) -> String {
        let buf = MemoryBuffer::default();
        let guard = Recorder::new("prof").with_memory(buf.clone()).install();
        run();
        drop(guard);
        let text = buf.borrow().clone();
        text
    }

    fn spin(ms: u64) {
        let start = std::time::Instant::now();
        while start.elapsed().as_millis() < u128::from(ms) {
            std::hint::black_box(0u64);
        }
    }

    fn busy_trace() -> String {
        recorded_trace(|| {
            let _outer = recorder::span("search");
            for _ in 0..2 {
                let _epoch = recorder::span("search.epoch");
                {
                    let _arch = recorder::phase_span("search.arch_step", "arch_step");
                    recorder::kernel_sample("spmm", 400_000);
                    spin(2);
                }
                {
                    let _w = recorder::phase_span("search.weight_step", "weight_step");
                    recorder::kernel_sample("spmm", 900_000);
                    recorder::kernel_sample("gemm", 300_000);
                    spin(3);
                }
            }
            recorder::kernel_sample("spmm", 50_000);
            recorder::flush_metrics();
        })
    }

    fn frame<'a>(p: &'a Profile, path: &[&str]) -> &'a FrameStat {
        p.frames
            .iter()
            .find(|f| f.stack.iter().map(String::as_str).eq(path.iter().copied()))
            .unwrap_or_else(|| panic!("no frame {path:?}"))
    }

    #[test]
    fn span_tree_attribution_is_additive() {
        let p = profile(&busy_trace()).expect("valid trace");
        assert_eq!(p.run, "prof");
        let search = frame(&p, &["search"]);
        let epoch = frame(&p, &["search", "search.epoch"]);
        let arch = frame(&p, &["search", "search.epoch", "search.arch_step"]);
        let weight = frame(&p, &["search", "search.epoch", "search.weight_step"]);
        assert_eq!(search.count, 1);
        assert_eq!(epoch.count, 2);
        assert_eq!(arch.count, 2);
        assert_eq!(weight.count, 2);
        // Totals nest; self time excludes children.
        assert!(search.total_ns >= epoch.total_ns);
        assert!(epoch.total_ns >= arch.total_ns + weight.total_ns);
        assert_eq!(search.self_ns, search.total_ns - epoch.total_ns);
        assert_eq!(epoch.self_ns, epoch.total_ns - arch.total_ns - weight.total_ns);
        // Nearly all wall time is inside the spans here.
        assert!(p.attributed_fraction() > 0.9, "{}", p.attributed_fraction());
    }

    #[test]
    fn kernels_split_by_phase_with_remainder() {
        let p = profile(&busy_trace()).expect("valid trace");
        let get = |name: &str, phase: Option<&str>| {
            p.kernels
                .iter()
                .find(|k| k.name == name && k.phase.as_deref() == phase)
                .unwrap_or_else(|| panic!("no kernel {name}/{phase:?}"))
        };
        assert_eq!(get("spmm", Some("arch_step")).total_ns, 800_000);
        assert_eq!(get("spmm", Some("weight_step")).total_ns, 1_800_000);
        assert_eq!(get("gemm", Some("weight_step")).total_ns, 600_000);
        // The sample outside any phase is the remainder row.
        assert_eq!(get("spmm", None).total_ns, 50_000);
        assert_eq!(p.kernel_total_ns("spmm"), 2_650_000);
        // Phase rows carry quantiles from the per-phase histogram; the
        // remainder row does not (spmm also has phased samples).
        let (p50, p90, p99) = get("spmm", Some("weight_step")).quantiles.expect("quantiles");
        assert!((900_000.0..=900_000.0 * 1.13).contains(&p50), "p50={p50}");
        assert!(p99 >= p90 && p90 >= p50);
        assert!(get("spmm", None).quantiles.is_none());
        // The rendering shows them.
        let report = p.to_string();
        assert!(report.contains("p99"), "{report}");
    }

    #[test]
    fn collapsed_stacks_round_trip_and_stay_additive() {
        let p = profile(&busy_trace()).expect("valid trace");
        let text = p.to_collapsed();
        let rows = parse_collapsed(&text).expect("own output parses");
        assert!(!rows.is_empty());
        // Kernel frames are grafted under the phase-declaring span path.
        assert!(
            rows.iter().any(|(stack, _)| stack.last().map(String::as_str) == Some("kernel:spmm")
                && stack.contains(&"search.weight_step".to_string())),
            "{text}"
        );
        // Total collapsed nanoseconds equal the root spans' total time:
        // grafting subtracts kernel time from span self time, so nothing
        // is double-counted.
        let collapsed_total: u64 = rows.iter().map(|(_, n)| n).sum();
        assert_eq!(collapsed_total, p.attributed_ns(), "{text}");
        // And the profile renders.
        let report = p.to_string();
        assert!(report.contains("attributed"), "{report}");
    }

    #[test]
    fn parse_collapsed_rejects_malformed_lines() {
        assert!(parse_collapsed("no_count_here").is_err());
        assert!(parse_collapsed("a;b notanumber").is_err());
        assert!(parse_collapsed("a;;b 3").is_err());
        assert_eq!(parse_collapsed("").expect("empty ok").len(), 0);
    }

    #[test]
    fn truncated_or_empty_traces_are_rejected() {
        assert!(profile("").is_err());
        let text = busy_trace();
        let without_end: Vec<&str> = text.lines().filter(|l| !l.contains("run_end")).collect();
        assert!(profile(&without_end.join("\n")).is_err());
    }
}
