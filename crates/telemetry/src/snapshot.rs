//! Live snapshot export: serialize a run's merged metrics registry while
//! the run is still in flight, so a long search can be watched mid-run.
//!
//! A [`SnapshotExporter`] wraps a [`RecorderHandle`] and writes two
//! renderings side by side on every export:
//!
//! * `SNAPSHOT_<run>.json` — the full registry (counters, gauges,
//!   summaries, histograms with p50/p90/p99 and raw buckets) plus run
//!   metadata, parseable with [`crate::Value`];
//! * `SNAPSHOT_<run>.prom` — a Prometheus-style text rendering
//!   (`sane_<metric>` gauges, `_total` counters, summaries/histograms as
//!   `quantile`-labelled series with `_count`/`_sum`), scrapeable by any
//!   Prometheus-compatible collector pointed at the file.
//!
//! The exporter is **cooperative**: it owns no thread (the workspace
//! confines thread spawns to `sane_autodiff::parallel`). Call
//! [`SnapshotExporter::tick`] from a run or trial loop — it exports at
//! most once per configured interval — or [`SnapshotExporter::export`]
//! for an unconditional write. Exports see the merged registry plus the
//! calling thread's drained buffer; samples still buffered on *other*
//! attached workers join once those workers detach, so a snapshot is a
//! consistent lower bound, never a torn read.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::metrics::{Histogram, MetricSet, Summary};
use crate::recorder::RecorderHandle;
use crate::value::Value;

/// Periodic/on-demand exporter of one run's merged metrics registry.
pub struct SnapshotExporter {
    handle: RecorderHandle,
    dir: PathBuf,
    interval: Duration,
    last: Option<Instant>,
    exports: u64,
}

impl SnapshotExporter {
    /// An exporter writing `SNAPSHOT_<run>.{json,prom}` into `dir` at
    /// most once per second (see [`with_interval`](Self::with_interval)).
    pub fn new(handle: RecorderHandle, dir: impl AsRef<Path>) -> Self {
        Self {
            handle,
            dir: dir.as_ref().to_path_buf(),
            interval: Duration::from_secs(1),
            last: None,
            exports: 0,
        }
    }

    /// Sets the minimum time between [`tick`](Self::tick) exports.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Number of completed exports.
    pub fn exports(&self) -> u64 {
        self.exports
    }

    /// Path of the JSON snapshot this exporter writes.
    pub fn json_path(&self) -> PathBuf {
        self.dir.join(format!("SNAPSHOT_{}.json", self.handle.run()))
    }

    /// Path of the Prometheus-style snapshot this exporter writes.
    pub fn prom_path(&self) -> PathBuf {
        self.dir.join(format!("SNAPSHOT_{}.prom", self.handle.run()))
    }

    /// Exports if at least the configured interval passed since the last
    /// export (the first tick always exports). Returns whether a snapshot
    /// was written. Errors are swallowed like sink write errors —
    /// telemetry must never take down the run it observes — but a failed
    /// write still counts as an attempt so a broken disk is not retried
    /// every tick.
    pub fn tick(&mut self) -> bool {
        let due = match self.last {
            None => true,
            Some(last) => last.elapsed() >= self.interval,
        };
        if due {
            let _ = self.export();
        }
        due
    }

    /// Unconditionally writes both snapshot files, returning their paths.
    pub fn export(&mut self) -> std::io::Result<(PathBuf, PathBuf)> {
        self.last = Some(Instant::now());
        let metrics = self.handle.merged_metrics();
        let t_ns = self.handle.elapsed_ns();
        let attached = self.handle.attached();
        std::fs::create_dir_all(&self.dir)?;
        let json_path = self.json_path();
        let prom_path = self.prom_path();
        std::fs::write(&json_path, render_json(self.handle.run(), t_ns, attached, &metrics))?;
        std::fs::write(&prom_path, render_prom(self.handle.run(), t_ns, attached, &metrics))?;
        self.exports += 1;
        Ok((json_path, prom_path))
    }
}

/// The JSON snapshot document (schema `sane.snapshot.v1`).
fn render_json(run: &str, t_ns: u64, attached: usize, metrics: &MetricSet) -> String {
    let mut obj = vec![
        ("schema".to_string(), Value::Str("sane.snapshot.v1".to_string())),
        ("run".to_string(), Value::Str(run.to_string())),
        ("t_ns".to_string(), Value::UInt(t_ns)),
        ("attached_workers".to_string(), Value::UInt(attached as u64)),
    ];
    obj.extend(metrics.to_fields());
    Value::Obj(obj).to_json()
}

/// Maps a metric name onto the Prometheus name charset: `[a-zA-Z0-9_]`,
/// prefixed `sane_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("sane_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_summary(out: &mut String, name: &str, s: &Summary) {
    let base = prom_name(name);
    let _ = writeln!(out, "# TYPE {base} summary");
    let _ = writeln!(out, "{base}_count {}", s.count);
    let _ = writeln!(out, "{base}_sum {}", s.sum);
    let _ = writeln!(out, "{base}_min {}", s.min);
    let _ = writeln!(out, "{base}_max {}", s.max);
    if s.dropped > 0 {
        let _ = writeln!(out, "{base}_dropped {}", s.dropped);
    }
}

fn prom_hist(out: &mut String, name: &str, h: &Histogram) {
    let base = prom_name(name);
    let _ = writeln!(out, "# TYPE {base} summary");
    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
        let _ = writeln!(out, "{base}{{quantile=\"{label}\"}} {}", h.quantile(q));
    }
    let _ = writeln!(out, "{base}_count {}", h.count());
    let _ = writeln!(out, "{base}_sum {}", h.sum());
    let _ = writeln!(out, "{base}_max {}", h.max());
    if h.dropped() > 0 {
        let _ = writeln!(out, "{base}_dropped {}", h.dropped());
    }
}

/// The Prometheus-style text rendering. Histogram streams supersede
/// their twin summaries (same key via `record_latency`) so each series
/// renders once; BTreeMap iteration keeps the output deterministic.
fn render_prom(run: &str, t_ns: u64, attached: usize, metrics: &MetricSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# sane telemetry snapshot, run `{run}`");
    let _ = writeln!(out, "# TYPE sane_run_elapsed_ns gauge");
    let _ = writeln!(out, "sane_run_elapsed_ns {t_ns}");
    let _ = writeln!(out, "# TYPE sane_attached_workers gauge");
    let _ = writeln!(out, "sane_attached_workers {attached}");
    for (name, v) in metrics.counters() {
        let base = prom_name(name);
        let _ = writeln!(out, "# TYPE {base}_total counter");
        let _ = writeln!(out, "{base}_total {v}");
    }
    for (name, v) in metrics.gauges() {
        let base = prom_name(name);
        let _ = writeln!(out, "# TYPE {base} gauge");
        let _ = writeln!(out, "{base} {v}");
    }
    for (name, s) in metrics.summaries() {
        if metrics.hists().contains_key(name) {
            continue;
        }
        prom_summary(&mut out, name, s);
    }
    for (name, h) in metrics.hists() {
        prom_hist(&mut out, name, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{self, Recorder};

    #[test]
    fn snapshot_serialises_the_live_registry() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("sane_snap_{}", std::process::id()));
        let guard = Recorder::new("snaptest").install();
        recorder::counter_add("trials.done", 3);
        recorder::gauge_set("queue.depth", 2.0);
        recorder::record_latency("kernel.spmm.ns", 1_000.0);
        recorder::record_latency("kernel.spmm.ns", 9_000.0);
        let handle = recorder::handle().expect("active recorder");
        let mut exporter =
            SnapshotExporter::new(handle, &dir).with_interval(Duration::from_secs(3600));
        let (json_path, prom_path) = exporter.export().expect("export");

        let json = std::fs::read_to_string(&json_path).expect("json snapshot");
        let doc = Value::parse(&json).expect("snapshot parses");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("sane.snapshot.v1"));
        assert_eq!(doc.get("run").and_then(Value::as_str), Some("snaptest"));
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("trials.done")).and_then(Value::as_u64),
            Some(3)
        );
        let hist = doc.get("hists").and_then(|h| h.get("kernel.spmm.ns")).expect("spmm hist");
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(2));
        assert!(hist.get("p50").and_then(Value::as_f64).is_some());

        let prom = std::fs::read_to_string(&prom_path).expect("prom snapshot");
        assert!(prom.contains("sane_trials_done_total 3"), "{prom}");
        assert!(prom.contains("sane_queue_depth 2"), "{prom}");
        assert!(prom.contains("sane_kernel_spmm_ns{quantile=\"0.99\"}"), "{prom}");
        assert!(prom.contains("sane_kernel_spmm_ns_count 2"), "{prom}");

        // The interval gate: the first tick after an export waits.
        assert!(!exporter.tick(), "tick inside the interval must not re-export");
        assert_eq!(exporter.exports(), 1);

        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_tick_exports_immediately() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("sane_snap_tick_{}", std::process::id()));
        let guard = Recorder::new("ticktest").install();
        recorder::counter_add("n", 1);
        let handle = recorder::handle().expect("active recorder");
        let mut exporter =
            SnapshotExporter::new(handle, &dir).with_interval(Duration::from_secs(3600));
        assert!(exporter.tick(), "first tick exports");
        assert!(exporter.json_path().exists());
        assert!(exporter.prom_path().exists());
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
