//! Output sinks: where rendered trace records go.
//!
//! Every record is rendered once by the recorder — a compact JSON line for
//! machine consumers and a one-line human form — and each sink picks the
//! rendering it wants, filtered by its own level.
//!
//! Sinks are `Send`: since the cross-thread recorder refactor the sink
//! set lives behind the shared run state's write lock, and attached
//! worker threads write through it.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::level::Level;

/// One rendered trace record, shared by all sinks.
pub(crate) struct Rendered<'a> {
    pub level: Level,
    /// Compact JSON (no trailing newline).
    pub json: &'a str,
    /// One-line human rendering.
    pub pretty: &'a str,
}

pub(crate) trait Sink: Send {
    /// Most detailed level this sink wants.
    fn level(&self) -> Level;

    fn write(&mut self, rec: &Rendered<'_>);

    fn flush(&mut self);
}

/// Appends JSON lines to a file.
pub(crate) struct JsonlSink {
    out: BufWriter<File>,
    level: Level,
}

impl JsonlSink {
    pub(crate) fn create(path: &Path, level: Level) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(Self { out: BufWriter::new(File::create(path)?), level })
    }
}

impl Sink for JsonlSink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        // Errors are swallowed by design: telemetry must never take down
        // the run it is observing. A truncated trace fails `trace-report`.
        let _ = writeln!(self.out, "{}", rec.json);
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Human console output on stderr.
pub(crate) struct ConsoleSink {
    level: Level,
}

impl ConsoleSink {
    pub(crate) fn new(level: Level) -> Self {
        Self { level }
    }
}

impl Sink for ConsoleSink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        eprintln!("{}", rec.pretty);
    }

    fn flush(&mut self) {}
}

/// Shared handle to an in-memory JSONL buffer (tests). Clones share one
/// buffer; the lock is poison-tolerant so a panicking test thread cannot
/// hide the trace recorded up to the panic.
#[derive(Clone, Default)]
pub struct MemoryBuffer(Arc<Mutex<String>>);

/// Read/write access to the buffered trace text.
pub struct MemoryBufferGuard<'a>(MutexGuard<'a, String>);

impl Deref for MemoryBufferGuard<'_> {
    type Target = String;

    fn deref(&self) -> &String {
        &self.0
    }
}

impl DerefMut for MemoryBufferGuard<'_> {
    fn deref_mut(&mut self) -> &mut String {
        &mut self.0
    }
}

impl MemoryBuffer {
    /// Locks the buffer; named `borrow` for continuity with the
    /// pre-cross-thread `Rc<RefCell<String>>` alias this type replaced.
    pub fn borrow(&self) -> MemoryBufferGuard<'_> {
        MemoryBufferGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Collects JSON lines into a [`MemoryBuffer`] so tests can parse the
/// trace a run produced without touching the filesystem.
pub(crate) struct MemorySink {
    buf: MemoryBuffer,
    level: Level,
}

impl MemorySink {
    pub(crate) fn new(buf: MemoryBuffer, level: Level) -> Self {
        Self { buf, level }
    }
}

impl Sink for MemorySink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        let mut buf = self.buf.borrow();
        buf.push_str(rec.json);
        buf.push('\n');
    }

    fn flush(&mut self) {}
}
