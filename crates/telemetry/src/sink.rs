//! Output sinks: where rendered trace records go.
//!
//! Every record is rendered once by the recorder — a compact JSON line for
//! machine consumers and a one-line human form — and each sink picks the
//! rendering it wants, filtered by its own level.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::level::Level;

/// One rendered trace record, shared by all sinks.
pub(crate) struct Rendered<'a> {
    pub level: Level,
    /// Compact JSON (no trailing newline).
    pub json: &'a str,
    /// One-line human rendering.
    pub pretty: &'a str,
}

pub(crate) trait Sink {
    /// Most detailed level this sink wants.
    fn level(&self) -> Level;

    fn write(&mut self, rec: &Rendered<'_>);

    fn flush(&mut self);
}

/// Appends JSON lines to a file.
pub(crate) struct JsonlSink {
    out: BufWriter<File>,
    level: Level,
}

impl JsonlSink {
    pub(crate) fn create(path: &Path, level: Level) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(Self { out: BufWriter::new(File::create(path)?), level })
    }
}

impl Sink for JsonlSink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        // Errors are swallowed by design: telemetry must never take down
        // the run it is observing. A truncated trace fails `trace-report`.
        let _ = writeln!(self.out, "{}", rec.json);
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Human console output on stderr.
pub(crate) struct ConsoleSink {
    level: Level,
}

impl ConsoleSink {
    pub(crate) fn new(level: Level) -> Self {
        Self { level }
    }
}

impl Sink for ConsoleSink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        eprintln!("{}", rec.pretty);
    }

    fn flush(&mut self) {}
}

/// Shared handle to an in-memory JSONL buffer (tests).
pub type MemoryBuffer = Rc<RefCell<String>>;

/// Collects JSON lines into a [`MemoryBuffer`] so tests can parse the
/// trace a run produced without touching the filesystem.
pub(crate) struct MemorySink {
    buf: MemoryBuffer,
    level: Level,
}

impl MemorySink {
    pub(crate) fn new(buf: MemoryBuffer, level: Level) -> Self {
        Self { buf, level }
    }
}

impl Sink for MemorySink {
    fn level(&self) -> Level {
        self.level
    }

    fn write(&mut self, rec: &Rendered<'_>) {
        let mut buf = self.buf.borrow_mut();
        buf.push_str(rec.json);
        buf.push('\n');
    }

    fn flush(&mut self) {}
}
