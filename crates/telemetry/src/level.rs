//! Severity levels and the `SANE_LOG` environment knob.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Severity of a telemetry event, ordered from most to least severe.
///
/// A sink configured at level `L` accepts every event whose level is `<= L`
/// (so `Info` accepts errors, warnings and infos but drops debug/trace).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something went wrong and the run's output is suspect.
    Error,
    /// Something surprising that does not invalidate the run.
    Warn,
    /// Per-epoch search/train progress: the level run traces are read at.
    Info,
    /// Per-step detail: span open/close records, per-eval events.
    Debug,
    /// Everything, including high-rate diagnostics.
    Trace,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] =
        [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace];

    /// Lower-case name, as written in trace files and `SANE_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown level `{other}` (error|warn|info|debug|trace|off)")),
        }
    }
}

/// The console level requested via `SANE_LOG`, read once per process.
///
/// * unset → `Some(Level::Warn)`: warnings and errors always reach stderr.
/// * `SANE_LOG=off` (or `none`/`0`) → `None`: fully silent.
/// * `SANE_LOG=<level>` → that level; unparseable values fall back to the
///   default so a typo never silences error reporting.
pub fn env_console_level() -> Option<Level> {
    static FROM_ENV: OnceLock<Option<Level>> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("SANE_LOG") {
        Err(_) => Some(Level::Warn),
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" | "" => None,
            other => Some(other.parse().unwrap_or(Level::Warn)),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_round_trips() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>(), Ok(l));
        }
        assert_eq!("WARNING".parse::<Level>(), Ok(Level::Warn));
        assert!("verbose".parse::<Level>().is_err());
    }
}
