//! Search dashboards: re-derive the paper's search-dynamics views (SANE
//! ICDE 2021, Figs. 3–4) from a recorded run trace.
//!
//! [`dashboard`] first runs the strict [`crate::trace::summarize`]
//! validator — a malformed trace is an error, never a half-empty chart —
//! then replays the `search.alpha` / `search.epoch` events into:
//!
//! * **per-op softmax trajectories**: for every mixed op (`group`,
//!   `index`), the α softmax row per epoch,
//! * **entropy curves**: mean softmax entropy per α group per epoch
//!   (Fig. 3's collapse-of-uncertainty view),
//! * the **genotype timeline**: every derived-architecture change with
//!   the epoch it appeared,
//! * the **mixed-val curve**: the supernet validation metric per epoch
//!   (and the weight-step training loss when recorded).
//!
//! The dashboard serialises to JSON ([`Dashboard::to_json`]) for plotting
//! and renders aligned text tables ([`Dashboard::to_text`]) for terminals
//! and CI logs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::trace::{self, TraceSummary};
use crate::value::Value;

/// The α softmax trajectory of one mixed op across the search.
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaTrajectory {
    /// α group (`node`, `skip`, `layer`).
    pub group: String,
    /// Mixed-op index within the group.
    pub index: usize,
    /// Epochs with a recorded row, in trace order.
    pub epochs: Vec<u64>,
    /// One softmax row per entry of `epochs`.
    pub probs: Vec<Vec<f64>>,
    /// Recorded softmax entropy per entry of `epochs`.
    pub entropy: Vec<f64>,
}

impl AlphaTrajectory {
    /// The final softmax row, if any epoch recorded one.
    pub fn final_probs(&self) -> Option<&[f64]> {
        self.probs.last().map(Vec::as_slice)
    }
}

/// Everything needed to redraw the search dashboards from one trace.
#[derive(Clone, Debug, Default)]
pub struct Dashboard {
    pub run: String,
    /// `(epoch, mixed-supernet validation metric)` per epoch.
    pub val_curve: Vec<(u64, f64)>,
    /// `(epoch, weight-step training loss)` where recorded (explore
    /// epochs skip the weight step, so this can be sparser).
    pub loss_curve: Vec<(u64, f64)>,
    /// One trajectory per mixed op, ordered by (group, index).
    pub trajectories: Vec<AlphaTrajectory>,
    /// Mean softmax entropy per α group per epoch.
    pub entropy_curves: BTreeMap<String, Vec<(u64, f64)>>,
    /// Distinct genotypes in first-seen order with their epoch.
    pub genotypes: Vec<(u64, String)>,
    /// The genotype the search settled on.
    pub final_genotype: Option<String>,
    /// Mean entropy per group at the last epoch that reported the group —
    /// must agree with [`TraceSummary::final_entropy`] (shared fixture
    /// test holds this line).
    pub final_entropy: BTreeMap<String, f64>,
}

/// Builds the dashboard from raw JSONL trace text. Validation is
/// delegated to [`trace::summarize`], so anything that passes here is a
/// trace the rest of the tooling accepts too.
pub fn dashboard(text: &str) -> Result<Dashboard, String> {
    let summary = trace::summarize(text)?;
    Ok(from_validated(text, &summary))
}

/// Reads and dashboards a trace file.
pub fn dashboard_file(path: impl AsRef<Path>) -> Result<Dashboard, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    dashboard(&text)
}

/// Second pass over an already-validated trace: `summarize` proved every
/// line parses and every α row is a softmax distribution, so this pass
/// can use lenient field access.
fn from_validated(text: &str, summary: &TraceSummary) -> Dashboard {
    let mut out = Dashboard {
        run: summary.run.clone(),
        val_curve: summary.val_curve(),
        genotypes: summary.genotypes.clone(),
        final_genotype: summary.final_genotype().map(str::to_string),
        ..Dashboard::default()
    };
    let mut trajectories: BTreeMap<(String, usize), AlphaTrajectory> = BTreeMap::new();
    // (group, epoch) -> (entropy sum, rows) for the per-epoch mean.
    let mut entropy_acc: BTreeMap<(String, u64), (f64, u64)> = BTreeMap::new();

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(rec) = Value::parse(line) else { continue };
        if rec.get("kind").and_then(Value::as_str) != Some("event") {
            continue;
        }
        let fields = |k: &str| rec.get("fields").and_then(|f| f.get(k));
        match rec.get("name").and_then(Value::as_str) {
            Some("search.alpha") => {
                let epoch = fields("epoch").and_then(Value::as_u64).unwrap_or(0);
                let group = fields("group").and_then(Value::as_str).unwrap_or("?").to_string();
                let index = fields("index").and_then(Value::as_u64).unwrap_or(0) as usize;
                let probs: Vec<f64> = fields("probs")
                    .and_then(Value::as_arr)
                    .map(|a| a.iter().filter_map(Value::as_f64).collect())
                    .unwrap_or_default();
                let entropy = fields("entropy").and_then(Value::as_f64).unwrap_or(0.0);
                let t =
                    trajectories.entry((group.clone(), index)).or_insert_with(|| AlphaTrajectory {
                        group: group.clone(),
                        index,
                        epochs: Vec::new(),
                        probs: Vec::new(),
                        entropy: Vec::new(),
                    });
                t.epochs.push(epoch);
                t.probs.push(probs);
                t.entropy.push(entropy);
                let acc = entropy_acc.entry((group, epoch)).or_insert((0.0, 0));
                acc.0 += entropy;
                acc.1 += 1;
            }
            Some("search.epoch") => {
                let epoch = fields("epoch").and_then(Value::as_u64).unwrap_or(0);
                if let Some(loss) = fields("loss_w").and_then(Value::as_f64) {
                    out.loss_curve.push((epoch, loss));
                }
            }
            _ => {}
        }
    }

    for ((group, epoch), (sum, n)) in entropy_acc {
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        out.entropy_curves.entry(group).or_default().push((epoch, mean));
    }
    for (group, curve) in &out.entropy_curves {
        if let Some(&(_, last)) = curve.last() {
            out.final_entropy.insert(group.clone(), last);
        }
    }
    out.trajectories = trajectories.into_values().collect();
    out
}

fn curve_to_json(curve: &[(u64, f64)]) -> Value {
    Value::Arr(
        curve.iter().map(|&(e, v)| Value::Arr(vec![Value::UInt(e), Value::Num(v)])).collect(),
    )
}

impl Dashboard {
    /// Serialises the full dashboard (trajectories included) to a JSON
    /// value; `.to_json().to_json()` gives the file text.
    pub fn to_json(&self) -> Value {
        let trajectories = self
            .trajectories
            .iter()
            .map(|t| {
                Value::Obj(vec![
                    ("group".into(), Value::Str(t.group.clone())),
                    ("index".into(), Value::UInt(t.index as u64)),
                    (
                        "epochs".into(),
                        Value::Arr(t.epochs.iter().map(|&e| Value::UInt(e)).collect()),
                    ),
                    (
                        "probs".into(),
                        Value::Arr(
                            t.probs
                                .iter()
                                .map(|row| Value::Arr(row.iter().map(|&p| Value::Num(p)).collect()))
                                .collect(),
                        ),
                    ),
                    (
                        "entropy".into(),
                        Value::Arr(t.entropy.iter().map(|&e| Value::Num(e)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("sane.dashboard.v1".into())),
            ("run".into(), Value::Str(self.run.clone())),
            ("val_curve".into(), curve_to_json(&self.val_curve)),
            ("loss_curve".into(), curve_to_json(&self.loss_curve)),
            (
                "entropy_curves".into(),
                Value::Obj(
                    self.entropy_curves
                        .iter()
                        .map(|(g, c)| (g.clone(), curve_to_json(c)))
                        .collect(),
                ),
            ),
            (
                "genotypes".into(),
                Value::Arr(
                    self.genotypes
                        .iter()
                        .map(|(e, g)| Value::Arr(vec![Value::UInt(*e), Value::Str(g.clone())]))
                        .collect(),
                ),
            ),
            (
                "final_genotype".into(),
                match &self.final_genotype {
                    Some(g) => Value::Str(g.clone()),
                    None => Value::Null,
                },
            ),
            (
                "final_entropy".into(),
                Value::Obj(
                    self.final_entropy.iter().map(|(g, &e)| (g.clone(), Value::Num(e))).collect(),
                ),
            ),
            ("trajectories".into(), Value::Arr(trajectories)),
        ])
    }

    /// Renders the dashboard as aligned text tables for terminals / CI.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "search dashboard for run `{}`", self.run);

        if !self.val_curve.is_empty() {
            let _ = writeln!(out, "\nmixed-supernet curve:");
            let _ = writeln!(out, "  {:>6} {:>10} {:>10}", "epoch", "val", "loss_w");
            let loss: BTreeMap<u64, f64> = self.loss_curve.iter().copied().collect();
            for &(e, v) in &self.val_curve {
                match loss.get(&e) {
                    Some(l) => {
                        let _ = writeln!(out, "  {e:>6} {v:>10.4} {l:>10.4}");
                    }
                    None => {
                        let _ = writeln!(out, "  {e:>6} {v:>10.4} {:>10}", "-");
                    }
                }
            }
        }

        if !self.entropy_curves.is_empty() {
            let groups: Vec<&String> = self.entropy_curves.keys().collect();
            let _ = writeln!(out, "\nalpha entropy (mean per epoch):");
            let mut header = format!("  {:>6}", "epoch");
            for g in &groups {
                let _ = write!(header, " {g:>10}");
            }
            let _ = writeln!(out, "{header}");
            let epochs: std::collections::BTreeSet<u64> =
                self.entropy_curves.values().flat_map(|c| c.iter().map(|&(e, _)| e)).collect();
            let by_group: BTreeMap<&String, BTreeMap<u64, f64>> =
                self.entropy_curves.iter().map(|(g, c)| (g, c.iter().copied().collect())).collect();
            for e in epochs {
                let mut row = format!("  {e:>6}");
                for g in &groups {
                    match by_group.get(*g).and_then(|c| c.get(&e)) {
                        Some(v) => {
                            let _ = write!(row, " {v:>10.4}");
                        }
                        None => {
                            let _ = write!(row, " {:>10}", "-");
                        }
                    }
                }
                let _ = writeln!(out, "{row}");
            }
        }

        if !self.genotypes.is_empty() {
            let _ = writeln!(out, "\ngenotype timeline:");
            for (e, g) in &self.genotypes {
                let _ = writeln!(out, "  epoch {e:>5}  {g}");
            }
        }

        if !self.trajectories.is_empty() {
            let _ = writeln!(out, "\nfinal softmax per mixed op:");
            for t in &self.trajectories {
                if let Some(probs) = t.final_probs() {
                    let cells: Vec<String> = probs.iter().map(|p| format!("{p:.3}")).collect();
                    let _ = writeln!(
                        out,
                        "  {:<10} [{}]",
                        format!("{}[{}]", t.group, t.index),
                        cells.join(", ")
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;
    use crate::recorder::{self, Recorder};
    use crate::sink::MemoryBuffer;

    /// The shared fixture: a small synthetic search trace with drifting α
    /// rows, recorded through the real recorder so it is exactly what
    /// `trace::summarize` validates.
    fn fixture_trace() -> String {
        let buf = MemoryBuffer::default();
        let guard = Recorder::new("fixture").with_memory(buf.clone()).install();
        {
            let _search = recorder::span("search");
            for epoch in 0..4i64 {
                let _e = recorder::span("search.epoch");
                // Two node ops drifting apart plus one skip op.
                let drift = 0.05 * epoch as f32;
                for (index, base) in [(0usize, 0.25f32), (1, 0.25)] {
                    let probs =
                        [base + drift, base - drift / 3.0, base - drift / 3.0, base - drift / 3.0];
                    emit_alpha(epoch, "node", index, &probs);
                }
                emit_alpha(epoch, "skip", 0, &[0.5, 0.5]);
                recorder::event(
                    Level::Info,
                    "search.epoch",
                    &[
                        ("epoch", Value::Int(epoch)),
                        ("val_metric", Value::Num(0.5 + 0.05 * epoch as f64)),
                        ("loss_w", Value::Num(2.0 - 0.1 * epoch as f64)),
                        ("genotype", Value::from(if epoch < 2 { "gcn" } else { "gat" })),
                    ],
                );
            }
        }
        drop(guard);
        let text = buf.borrow().clone();
        text
    }

    fn emit_alpha(epoch: i64, group: &'static str, index: usize, probs: &[f32]) {
        let entropy: f64 = probs
            .iter()
            .map(|&p| {
                let p = f64::from(p);
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            })
            .sum();
        recorder::event(
            Level::Info,
            "search.alpha",
            &[
                ("epoch", Value::Int(epoch)),
                ("group", Value::from(group)),
                ("index", Value::UInt(index as u64)),
                ("probs", Value::from(probs)),
                ("entropy", Value::Num(entropy)),
            ],
        );
    }

    #[test]
    fn dashboard_matches_summarize_on_the_shared_fixture() {
        let text = fixture_trace();
        let summary = trace::summarize(&text).expect("fixture validates");
        let dash = dashboard(&text).expect("fixture dashboards");

        // The dashboard recomputes entropy and curves independently from
        // the α rows; both readers must agree exactly.
        assert_eq!(dash.final_entropy, summary.final_entropy);
        assert_eq!(dash.val_curve, summary.val_curve());
        assert_eq!(dash.genotypes, summary.genotypes);
        assert_eq!(dash.final_genotype.as_deref(), summary.final_genotype());

        // Every α row the validator counted is in exactly one trajectory.
        let rows: usize = dash.trajectories.iter().map(|t| t.epochs.len()).sum();
        assert_eq!(rows, summary.alpha_rows);
    }

    #[test]
    fn trajectories_track_probs_and_entropy_per_epoch() {
        let dash = dashboard(&fixture_trace()).expect("dashboard");
        assert_eq!(dash.trajectories.len(), 3, "node[0], node[1], skip[0]");
        let node0 =
            dash.trajectories.iter().find(|t| t.group == "node" && t.index == 0).expect("node[0]");
        assert_eq!(node0.epochs, vec![0, 1, 2, 3]);
        assert_eq!(node0.probs.len(), 4);
        // The first op's probability drifts upward in the fixture.
        let first = node0.probs.first().and_then(|r| r.first()).copied().unwrap_or(0.0);
        let last = node0.final_probs().and_then(|r| r.first()).copied().unwrap_or(0.0);
        assert!(last > first, "expected drift: {first} -> {last}");
        // Recorded entropy matches recomputation from the probs.
        for (row, &e) in node0.probs.iter().zip(&node0.entropy) {
            let recomputed: f64 =
                row.iter().map(|&p| if p > 0.0 { -p * p.ln() } else { 0.0 }).sum();
            assert!((recomputed - e).abs() < 1e-6, "{recomputed} vs {e}");
        }
        // Entropy falls as α sharpens.
        let curve = &dash.entropy_curves["node"];
        assert!(curve.first().map(|f| f.1) > curve.last().map(|l| l.1), "{curve:?}");
    }

    #[test]
    fn json_and_text_renderings_cover_the_dashboard() {
        let dash = dashboard(&fixture_trace()).expect("dashboard");
        let json = dash.to_json().to_json();
        let back = Value::parse(&json).expect("dashboard JSON parses");
        assert_eq!(back.get("run").and_then(Value::as_str), Some("fixture"));
        assert_eq!(back.get("trajectories").and_then(Value::as_arr).map(<[Value]>::len), Some(3));
        assert_eq!(back.get("final_genotype").and_then(Value::as_str), Some("gat"));
        let text = dash.to_text();
        assert!(text.contains("mixed-supernet curve"), "{text}");
        assert!(text.contains("genotype timeline"), "{text}");
        assert!(text.contains("node[0]"), "{text}");
    }

    #[test]
    fn malformed_traces_are_rejected_not_half_rendered() {
        assert!(dashboard("").is_err());
        assert!(dashboard("not json").is_err());
    }
}
