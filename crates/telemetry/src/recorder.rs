//! The run recorder: hierarchical spans, metrics and trace records.
//!
//! A [`Recorder`] is built, given sinks, then **installed** on the current
//! thread. Every telemetry call from that thread — spans, events, counters,
//! the kernel-timing hooks inside `sane_autodiff` — reports to the
//! installed recorder until its [`RecorderGuard`] drops, which flushes the
//! metrics registry, closes the trace with a `run_end` record and restores
//! whatever recorder (usually none) was active before.
//!
//! ## Cross-thread model
//!
//! The recorder is installed **per thread**, but one run's state is
//! shared: the owning thread holds the [`RecorderGuard`], and any other
//! thread may join the same run for a scope by attaching a
//! [`RecorderHandle`] (obtained with [`handle`] on the owning thread,
//! `Send + Sync`). Attached workers get their own span/phase stacks and a
//! private metrics buffer — the hot [`kernel_sample`] path stays one
//! thread-local access with no lock — while trace records from every
//! thread funnel through one serialising writer lock. Timestamps are
//! taken *inside* that lock, so `t_ns` is non-decreasing in file order
//! and the strict validator's monotonicity check holds for multi-thread
//! traces. Worker records carry a `thread` field; worker root spans
//! parent to the span that was innermost on the owning thread when the
//! handle was captured, so per-trial span trees land in the owning run's
//! trace with correct parent links. A worker's buffered metrics merge
//! into the run's registry when its [`WorkerGuard`] detaches.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::level::{env_console_level, Level};
use crate::metrics::MetricSet;
use crate::sink::{ConsoleSink, JsonlSink, MemoryBuffer, MemorySink, Rendered, Sink};
use crate::value::Value;

/// State shared by every thread reporting into one run.
struct Shared {
    run: String,
    start: Instant,
    /// Most detailed level any sink accepts; records above it skip
    /// rendering entirely.
    max_level: Level,
    kernel_timing: bool,
    /// Span ids are allocated here so they are unique across threads.
    next_span_id: AtomicU64,
    /// The sink set. The lock serialises record writes across threads;
    /// timestamps are taken while holding it (see module docs).
    out: Mutex<Vec<Box<dyn Sink>>>,
    /// Metrics merged from detached workers and drained thread buffers.
    merged: Mutex<MetricSet>,
    /// Currently attached worker scopes (leak detection at run end).
    attached: AtomicUsize,
    /// One `telemetry.bad_sample` warning per run.
    warned_bad_sample: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread view of a run: the owning thread's, or one attached
/// worker's. Span and phase stacks are thread-private; `local` buffers
/// metrics until a flush or detach drains them into `Shared::merged`.
struct Inner {
    shared: Arc<Shared>,
    /// Worker label stamped on this thread's records (`None` on the
    /// owning thread).
    thread: Option<String>,
    /// Parent for this thread's root spans: the owning thread's innermost
    /// span at [`handle`] time (`None` on the owning thread).
    parent: Option<u64>,
    span_stack: Vec<u64>,
    /// Innermost-last stack of phase tags from [`phase_span`] guards;
    /// kernel samples are attributed to the top entry.
    phase_stack: Vec<&'static str>,
    local: MetricSet,
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<Inner>>>> = const { RefCell::new(None) };
}

/// Builder for a run recorder. See the module docs for the lifecycle.
pub struct Recorder {
    run: String,
    sinks: Vec<Box<dyn Sink>>,
    max_level: Level,
    kernel_timing: bool,
}

impl Recorder {
    /// A recorder for a run named `run` with no sinks yet.
    pub fn new(run: &str) -> Self {
        Self {
            run: run.to_string(),
            sinks: Vec::new(),
            max_level: Level::Error,
            kernel_timing: true,
        }
    }

    fn add_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.max_level = self.max_level.max(sink.level());
        self.sinks.push(sink);
        self
    }

    /// Streams every record as a JSON line to `path` (created/truncated;
    /// parent directories are created as needed).
    pub fn with_jsonl(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(self.add_sink(Box::new(JsonlSink::create(path.as_ref(), Level::Trace)?)))
    }

    /// Adds a human console sink on stderr at `level`.
    pub fn with_console(self, level: Level) -> Self {
        self.add_sink(Box::new(ConsoleSink::new(level)))
    }

    /// Adds a console sink at the level `SANE_LOG` requests (default:
    /// warnings and errors; `SANE_LOG=off` adds no sink).
    pub fn with_console_env(self) -> Self {
        match env_console_level() {
            Some(level) => self.with_console(level),
            None => self,
        }
    }

    /// Collects JSON lines into `buf` (tests).
    pub fn with_memory(self, buf: MemoryBuffer) -> Self {
        self.add_sink(Box::new(MemorySink::new(buf, Level::Trace)))
    }

    /// Whether the `sane_autodiff::parallel` kernel hooks sample timings
    /// into this recorder's metrics (default: on).
    pub fn with_kernel_timing(mut self, on: bool) -> Self {
        self.kernel_timing = on;
        self
    }

    /// Installs the recorder on the current thread and emits `run_start`.
    ///
    /// The clock starts here rather than at `new` so setup (file
    /// creation, dataset generation between build and install) is not
    /// charged to the run.
    pub fn install(self) -> RecorderGuard {
        let shared = Arc::new(Shared {
            run: self.run,
            start: Instant::now(),
            max_level: self.max_level,
            kernel_timing: self.kernel_timing,
            next_span_id: AtomicU64::new(0),
            out: Mutex::new(self.sinks),
            merged: Mutex::new(MetricSet::default()),
            attached: AtomicUsize::new(0),
            warned_bad_sample: AtomicBool::new(false),
        });
        let run = Value::Str(shared.run.clone());
        let pretty = format!("run_start {}", shared.run);
        emit_record(&shared, None, Level::Info, "run_start", vec![("run".into(), run)], &pretty);
        let mine = Rc::new(RefCell::new(Inner {
            shared,
            thread: None,
            parent: None,
            span_stack: Vec::new(),
            phase_stack: Vec::new(),
            local: MetricSet::default(),
        }));
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(Rc::clone(&mine)));
        RecorderGuard { prev, mine }
    }
}

/// Uninstalls and finalises the recorder when dropped.
pub struct RecorderGuard {
    prev: Option<Rc<RefCell<Inner>>>,
    mine: Rc<RefCell<Inner>>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        let leaked;
        {
            let mut inner = self.mine.borrow_mut();
            // Workers still attached at run end would lose their buffered
            // samples (they merge on detach, which now cannot land in the
            // final metrics record): warn in the trace, then fail loudly
            // in debug builds once the record stream is safely closed.
            leaked = inner.shared.attached.load(Ordering::Acquire);
            if leaked > 0 {
                let fields = vec![
                    ("name".to_string(), Value::Str("telemetry.leaked_worker".to_string())),
                    (
                        "fields".to_string(),
                        Value::Obj(vec![("attached".to_string(), Value::UInt(leaked as u64))]),
                    ),
                ];
                let pretty = format!("telemetry.leaked_worker attached={leaked}");
                emit_record(&inner.shared, None, Level::Warn, "event", fields, &pretty);
            }
            flush_metrics_inner(&mut inner);
            let elapsed = inner.shared.start.elapsed().as_nanos() as u64;
            let open_spans = inner.span_stack.len();
            let pretty = format!("run_end ({:.3}s)", elapsed as f64 / 1e9);
            emit_record(
                &inner.shared,
                None,
                Level::Info,
                "run_end",
                vec![
                    ("elapsed_ns".into(), Value::UInt(elapsed)),
                    ("open_spans".into(), Value::UInt(open_spans as u64)),
                ],
                &pretty,
            );
            for sink in lock(&inner.shared.out).iter_mut() {
                sink.flush();
            }
        }
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        debug_assert!(
            leaked == 0,
            "telemetry: {leaked} worker scope(s) still attached at run end — \
             detach every WorkerGuard before dropping the RecorderGuard"
        );
    }
}

/// Cloneable, `Send + Sync` handle to the run installed on the current
/// thread, for worker threads to [`attach`](RecorderHandle::attach) to.
/// Captures the innermost open span at creation time as the parent for
/// the workers' root spans.
#[derive(Clone)]
pub struct RecorderHandle {
    shared: Arc<Shared>,
    parent: Option<u64>,
}

/// The handle to this thread's active run, or `None` without a recorder.
pub fn handle() -> Option<RecorderHandle> {
    with_active(|inner| RecorderHandle {
        shared: Arc::clone(&inner.shared),
        parent: inner.span_stack.last().copied().or(inner.parent),
    })
}

impl RecorderHandle {
    /// Run name this handle reports into.
    pub fn run(&self) -> &str {
        &self.shared.run
    }

    /// Nanoseconds since the run was installed.
    pub fn elapsed_ns(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }

    /// Number of worker scopes currently attached to the run.
    pub fn attached(&self) -> usize {
        self.shared.attached.load(Ordering::Acquire)
    }

    /// Attaches the current thread to the run for the guard's lifetime.
    /// `label` is stamped as the `thread` field on this thread's records.
    /// Spans opened while attached parent to the handle's capture-time
    /// span; metrics buffer locally and merge into the run on detach.
    pub fn attach(&self, label: impl Into<String>) -> WorkerGuard {
        self.shared.attached.fetch_add(1, Ordering::AcqRel);
        let mine = Rc::new(RefCell::new(Inner {
            shared: Arc::clone(&self.shared),
            thread: Some(label.into()),
            parent: self.parent,
            span_stack: Vec::new(),
            phase_stack: Vec::new(),
            local: MetricSet::default(),
        }));
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(Rc::clone(&mine)));
        WorkerGuard { prev, mine }
    }

    /// Drains the calling thread's metric buffer (when it reports into
    /// this run) and returns a clone of the merged registry — the live
    /// view the snapshot exporter serialises. Metrics still buffered on
    /// *other* attached threads appear once those threads detach.
    pub fn merged_metrics(&self) -> MetricSet {
        with_active(|inner| {
            if Arc::ptr_eq(&inner.shared, &self.shared) {
                let local = std::mem::take(&mut inner.local);
                lock(&self.shared.merged).merge(local);
            }
        });
        lock(&self.shared.merged).clone()
    }
}

/// Detaches a worker scope when dropped: merges the thread's buffered
/// metrics into the run and restores the thread's previous recorder
/// state. Must drop on the thread that attached (the guard is `!Send`).
pub struct WorkerGuard {
    prev: Option<Rc<RefCell<Inner>>>,
    mine: Rc<RefCell<Inner>>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let open;
        {
            let mut inner = self.mine.borrow_mut();
            let local = std::mem::take(&mut inner.local);
            lock(&inner.shared.merged).merge(local);
            inner.shared.attached.fetch_sub(1, Ordering::AcqRel);
            open = inner.span_stack.len();
        }
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        debug_assert!(open == 0, "telemetry: worker detached with {open} span(s) still open");
    }
}

/// Open span handle; closing (dropping) it emits the `span_close` record
/// with the span's monotonic elapsed time.
pub struct SpanGuard {
    /// `None` when no recorder was installed at open time.
    id: Option<u64>,
    name: &'static str,
    /// Set when the span carries a phase tag (see [`phase_span`]); popped
    /// from the recorder's phase stack on close.
    phase: Option<&'static str>,
    start: Instant,
    /// `Rc` upstream makes this `!Send` already; the marker documents that
    /// a span must close on the thread that opened it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let elapsed = self.start.elapsed().as_nanos() as u64;
        with_active(|inner| {
            // Defensive: drop order inside one scope is reverse
            // declaration order, so the id is normally on top; anything
            // above it leaked its guard and is closed implicitly.
            while let Some(top) = inner.span_stack.pop() {
                if top == id {
                    break;
                }
            }
            if self.phase.is_some() {
                inner.phase_stack.pop();
            }
            inner.local.record_latency(&format!("span.{}.ns", self.name), elapsed as f64);
            if Level::Debug <= inner.shared.max_level {
                let pretty = format!("<  {} ({:.3} ms)", self.name, elapsed as f64 / 1e6);
                emit_record(
                    &inner.shared,
                    inner.thread.as_deref(),
                    Level::Debug,
                    "span_close",
                    vec![
                        ("id".into(), Value::UInt(id)),
                        ("name".into(), Value::Str(self.name.to_string())),
                        ("elapsed_ns".into(), Value::UInt(elapsed)),
                    ],
                    &pretty,
                );
            }
        });
    }
}

fn with_active<R>(f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
    ACTIVE.with(|a| {
        let active = a.borrow();
        active.as_ref().map(|rc| f(&mut rc.borrow_mut()))
    })
}

/// True when a recorder is installed on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// True when an event at `level` would reach any sink — the gate callers
/// use before computing expensive payloads (per-epoch validation metrics,
/// alpha snapshots). Falls back to the `SANE_LOG` console level when no
/// recorder is installed.
pub fn enabled(level: Level) -> bool {
    with_active(|inner| level <= inner.shared.max_level)
        .unwrap_or_else(|| env_console_level().is_some_and(|l| level <= l))
}

/// True when kernel-timing hooks should sample (recorder installed with
/// kernel timing on). Called on every hot kernel; one thread-local read.
pub fn kernel_timing_enabled() -> bool {
    with_active(|inner| inner.shared.kernel_timing).unwrap_or(false)
}

fn emit_record(
    shared: &Shared,
    thread: Option<&str>,
    level: Level,
    kind: &str,
    fields: Vec<(String, Value)>,
    pretty: &str,
) {
    if level > shared.max_level {
        return;
    }
    let mut sinks = lock(&shared.out);
    // Timestamp *inside* the writer lock: sink writes are serialised, so
    // file order agrees with stamp order even with attached workers and
    // the validator's t_ns monotonicity check stays strict.
    let t_ns = shared.start.elapsed().as_nanos() as u64;
    let mut obj = vec![
        ("t_ns".to_string(), Value::UInt(t_ns)),
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("level".to_string(), Value::Str(level.as_str().to_string())),
    ];
    if let Some(t) = thread {
        obj.push(("thread".to_string(), Value::Str(t.to_string())));
    }
    obj.extend(fields);
    let json = Value::Obj(obj).to_json();
    let pretty_line = match thread {
        Some(t) => format!("[{:>9.3}s {:<5} {t}] {}", t_ns as f64 / 1e9, level, pretty),
        None => format!("[{:>9.3}s {:<5}] {}", t_ns as f64 / 1e9, level, pretty),
    };
    let rec = Rendered { level, json: &json, pretty: &pretty_line };
    for sink in sinks.iter_mut() {
        if rec.level <= sink.level() {
            sink.write(&rec);
        }
    }
}

/// Renders `name fields...` for console output.
fn pretty_event(name: &str, fields: &[(&'static str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str(name);
    for (k, v) in fields {
        let _ = write!(out, " {k}={v}");
    }
    out
}

/// Emits a point event. With no recorder installed, falls back to stderr
/// when `SANE_LOG` (default: warn) admits the level.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, Value)]) {
    let emitted = with_active(|inner| {
        if level > inner.shared.max_level {
            return;
        }
        let span = inner.span_stack.last().copied().or(inner.parent);
        let mut rec_fields = vec![("name".to_string(), Value::Str(name.to_string()))];
        if let Some(id) = span {
            rec_fields.push(("span".to_string(), Value::UInt(id)));
        }
        rec_fields.push((
            "fields".to_string(),
            Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
        ));
        emit_record(
            &inner.shared,
            inner.thread.as_deref(),
            level,
            "event",
            rec_fields,
            &pretty_event(name, fields),
        );
    });
    if emitted.is_none() {
        if let Some(console) = env_console_level() {
            if level <= console {
                let t = process_elapsed();
                eprintln!("[{t:>9.3}s {level:<5}] {}", pretty_event(name, fields));
            }
        }
    }
}

/// Seconds since the first telemetry call in this process (fallback
/// timestamps when no recorder is installed).
fn process_elapsed() -> f64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Opens a span. A no-op (returning an inert guard) without a recorder.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None, &[])
}

/// Opens a span with fields attached to its `span_open` record.
pub fn span_with(name: &'static str, fields: &[(&'static str, Value)]) -> SpanGuard {
    open_span(name, None, fields)
}

/// Opens a **phase-tagged** span: while the guard lives, every
/// [`kernel_sample`] is additionally attributed to `phase` (as a
/// `phase.<phase>.kernel.<name>.ns` summary) and the `span_open` record
/// carries a top-level `phase` field, so the profiler can split kernel
/// time between e.g. the architecture step and the weight step. Phases
/// nest; the innermost tag wins.
pub fn phase_span(name: &'static str, phase: &'static str) -> SpanGuard {
    open_span(name, Some(phase), &[])
}

/// [`phase_span`] with fields attached to the `span_open` record.
pub fn phase_span_with(
    name: &'static str,
    phase: &'static str,
    fields: &[(&'static str, Value)],
) -> SpanGuard {
    open_span(name, Some(phase), fields)
}

fn open_span(
    name: &'static str,
    phase: Option<&'static str>,
    fields: &[(&'static str, Value)],
) -> SpanGuard {
    let id = with_active(|inner| {
        let id = inner.shared.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = inner.span_stack.last().copied().or(inner.parent);
        inner.span_stack.push(id);
        if let Some(phase) = phase {
            inner.phase_stack.push(phase);
        }
        if Level::Debug <= inner.shared.max_level {
            let mut rec_fields = vec![
                ("id".to_string(), Value::UInt(id)),
                ("name".to_string(), Value::Str(name.to_string())),
            ];
            if let Some(p) = parent {
                rec_fields.push(("parent".to_string(), Value::UInt(p)));
            }
            if let Some(phase) = phase {
                rec_fields.push(("phase".to_string(), Value::Str(phase.to_string())));
            }
            if !fields.is_empty() {
                rec_fields.push((
                    "fields".to_string(),
                    Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
                ));
            }
            let pretty = format!(">  {}", pretty_event(name, fields));
            emit_record(
                &inner.shared,
                inner.thread.as_deref(),
                Level::Debug,
                "span_open",
                rec_fields,
                &pretty,
            );
        }
        id
    });
    // The guard only pops the phase stack when a recorder accepted the
    // push, which `id.is_some()` captures exactly.
    let phase = if id.is_some() { phase } else { None };
    SpanGuard { id, name, phase, start: Instant::now(), _not_send: std::marker::PhantomData }
}

pub fn counter_add(name: &str, delta: u64) {
    with_active(|inner| inner.local.counter_add(name, delta));
}

pub fn gauge_set(name: &str, v: f64) {
    with_active(|inner| inner.local.gauge_set(name, v));
}

pub fn gauge_max(name: &str, v: f64) {
    with_active(|inner| inner.local.gauge_max(name, v));
}

/// Warns (once per run) that a NaN/negative sample was dropped from
/// `stream`. Called with the thread's `Inner` already borrowed, so it
/// must emit through `emit_record` directly, not `event`.
fn warn_bad_sample(inner: &Inner, stream: &str) {
    if inner.shared.warned_bad_sample.swap(true, Ordering::Relaxed) {
        return;
    }
    let fields = vec![
        ("name".to_string(), Value::Str("telemetry.bad_sample".to_string())),
        (
            "fields".to_string(),
            Value::Obj(vec![("stream".to_string(), Value::Str(stream.to_string()))]),
        ),
    ];
    let pretty = format!("telemetry.bad_sample stream={stream}");
    emit_record(&inner.shared, inner.thread.as_deref(), Level::Warn, "event", fields, &pretty);
}

/// Records one sample into a named summary (timings, sizes). NaN or
/// negative samples are dropped (counted in the summary's `dropped`
/// field) with one warning per run.
pub fn record(name: &str, v: f64) {
    with_active(|inner| {
        if !inner.local.record(name, v) {
            warn_bad_sample(inner, name);
        }
    });
}

/// Records one latency sample into both the summary and the histogram of
/// `name`, so flushed metrics carry p50/p90/p99 for the stream.
pub fn record_latency(name: &str, v: f64) {
    with_active(|inner| {
        if !inner.local.record_latency(name, v) {
            warn_bad_sample(inner, name);
        }
    });
}

/// Records one kernel invocation of `kernel` that took `ns` nanoseconds.
/// This is the sink side of the hooks in `sane_autodiff::parallel`.
/// Inside a [`phase_span`] the sample is also booked against the
/// innermost phase so the profiler can attribute kernel time per phase.
pub fn kernel_sample(kernel: &'static str, ns: u64) {
    with_active(|inner| {
        inner.local.record_latency(&format!("kernel.{kernel}.ns", kernel = kernel), ns as f64);
        if let Some(phase) = inner.phase_stack.last() {
            inner.local.record_latency(&format!("phase.{phase}.kernel.{kernel}.ns"), ns as f64);
        }
    });
}

fn flush_metrics_inner(inner: &mut Inner) {
    let local = std::mem::take(&mut inner.local);
    let fields;
    let pretty;
    {
        let mut merged = lock(&inner.shared.merged);
        merged.merge(local);
        if merged.is_empty() {
            return;
        }
        fields = merged.to_fields();
        pretty = format!(
            "metrics: {} counter(s), {} gauge(s), {} summarie(s), {} histogram(s)",
            merged.counters().len(),
            merged.gauges().len(),
            merged.summaries().len(),
            merged.hists().len(),
        );
        // Release the registry lock before taking the writer lock so the
        // recorder only ever holds one lock at a time.
    }
    emit_record(&inner.shared, inner.thread.as_deref(), Level::Info, "metrics", fields, &pretty);
}

/// Writes the current metrics registry as one `metrics` record, after
/// draining this thread's buffer into the run's merged registry.
/// Cumulative: flushing twice emits two snapshots; readers take the last.
/// Samples still buffered on other attached threads join the registry
/// when those workers detach.
pub fn flush_metrics() {
    with_active(flush_metrics_inner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemoryBuffer;

    fn memory_recorder(run: &str) -> (RecorderGuard, MemoryBuffer) {
        let buf = MemoryBuffer::default();
        let guard = Recorder::new(run).with_memory(buf.clone()).install();
        (guard, buf)
    }

    fn lines_of(buf: &MemoryBuffer) -> Vec<Value> {
        buf.borrow().lines().map(|l| Value::parse(l).expect("every trace line parses")).collect()
    }

    #[test]
    fn run_lifecycle_brackets_the_trace() {
        let (guard, buf) = memory_recorder("unit");
        event(Level::Info, "hello", &[("x", Value::Int(1))]);
        drop(guard);
        let lines = lines_of(&buf);
        assert_eq!(lines[0].get("kind").and_then(Value::as_str), Some("run_start"));
        assert_eq!(lines[0].get("run").and_then(Value::as_str), Some("unit"));
        assert_eq!(lines[1].get("kind").and_then(Value::as_str), Some("event"));
        let last = lines.last().expect("run_end");
        assert_eq!(last.get("kind").and_then(Value::as_str), Some("run_end"));
        assert_eq!(last.get("open_spans").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let (guard, buf) = memory_recorder("spans");
        {
            let _outer = span("outer");
            let _inner = span_with("inner", &[("epoch", Value::Int(0))]);
            event(Level::Info, "inside", &[]);
        }
        drop(guard);
        let lines = lines_of(&buf);
        let opens: Vec<&Value> = lines
            .iter()
            .filter(|l| l.get("kind").and_then(Value::as_str) == Some("span_open"))
            .collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[1].get("parent"), opens[0].get("id"));
        // The event inside carries the innermost span id.
        let ev = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("event"))
            .expect("event");
        assert_eq!(ev.get("span"), opens[1].get("id"));
        // Inner closes before outer; both carry elapsed_ns.
        let closes: Vec<&Value> = lines
            .iter()
            .filter(|l| l.get("kind").and_then(Value::as_str) == Some("span_close"))
            .collect();
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].get("name").and_then(Value::as_str), Some("inner"));
        assert!(closes.iter().all(|c| c.get("elapsed_ns").and_then(Value::as_u64).is_some()));
        // Timestamps never go backwards.
        let stamps: Vec<u64> =
            lines.iter().map(|l| l.get("t_ns").and_then(Value::as_u64).expect("t_ns")).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "t_ns must be monotone: {stamps:?}");
    }

    #[test]
    fn metrics_flush_into_one_record() {
        let (guard, buf) = memory_recorder("metrics");
        counter_add("tapes", 3);
        gauge_set("hit_rate", 0.75);
        kernel_sample("spmm", 1_000);
        kernel_sample("spmm", 3_000);
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        assert_eq!(m.get("counters").and_then(|c| c.get("tapes")).and_then(Value::as_u64), Some(3));
        let spmm = m.get("summaries").and_then(|s| s.get("kernel.spmm.ns")).expect("spmm summary");
        assert_eq!(spmm.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(spmm.get("mean").and_then(Value::as_f64), Some(2_000.0));
        // Kernel streams carry a histogram with percentiles alongside.
        let hist = m.get("hists").and_then(|h| h.get("kernel.spmm.ns")).expect("spmm hist");
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(2));
        let p99 = hist.get("p99").and_then(Value::as_f64).expect("p99");
        assert!((3_000.0..=3_000.0 * 1.13).contains(&p99), "p99={p99}");
    }

    #[test]
    fn phase_spans_attribute_kernel_samples() {
        let (guard, buf) = memory_recorder("phases");
        {
            let _search = span("search");
            {
                let _arch = phase_span("search.arch_step", "arch_step");
                kernel_sample("spmm", 1_000);
            }
            {
                let _w = phase_span("search.weight_step", "weight_step");
                kernel_sample("spmm", 3_000);
                kernel_sample("gemm", 500);
            }
            // Outside any phase: counts only toward the plain summary.
            kernel_sample("spmm", 10_000);
        }
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        let summaries = m.get("summaries").expect("summaries");
        let sum_of = |key: &str| {
            summaries.get(key).and_then(|s| s.get("sum")).and_then(Value::as_f64).unwrap_or(-1.0)
        };
        assert_eq!(sum_of("kernel.spmm.ns"), 14_000.0);
        assert_eq!(sum_of("phase.arch_step.kernel.spmm.ns"), 1_000.0);
        assert_eq!(sum_of("phase.weight_step.kernel.spmm.ns"), 3_000.0);
        assert_eq!(sum_of("phase.weight_step.kernel.gemm.ns"), 500.0);
        // The span_open record carries the phase tag for the profiler.
        let tagged = lines.iter().any(|l| {
            l.get("kind").and_then(Value::as_str) == Some("span_open")
                && l.get("phase").and_then(Value::as_str) == Some("arch_step")
        });
        assert!(tagged, "span_open must carry the phase field");
    }

    #[test]
    fn guard_restores_previous_recorder() {
        assert!(!active());
        let (outer, outer_buf) = memory_recorder("outer");
        {
            let (inner, _inner_buf) = memory_recorder("inner");
            event(Level::Info, "to_inner", &[]);
            drop(inner);
        }
        event(Level::Info, "to_outer", &[]);
        drop(outer);
        assert!(!active());
        let text = outer_buf.borrow();
        assert!(text.contains("to_outer"));
        assert!(!text.contains("to_inner"), "inner events must not leak to the outer recorder");
    }

    #[test]
    fn disabled_levels_are_cheap_and_silent() {
        let buf = MemoryBuffer::default();
        // A recorder whose only sink caps at Info records no span records.
        let guard = Recorder::new("quiet")
            .add_sink(Box::new(MemorySink::new(buf.clone(), Level::Info)))
            .install();
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        {
            let _s = span("invisible");
        }
        drop(guard);
        assert!(!buf.borrow().contains("span_open"));
    }

    #[test]
    fn bad_samples_warn_once_and_never_poison() {
        let (guard, buf) = memory_recorder("badsample");
        record("stream", 1.0);
        record("stream", f64::NAN);
        record("stream", -5.0);
        record_latency("lat", f64::INFINITY);
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let warns: Vec<&Value> = lines
            .iter()
            .filter(|l| l.get("name").and_then(Value::as_str) == Some("telemetry.bad_sample"))
            .collect();
        assert_eq!(warns.len(), 1, "exactly one bad-sample warning per run");
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        let s = m.get("summaries").and_then(|s| s.get("stream")).expect("stream summary");
        assert_eq!(s.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(s.get("dropped").and_then(Value::as_u64), Some(2));
        assert_eq!(s.get("min").and_then(Value::as_f64), Some(1.0));
        assert_eq!(s.get("max").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn attach_on_same_thread_records_thread_field_and_merges_metrics() {
        // Single-thread attach exercise of the worker lifecycle (the
        // multi-thread version lives in sane-autodiff's integration
        // tests, the only crate allowed to spawn threads).
        let (guard, buf) = memory_recorder("attach");
        let root = span("root");
        let h = handle().expect("active recorder");
        assert_eq!(h.run(), "attach");
        {
            let _w = h.attach("w0");
            let _s = span("trial");
            kernel_sample("spmm", 2_000);
            event(Level::Info, "inside_worker", &[]);
        }
        assert_eq!(h.attached(), 0);
        drop(root);
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let trial_open = lines
            .iter()
            .find(|l| {
                l.get("kind").and_then(Value::as_str) == Some("span_open")
                    && l.get("name").and_then(Value::as_str) == Some("trial")
            })
            .expect("trial span_open");
        let root_open = lines
            .iter()
            .find(|l| {
                l.get("kind").and_then(Value::as_str) == Some("span_open")
                    && l.get("name").and_then(Value::as_str) == Some("root")
            })
            .expect("root span_open");
        assert_eq!(trial_open.get("parent"), root_open.get("id"), "worker span parents to root");
        assert_eq!(trial_open.get("thread").and_then(Value::as_str), Some("w0"));
        let ev = lines
            .iter()
            .find(|l| l.get("name").and_then(Value::as_str) == Some("inside_worker"))
            .expect("worker event");
        assert_eq!(ev.get("thread").and_then(Value::as_str), Some("w0"));
        // The worker's buffered kernel sample merged into the flushed set.
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        let spmm = m.get("summaries").and_then(|s| s.get("kernel.spmm.ns")).expect("spmm");
        assert_eq!(spmm.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    #[should_panic(expected = "still attached at run end")]
    #[cfg(debug_assertions)]
    fn leaked_worker_fails_loudly_in_debug() {
        let (guard, _buf) = memory_recorder("leak");
        let h = handle().expect("active recorder");
        let w = h.attach("w0");
        // Dropping the run guard with the worker still attached must
        // debug_assert after warning in the trace.
        drop(guard);
        drop(w);
    }

    #[test]
    fn leaked_worker_warns_in_trace() {
        let lines = {
            let (guard, buf) = memory_recorder("leakwarn");
            let h = handle().expect("active recorder");
            let w = h.attach("w0");
            let lines = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drop(guard);
                lines_of(&buf)
            }));
            drop(w);
            // In release builds the drop returns normally; in debug it
            // panics after the trace is complete — read the buffer back
            // from the payload-free catch in either case.
            match lines {
                Ok(lines) => lines,
                Err(_) => lines_of(&buf),
            }
        };
        let warn = lines
            .iter()
            .find(|l| l.get("name").and_then(Value::as_str) == Some("telemetry.leaked_worker"))
            .expect("leaked_worker warning");
        assert_eq!(
            warn.get("fields").and_then(|f| f.get("attached")).and_then(Value::as_u64),
            Some(1)
        );
        // The trace still closes with run_end after the warning.
        let last = lines.last().expect("records");
        assert_eq!(last.get("kind").and_then(Value::as_str), Some("run_end"));
    }
}
