//! The run recorder: hierarchical spans, metrics and trace records.
//!
//! A [`Recorder`] is built, given sinks, then **installed** on the current
//! thread. Every telemetry call from that thread — spans, events, counters,
//! the kernel-timing hooks inside `sane_autodiff` — reports to the
//! installed recorder until its [`RecorderGuard`] drops, which flushes the
//! metrics registry, closes the trace with a `run_end` record and restores
//! whatever recorder (usually none) was active before.
//!
//! The recorder is **thread-local** on purpose, mirroring the buffer pool
//! in `sane_autodiff::pool`: every tape, kernel and search loop in this
//! workspace runs on the thread that drives it (worker threads only fill
//! pre-split output chunks), so a thread-local recorder needs no locks and
//! gives parallel test processes isolation for free.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use crate::level::{env_console_level, Level};
use crate::metrics::MetricSet;
use crate::sink::{ConsoleSink, JsonlSink, MemoryBuffer, MemorySink, Rendered, Sink};
use crate::value::Value;

struct Inner {
    run: String,
    start: Instant,
    sinks: Vec<Box<dyn Sink>>,
    /// Most detailed level any sink accepts; records above it skip
    /// rendering entirely.
    max_level: Level,
    kernel_timing: bool,
    span_stack: Vec<u64>,
    /// Innermost-last stack of phase tags from [`phase_span`] guards;
    /// kernel samples are attributed to the top entry.
    phase_stack: Vec<&'static str>,
    next_span_id: u64,
    metrics: MetricSet,
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<Inner>>>> = const { RefCell::new(None) };
}

/// Builder for a run recorder. See the module docs for the lifecycle.
pub struct Recorder {
    inner: Inner,
}

impl Recorder {
    /// A recorder for a run named `run` with no sinks yet.
    pub fn new(run: &str) -> Self {
        Self {
            inner: Inner {
                run: run.to_string(),
                start: Instant::now(),
                sinks: Vec::new(),
                max_level: Level::Error,
                kernel_timing: true,
                span_stack: Vec::new(),
                phase_stack: Vec::new(),
                next_span_id: 0,
                metrics: MetricSet::default(),
            },
        }
    }

    fn add_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.inner.max_level = self.inner.max_level.max(sink.level());
        self.inner.sinks.push(sink);
        self
    }

    /// Streams every record as a JSON line to `path` (created/truncated;
    /// parent directories are created as needed).
    pub fn with_jsonl(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(self.add_sink(Box::new(JsonlSink::create(path.as_ref(), Level::Trace)?)))
    }

    /// Adds a human console sink on stderr at `level`.
    pub fn with_console(self, level: Level) -> Self {
        self.add_sink(Box::new(ConsoleSink::new(level)))
    }

    /// Adds a console sink at the level `SANE_LOG` requests (default:
    /// warnings and errors; `SANE_LOG=off` adds no sink).
    pub fn with_console_env(self) -> Self {
        match env_console_level() {
            Some(level) => self.with_console(level),
            None => self,
        }
    }

    /// Collects JSON lines into `buf` (tests).
    pub fn with_memory(self, buf: MemoryBuffer) -> Self {
        self.add_sink(Box::new(MemorySink::new(buf, Level::Trace)))
    }

    /// Whether the `sane_autodiff::parallel` kernel hooks sample timings
    /// into this recorder's metrics (default: on).
    pub fn with_kernel_timing(mut self, on: bool) -> Self {
        self.inner.kernel_timing = on;
        self
    }

    /// Installs the recorder on the current thread and emits `run_start`.
    ///
    /// Restart the clock here rather than at `new` so setup (file
    /// creation, dataset generation between build and install) is not
    /// charged to the run.
    pub fn install(mut self) -> RecorderGuard {
        self.inner.start = Instant::now();
        let rc = Rc::new(RefCell::new(self.inner));
        {
            let mut inner = rc.borrow_mut();
            let run = Value::Str(inner.run.clone());
            let pretty = format!("run_start {}", inner.run);
            emit_record(&mut inner, Level::Info, "run_start", vec![("run".into(), run)], &pretty);
        }
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(Rc::clone(&rc)));
        RecorderGuard { prev, mine: rc }
    }
}

/// Uninstalls and finalises the recorder when dropped.
pub struct RecorderGuard {
    prev: Option<Rc<RefCell<Inner>>>,
    mine: Rc<RefCell<Inner>>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        {
            let mut inner = self.mine.borrow_mut();
            flush_metrics_inner(&mut inner);
            let elapsed = inner.start.elapsed().as_nanos() as u64;
            let open_spans = inner.span_stack.len();
            let pretty = format!("run_end ({:.3}s)", elapsed as f64 / 1e9);
            emit_record(
                &mut inner,
                Level::Info,
                "run_end",
                vec![
                    ("elapsed_ns".into(), Value::UInt(elapsed)),
                    ("open_spans".into(), Value::UInt(open_spans as u64)),
                ],
                &pretty,
            );
            for sink in &mut inner.sinks {
                sink.flush();
            }
        }
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Open span handle; closing (dropping) it emits the `span_close` record
/// with the span's monotonic elapsed time.
pub struct SpanGuard {
    /// `None` when no recorder was installed at open time.
    id: Option<u64>,
    name: &'static str,
    /// Set when the span carries a phase tag (see [`phase_span`]); popped
    /// from the recorder's phase stack on close.
    phase: Option<&'static str>,
    start: Instant,
    /// `Rc` upstream makes this `!Send` already; the marker documents that
    /// a span must close on the thread that opened it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let elapsed = self.start.elapsed().as_nanos() as u64;
        with_active(|inner| {
            // Defensive: drop order inside one scope is reverse
            // declaration order, so the id is normally on top; anything
            // above it leaked its guard and is closed implicitly.
            while let Some(top) = inner.span_stack.pop() {
                if top == id {
                    break;
                }
            }
            if self.phase.is_some() {
                inner.phase_stack.pop();
            }
            inner.metrics.record(&format!("span.{}.ns", self.name), elapsed as f64);
            if Level::Debug <= inner.max_level {
                let pretty = format!("<  {} ({:.3} ms)", self.name, elapsed as f64 / 1e6);
                emit_record(
                    inner,
                    Level::Debug,
                    "span_close",
                    vec![
                        ("id".into(), Value::UInt(id)),
                        ("name".into(), Value::Str(self.name.to_string())),
                        ("elapsed_ns".into(), Value::UInt(elapsed)),
                    ],
                    &pretty,
                );
            }
        });
    }
}

fn with_active<R>(f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
    ACTIVE.with(|a| {
        let active = a.borrow();
        active.as_ref().map(|rc| f(&mut rc.borrow_mut()))
    })
}

/// True when a recorder is installed on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// True when an event at `level` would reach any sink — the gate callers
/// use before computing expensive payloads (per-epoch validation metrics,
/// alpha snapshots). Falls back to the `SANE_LOG` console level when no
/// recorder is installed.
pub fn enabled(level: Level) -> bool {
    with_active(|inner| level <= inner.max_level)
        .unwrap_or_else(|| env_console_level().is_some_and(|l| level <= l))
}

/// True when kernel-timing hooks should sample (recorder installed with
/// kernel timing on). Called on every hot kernel; one thread-local read.
pub fn kernel_timing_enabled() -> bool {
    with_active(|inner| inner.kernel_timing).unwrap_or(false)
}

fn emit_record(
    inner: &mut Inner,
    level: Level,
    kind: &str,
    fields: Vec<(String, Value)>,
    pretty: &str,
) {
    if level > inner.max_level {
        return;
    }
    let t_ns = inner.start.elapsed().as_nanos() as u64;
    let mut obj = vec![
        ("t_ns".to_string(), Value::UInt(t_ns)),
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("level".to_string(), Value::Str(level.as_str().to_string())),
    ];
    obj.extend(fields);
    let json = Value::Obj(obj).to_json();
    let pretty_line = format!("[{:>9.3}s {:<5}] {}", t_ns as f64 / 1e9, level, pretty);
    let rec = Rendered { level, json: &json, pretty: &pretty_line };
    for sink in &mut inner.sinks {
        if rec.level <= sink.level() {
            sink.write(&rec);
        }
    }
}

/// Renders `name fields...` for console output.
fn pretty_event(name: &str, fields: &[(&'static str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str(name);
    for (k, v) in fields {
        let _ = write!(out, " {k}={v}");
    }
    out
}

/// Emits a point event. With no recorder installed, falls back to stderr
/// when `SANE_LOG` (default: warn) admits the level.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, Value)]) {
    let emitted = with_active(|inner| {
        if level > inner.max_level {
            return;
        }
        let span = inner.span_stack.last().copied();
        let mut rec_fields = vec![("name".to_string(), Value::Str(name.to_string()))];
        if let Some(id) = span {
            rec_fields.push(("span".to_string(), Value::UInt(id)));
        }
        rec_fields.push((
            "fields".to_string(),
            Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
        ));
        emit_record(inner, level, "event", rec_fields, &pretty_event(name, fields));
    });
    if emitted.is_none() {
        if let Some(console) = env_console_level() {
            if level <= console {
                let t = process_elapsed();
                eprintln!("[{t:>9.3}s {level:<5}] {}", pretty_event(name, fields));
            }
        }
    }
}

/// Seconds since the first telemetry call in this process (fallback
/// timestamps when no recorder is installed).
fn process_elapsed() -> f64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Opens a span. A no-op (returning an inert guard) without a recorder.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None, &[])
}

/// Opens a span with fields attached to its `span_open` record.
pub fn span_with(name: &'static str, fields: &[(&'static str, Value)]) -> SpanGuard {
    open_span(name, None, fields)
}

/// Opens a **phase-tagged** span: while the guard lives, every
/// [`kernel_sample`] is additionally attributed to `phase` (as a
/// `phase.<phase>.kernel.<name>.ns` summary) and the `span_open` record
/// carries a top-level `phase` field, so the profiler can split kernel
/// time between e.g. the architecture step and the weight step. Phases
/// nest; the innermost tag wins.
pub fn phase_span(name: &'static str, phase: &'static str) -> SpanGuard {
    open_span(name, Some(phase), &[])
}

/// [`phase_span`] with fields attached to the `span_open` record.
pub fn phase_span_with(
    name: &'static str,
    phase: &'static str,
    fields: &[(&'static str, Value)],
) -> SpanGuard {
    open_span(name, Some(phase), fields)
}

fn open_span(
    name: &'static str,
    phase: Option<&'static str>,
    fields: &[(&'static str, Value)],
) -> SpanGuard {
    let id = with_active(|inner| {
        inner.next_span_id += 1;
        let id = inner.next_span_id;
        let parent = inner.span_stack.last().copied();
        inner.span_stack.push(id);
        if let Some(phase) = phase {
            inner.phase_stack.push(phase);
        }
        if Level::Debug <= inner.max_level {
            let mut rec_fields = vec![
                ("id".to_string(), Value::UInt(id)),
                ("name".to_string(), Value::Str(name.to_string())),
            ];
            if let Some(p) = parent {
                rec_fields.push(("parent".to_string(), Value::UInt(p)));
            }
            if let Some(phase) = phase {
                rec_fields.push(("phase".to_string(), Value::Str(phase.to_string())));
            }
            if !fields.is_empty() {
                rec_fields.push((
                    "fields".to_string(),
                    Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
                ));
            }
            let pretty = format!(">  {}", pretty_event(name, fields));
            emit_record(inner, Level::Debug, "span_open", rec_fields, &pretty);
        }
        id
    });
    // The guard only pops the phase stack when a recorder accepted the
    // push, which `id.is_some()` captures exactly.
    let phase = if id.is_some() { phase } else { None };
    SpanGuard { id, name, phase, start: Instant::now(), _not_send: std::marker::PhantomData }
}

pub fn counter_add(name: &str, delta: u64) {
    with_active(|inner| inner.metrics.counter_add(name, delta));
}

pub fn gauge_set(name: &str, v: f64) {
    with_active(|inner| inner.metrics.gauge_set(name, v));
}

pub fn gauge_max(name: &str, v: f64) {
    with_active(|inner| inner.metrics.gauge_max(name, v));
}

/// Records one sample into a named summary (timings, sizes).
pub fn record(name: &str, v: f64) {
    with_active(|inner| inner.metrics.record(name, v));
}

/// Records one kernel invocation of `kernel` that took `ns` nanoseconds.
/// This is the sink side of the hooks in `sane_autodiff::parallel`.
/// Inside a [`phase_span`] the sample is also booked against the
/// innermost phase so the profiler can attribute kernel time per phase.
pub fn kernel_sample(kernel: &'static str, ns: u64) {
    with_active(|inner| {
        inner.metrics.record(&format!("kernel.{kernel}.ns", kernel = kernel), ns as f64);
        if let Some(phase) = inner.phase_stack.last() {
            inner.metrics.record(&format!("phase.{phase}.kernel.{kernel}.ns"), ns as f64);
        }
    });
}

fn flush_metrics_inner(inner: &mut Inner) {
    if inner.metrics.is_empty() {
        return;
    }
    let fields = inner.metrics.to_fields();
    let pretty = format!(
        "metrics: {} counter(s), {} gauge(s), {} summarie(s)",
        inner.metrics.counters().len(),
        inner.metrics.gauges().len(),
        inner.metrics.summaries().len(),
    );
    emit_record(inner, Level::Info, "metrics", fields, &pretty);
}

/// Writes the current metrics registry as one `metrics` record. Cumulative:
/// flushing twice emits two snapshots; readers take the last.
pub fn flush_metrics() {
    with_active(flush_metrics_inner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemoryBuffer;

    fn memory_recorder(run: &str) -> (RecorderGuard, MemoryBuffer) {
        let buf = MemoryBuffer::default();
        let guard = Recorder::new(run).with_memory(Rc::clone(&buf)).install();
        (guard, buf)
    }

    fn lines_of(buf: &MemoryBuffer) -> Vec<Value> {
        buf.borrow().lines().map(|l| Value::parse(l).expect("every trace line parses")).collect()
    }

    #[test]
    fn run_lifecycle_brackets_the_trace() {
        let (guard, buf) = memory_recorder("unit");
        event(Level::Info, "hello", &[("x", Value::Int(1))]);
        drop(guard);
        let lines = lines_of(&buf);
        assert_eq!(lines[0].get("kind").and_then(Value::as_str), Some("run_start"));
        assert_eq!(lines[0].get("run").and_then(Value::as_str), Some("unit"));
        assert_eq!(lines[1].get("kind").and_then(Value::as_str), Some("event"));
        let last = lines.last().expect("run_end");
        assert_eq!(last.get("kind").and_then(Value::as_str), Some("run_end"));
        assert_eq!(last.get("open_spans").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let (guard, buf) = memory_recorder("spans");
        {
            let _outer = span("outer");
            let _inner = span_with("inner", &[("epoch", Value::Int(0))]);
            event(Level::Info, "inside", &[]);
        }
        drop(guard);
        let lines = lines_of(&buf);
        let opens: Vec<&Value> = lines
            .iter()
            .filter(|l| l.get("kind").and_then(Value::as_str) == Some("span_open"))
            .collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[1].get("parent"), opens[0].get("id"));
        // The event inside carries the innermost span id.
        let ev = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("event"))
            .expect("event");
        assert_eq!(ev.get("span"), opens[1].get("id"));
        // Inner closes before outer; both carry elapsed_ns.
        let closes: Vec<&Value> = lines
            .iter()
            .filter(|l| l.get("kind").and_then(Value::as_str) == Some("span_close"))
            .collect();
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].get("name").and_then(Value::as_str), Some("inner"));
        assert!(closes.iter().all(|c| c.get("elapsed_ns").and_then(Value::as_u64).is_some()));
        // Timestamps never go backwards.
        let stamps: Vec<u64> =
            lines.iter().map(|l| l.get("t_ns").and_then(Value::as_u64).expect("t_ns")).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "t_ns must be monotone: {stamps:?}");
    }

    #[test]
    fn metrics_flush_into_one_record() {
        let (guard, buf) = memory_recorder("metrics");
        counter_add("tapes", 3);
        gauge_set("hit_rate", 0.75);
        kernel_sample("spmm", 1_000);
        kernel_sample("spmm", 3_000);
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        assert_eq!(m.get("counters").and_then(|c| c.get("tapes")).and_then(Value::as_u64), Some(3));
        let spmm = m.get("summaries").and_then(|s| s.get("kernel.spmm.ns")).expect("spmm summary");
        assert_eq!(spmm.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(spmm.get("mean").and_then(Value::as_f64), Some(2_000.0));
    }

    #[test]
    fn phase_spans_attribute_kernel_samples() {
        let (guard, buf) = memory_recorder("phases");
        {
            let _search = span("search");
            {
                let _arch = phase_span("search.arch_step", "arch_step");
                kernel_sample("spmm", 1_000);
            }
            {
                let _w = phase_span("search.weight_step", "weight_step");
                kernel_sample("spmm", 3_000);
                kernel_sample("gemm", 500);
            }
            // Outside any phase: counts only toward the plain summary.
            kernel_sample("spmm", 10_000);
        }
        flush_metrics();
        drop(guard);
        let lines = lines_of(&buf);
        let m = lines
            .iter()
            .find(|l| l.get("kind").and_then(Value::as_str) == Some("metrics"))
            .expect("metrics record");
        let summaries = m.get("summaries").expect("summaries");
        let sum_of = |key: &str| {
            summaries.get(key).and_then(|s| s.get("sum")).and_then(Value::as_f64).unwrap_or(-1.0)
        };
        assert_eq!(sum_of("kernel.spmm.ns"), 14_000.0);
        assert_eq!(sum_of("phase.arch_step.kernel.spmm.ns"), 1_000.0);
        assert_eq!(sum_of("phase.weight_step.kernel.spmm.ns"), 3_000.0);
        assert_eq!(sum_of("phase.weight_step.kernel.gemm.ns"), 500.0);
        // The span_open record carries the phase tag for the profiler.
        let tagged = lines.iter().any(|l| {
            l.get("kind").and_then(Value::as_str) == Some("span_open")
                && l.get("phase").and_then(Value::as_str) == Some("arch_step")
        });
        assert!(tagged, "span_open must carry the phase field");
    }

    #[test]
    fn guard_restores_previous_recorder() {
        assert!(!active());
        let (outer, outer_buf) = memory_recorder("outer");
        {
            let (inner, _inner_buf) = memory_recorder("inner");
            event(Level::Info, "to_inner", &[]);
            drop(inner);
        }
        event(Level::Info, "to_outer", &[]);
        drop(outer);
        assert!(!active());
        let text = outer_buf.borrow();
        assert!(text.contains("to_outer"));
        assert!(!text.contains("to_inner"), "inner events must not leak to the outer recorder");
    }

    #[test]
    fn disabled_levels_are_cheap_and_silent() {
        let buf = MemoryBuffer::default();
        // A recorder whose only sink caps at Info records no span records.
        let guard = Recorder::new("quiet")
            .add_sink(Box::new(MemorySink::new(Rc::clone(&buf), Level::Info)))
            .install();
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        {
            let _s = span("invisible");
        }
        drop(guard);
        assert!(!buf.borrow().contains("span_open"));
    }
}
