//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records one forward computation as a Wengert list. Values are
//! computed eagerly when an op is recorded, so every op can stash whatever
//! forward byproducts its backward pass needs (dropout masks, arg-max
//! indices, softmax outputs). [`Tape::backward`] then runs a single reverse
//! sweep and returns the gradient of a scalar output with respect to every
//! [`Param`] that participated.
//!
//! Parameters live outside the tape in a [`VarStore`], so the tape can be
//! rebuilt cheaply every training step (the idiom used by all GNN models in
//! this workspace).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::absint::{AbsVal, Dim};
use crate::audit::Arity;
use crate::dataflow::{GradReads, MemPlan};
use crate::matrix::Matrix;
use crate::pool;

/// Handle to a node on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tensor(pub(crate) usize);

impl Tensor {
    /// Index of this node on its tape (matches node indices in audit
    /// reports).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a trainable parameter in a [`VarStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of this parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One differentiable operation.
///
/// Implementations receive the forward output, the incoming gradient and the
/// forward values of their inputs, and return one optional gradient per
/// input (in the same order the inputs were wired on the tape).
pub(crate) trait Op: Send + Sync {
    fn backward(&self, out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>>;

    /// Human-readable name for error messages.
    fn name(&self) -> &'static str;

    /// Declared number of tape inputs, checked by the tape auditor.
    fn arity(&self) -> Arity;

    /// Declared shape-transfer function, checked against recorded values by
    /// the tape auditor.
    ///
    /// Given the shapes of the op's inputs (in wiring order), returns the
    /// output shape the op is supposed to produce, `Ok(None)` when the output
    /// shape is not determined by the inputs (leaf ops), or `Err` when the
    /// input shapes themselves are inconsistent with the op's contract.
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> Result<Option<(usize, usize)>, String>;

    /// Declared set of forward values (output / inputs, shapes included)
    /// this op's [`Op::backward`] dereferences. The memory planner in
    /// [`crate::dataflow`] releases values whose declared reads are all in
    /// the past; the conservative default forfeits reuse but is always
    /// safe. Overrides are guarded by the bitwise plan-vs-eager parity
    /// test in the dataflow suite.
    fn grad_reads(&self) -> GradReads {
        GradReads::ALL
    }

    /// Abstract transfer function for [`crate::absint`]: maps the abstract
    /// values of the inputs to the abstract value of the output, or `Err`
    /// when the inputs violate the op's contract (the abstract analogue of
    /// [`Op::infer_shape`] returning `Err`).
    ///
    /// The conservative default derives the output shape from
    /// [`Op::infer_shape`] when every input dim is concrete and claims
    /// nothing about values. Overrides live next to each op's `grad_reads`
    /// declaration and are property-checked in the absint suite: the
    /// abstract result must over-approximate every concrete execution.
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let mut shapes = Vec::with_capacity(inputs.len());
        for v in inputs {
            match (v.rows.known(), v.cols.known()) {
                (Some(r), Some(c)) => shapes.push((r, c)),
                _ => return Ok(AbsVal::top(Dim::Any, Dim::Any)),
            }
        }
        match self.infer_shape(&shapes)? {
            Some((r, c)) => Ok(AbsVal::top(Dim::Const(r), Dim::Const(c))),
            None => Ok(AbsVal::top(Dim::Any, Dim::Any)),
        }
    }
}

/// Leaf op for constants / external inputs: no gradient flows past it.
struct InputOp;
impl Op for InputOp {
    fn backward(&self, _: &Matrix, _: &Matrix, _: &[&Matrix]) -> Vec<Option<Matrix>> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "input"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(0)
    }
    fn infer_shape(&self, _: &[(usize, usize)]) -> Result<Option<(usize, usize)>, String> {
        Ok(None)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE // backward is never invoked on leaves
    }
}

/// Leaf op for trainable parameters; the backward driver routes the
/// accumulated gradient into [`Gradients`].
struct ParamOp;
impl Op for ParamOp {
    fn backward(&self, _: &Matrix, _: &Matrix, _: &[&Matrix]) -> Vec<Option<Matrix>> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "param"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(0)
    }
    fn infer_shape(&self, _: &[(usize, usize)]) -> Result<Option<(usize, usize)>, String> {
        Ok(None)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE // backward is never invoked on leaves
    }
}

pub(crate) struct Node {
    pub(crate) value: Arc<Matrix>,
    pub(crate) op: Box<dyn Op>,
    pub(crate) inputs: Vec<Tensor>,
    /// `Some` when this node is a parameter leaf.
    pub(crate) param: Option<ParamId>,
}

/// A single forward computation, recorded for reverse-mode differentiation.
///
/// Intermediate values are drawn from the thread-local [`crate::pool`] and
/// flow back into it when the tape is dropped, so the rebuild-every-step
/// idiom settles into zero steady-state allocation.
pub struct Tape {
    nodes: Vec<Node>,
    rng: StdRng,
    /// Pool counters at construction, so audits and telemetry can report
    /// per-tape activity instead of process-lifetime accumulation.
    pool_at_birth: pool::PoolStats,
}

impl Drop for Tape {
    fn drop(&mut self) {
        if sane_telemetry::active() {
            let resident: usize = self.nodes.iter().map(|n| n.value.len() * 4).sum();
            sane_telemetry::counter_add("tape.count", 1);
            sane_telemetry::counter_add("tape.ops", self.nodes.len() as u64);
            sane_telemetry::gauge_max("tape.peak_resident_bytes", resident as f64);
        }
        for node in self.nodes.drain(..) {
            // Values still shared (parameters in the `VarStore`, inputs or
            // outputs the caller kept an `Arc` to) fail the unwrap and drop
            // normally; everything tape-exclusive feeds the pool.
            if let Ok(value) = Arc::try_unwrap(node.value) {
                pool::put(value);
            }
        }
    }
}

impl Tape {
    /// Creates an empty tape. `seed` drives stochastic ops (dropout).
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::with_capacity(256),
            rng: StdRng::seed_from_u64(seed),
            pool_at_birth: pool::stats(),
        }
    }

    /// Buffer-pool activity attributable to this tape: counters since the
    /// tape was created (current pool contents stay absolute).
    pub fn pool_activity(&self) -> pool::PoolStats {
        pool::stats().since(&self.pool_at_birth)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records a constant (no gradient) from a shared matrix.
    ///
    /// Use this for large fixed inputs — node features, adjacency-derived
    /// data — so each training step shares one allocation.
    pub fn input(&mut self, value: Arc<Matrix>) -> Tensor {
        self.push(value, Box::new(InputOp), Vec::new(), None)
    }

    /// Records a constant (no gradient), taking ownership of the matrix.
    pub fn constant(&mut self, value: Matrix) -> Tensor {
        self.input(Arc::new(value))
    }

    /// Records a `1 x 1` constant.
    pub fn scalar(&mut self, value: f32) -> Tensor {
        self.constant(Matrix::scalar(value))
    }

    /// Records a trainable parameter from `store`.
    pub fn param(&mut self, store: &VarStore, id: ParamId) -> Tensor {
        let value = store.value_arc(id);
        self.push(value, Box::new(ParamOp), Vec::new(), Some(id))
    }

    /// The forward value of `t`.
    pub fn value(&self, t: Tensor) -> &Matrix {
        &self.nodes[t.0].value
    }

    /// Shared handle to the forward value of `t`.
    pub fn value_arc(&self, t: Tensor) -> Arc<Matrix> {
        Arc::clone(&self.nodes[t.0].value)
    }

    pub(crate) fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub(crate) fn push(
        &mut self,
        value: Arc<Matrix>,
        op: Box<dyn Op>,
        inputs: Vec<Tensor>,
        param: Option<ParamId>,
    ) -> Tensor {
        debug_assert!(inputs.iter().all(|t| t.0 < self.nodes.len()), "op wired to future tensor");
        self.nodes.push(Node { value, op, inputs, param });
        Tensor(self.nodes.len() - 1)
    }

    pub(crate) fn push_op(
        &mut self,
        value: Matrix,
        op: Box<dyn Op>,
        inputs: Vec<Tensor>,
    ) -> Tensor {
        self.push(Arc::new(value), op, inputs, None)
    }

    /// Reverse sweep from `output`, which must be scalar (`1 x 1`).
    ///
    /// Returns the gradients of all parameters reachable from `output`.
    ///
    /// # Panics
    /// Panics if `output` is not `1 x 1`.
    pub fn backward(&self, output: Tensor) -> Gradients {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward requires a scalar output, got {:?}",
            self.value(output).shape()
        );
        self.backward_seeded(output, Matrix::scalar(1.0))
    }

    /// Reverse sweep with an explicit seed gradient (same shape as `output`).
    pub fn backward_seeded(&self, output: Tensor, seed: Matrix) -> Gradients {
        crate::parallel::timed("tape_backward", || self.backward_seeded_inner(output, seed))
    }

    fn backward_seeded_inner(&self, output: Tensor, seed: Matrix) -> Gradients {
        assert_eq!(seed.shape(), self.value(output).shape(), "seed gradient shape mismatch");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[output.0] = Some(seed);
        let mut result = Gradients::default();

        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(pid) = node.param {
                result.accumulate(pid, grad);
                continue;
            }
            if node.inputs.is_empty() {
                // Constant/input leaf: the gradient stops here.
                pool::put(grad);
                continue;
            }
            let input_vals: Vec<&Matrix> = node.inputs.iter().map(|t| self.value(*t)).collect();
            let input_grads = node.op.backward(&node.value, &grad, &input_vals);
            assert_eq!(
                input_grads.len(),
                node.inputs.len(),
                "op `{}` returned {} gradients for {} inputs",
                node.op.name(),
                input_grads.len(),
                node.inputs.len()
            );
            for (t, g) in node.inputs.iter().zip(input_grads) {
                let Some(g) = g else { continue };
                assert_eq!(
                    g.shape(),
                    self.value(*t).shape(),
                    "op `{}` (node {i}) produced a gradient of the wrong shape \
                     for input node {}",
                    node.op.name(),
                    t.0
                );
                match &mut grads[t.0] {
                    Some(acc) => {
                        acc.add_assign(&g);
                        pool::put(g);
                    }
                    slot @ None => *slot = Some(g),
                }
            }
            // `grad` was fully distributed to the inputs; recycle it.
            pool::put(grad);
        }
        result
    }

    /// Reverse sweep with memory instrumentation and, optionally,
    /// plan-driven buffer release.
    ///
    /// With `plan: None` this is an instrumented [`Tape::backward`]: the
    /// same sweep, plus exact accounting of resident bytes (all forward
    /// values held by the tape, plus every gradient buffer in flight,
    /// including accumulated parameter gradients). With a verified
    /// [`MemPlan`], each non-pinned value is additionally *released* into
    /// the [`crate::pool`] the moment its planned interval closes — values
    /// dead before backward go first, the rest retire step by step — so
    /// backward gradient buffers are drawn from memory the forward pass no
    /// longer needs. Gradients are bitwise identical either way; the
    /// dataflow test suite pins that.
    ///
    /// Releasing swaps the node's value for an empty matrix, so the tape
    /// must not be read through [`Tape::value`] afterwards (dropping or
    /// re-auditing it is fine). Values the caller still holds an `Arc` to
    /// are skipped and keep counting as resident.
    ///
    /// # Panics
    /// Panics if `output` is not `1 x 1`, or if `plan` does not cover this
    /// tape's nodes.
    pub fn backward_measured(
        &mut self,
        output: Tensor,
        plan: Option<&MemPlan>,
    ) -> (Gradients, ExecStats) {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward requires a scalar output, got {:?}",
            self.value(output).shape()
        );
        let n = self.nodes.len();
        if let Some(plan) = plan {
            assert_eq!(plan.values.len(), n, "memory plan does not cover this tape");
        }

        // Planned release schedule: values whose last use predates the
        // backward sweep go before it; a value last used at backward time
        // `n + (n - 1 - j)` is released right after node j's step.
        let mut release_now: Vec<usize> = Vec::new();
        let mut release_after: Vec<Vec<usize>> = vec![Vec::new(); n];
        if let Some(plan) = plan {
            for (v, vp) in plan.values.iter().enumerate() {
                if vp.pinned || vp.len == 0 {
                    continue;
                }
                if vp.last_use < n {
                    release_now.push(v);
                } else if vp.last_use < 2 * n {
                    release_after[2 * n - 1 - vp.last_use].push(v);
                }
            }
        }

        let baseline_value_bytes: usize = self.nodes.iter().map(|nd| nd.value.len() * 4).sum();
        let mut value_bytes = baseline_value_bytes;
        let mut grad_bytes = 0usize;
        let mut released_values = 0usize;
        let mut released_bytes = 0usize;
        let mut peak = value_bytes;

        let release = |tape: &mut Tape, v: usize| {
            let husk = Arc::new(Matrix::from_vec(0, 0, Vec::new()));
            let old = std::mem::replace(&mut tape.nodes[v].value, husk);
            match Arc::try_unwrap(old) {
                Ok(m) => {
                    let bytes = m.len() * 4;
                    pool::put(m);
                    Some(bytes)
                }
                // The caller kept a handle; the buffer stays resident.
                Err(arc) => {
                    tape.nodes[v].value = arc;
                    None
                }
            }
        };
        for &v in &release_now {
            if let Some(bytes) = release(self, v) {
                value_bytes -= bytes;
                released_values += 1;
                released_bytes += bytes;
            }
        }

        let seed = Matrix::scalar(1.0);
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grad_bytes += seed.len() * 4;
        grads[output.0] = Some(seed);
        peak = peak.max(value_bytes + grad_bytes);
        let mut result = Gradients::default();

        for i in (0..n).rev() {
            if let Some(grad) = grads[i].take() {
                let node = &self.nodes[i];
                if let Some(pid) = node.param {
                    // Merging into an existing accumulator recycles `grad`;
                    // a fresh slot keeps it resident until the caller is
                    // done with the gradient set.
                    let existing = result.get(pid).is_some();
                    let bytes = grad.len() * 4;
                    result.accumulate(pid, grad);
                    if existing {
                        grad_bytes -= bytes;
                    }
                } else if node.inputs.is_empty() {
                    grad_bytes -= grad.len() * 4;
                    pool::put(grad);
                } else {
                    let input_vals: Vec<&Matrix> =
                        node.inputs.iter().map(|t| &*self.nodes[t.0].value).collect();
                    let input_grads = node.op.backward(&node.value, &grad, &input_vals);
                    assert_eq!(
                        input_grads.len(),
                        node.inputs.len(),
                        "op `{}` returned {} gradients for {} inputs",
                        node.op.name(),
                        input_grads.len(),
                        node.inputs.len()
                    );
                    for (t, g) in node.inputs.iter().zip(input_grads) {
                        let Some(g) = g else { continue };
                        // Released inputs have lost their shape; the plan
                        // remembers what was recorded.
                        let expected = match plan {
                            Some(p) => p.values[t.0].shape,
                            None => self.nodes[t.0].value.shape(),
                        };
                        assert_eq!(
                            g.shape(),
                            expected,
                            "op `{}` (node {i}) produced a gradient of the wrong \
                             shape for input node {}",
                            node.op.name(),
                            t.0
                        );
                        match &mut grads[t.0] {
                            Some(acc) => {
                                acc.add_assign(&g);
                                pool::put(g);
                            }
                            slot @ None => {
                                grad_bytes += g.len() * 4;
                                *slot = Some(g);
                            }
                        }
                    }
                    grad_bytes -= grad.len() * 4;
                    pool::put(grad);
                }
            }
            if plan.is_some() {
                // Take the list to end the borrow of `release_after`
                // before mutating `self`.
                let due = std::mem::take(&mut release_after[i]);
                for v in due {
                    if let Some(bytes) = release(self, v) {
                        value_bytes -= bytes;
                        released_values += 1;
                        released_bytes += bytes;
                    }
                }
            }
            peak = peak.max(value_bytes + grad_bytes);
        }

        if sane_telemetry::active() {
            sane_telemetry::gauge_max("dataflow.actual_peak_bytes", peak as f64);
            sane_telemetry::counter_add("dataflow.released_bytes", released_bytes as u64);
        }
        let stats = ExecStats {
            peak_resident_bytes: peak,
            baseline_value_bytes,
            released_values,
            released_bytes,
        };
        (result, stats)
    }
}

/// Memory accounting from one [`Tape::backward_measured`] sweep.
#[derive(Clone, Copy, Debug)]
pub struct ExecStats {
    /// Max over the sweep of (forward values still held) + (gradient
    /// buffers in flight, including accumulated parameter gradients).
    pub peak_resident_bytes: usize,
    /// Bytes of forward values held when the sweep started — what an
    /// unplanned tape keeps resident throughout.
    pub baseline_value_bytes: usize,
    /// Values released into the pool under the plan.
    pub released_values: usize,
    /// Bytes those releases returned to the pool.
    pub released_bytes: usize,
}

/// Gradients of one backward sweep, keyed by [`ParamId`].
#[derive(Default)]
pub struct Gradients {
    slots: Vec<Option<Matrix>>,
}

impl Gradients {
    fn accumulate(&mut self, id: ParamId, grad: Matrix) {
        if self.slots.len() <= id.0 {
            self.slots.resize_with(id.0 + 1, || None);
        }
        match &mut self.slots[id.0] {
            Some(acc) => {
                acc.add_assign(&grad);
                pool::put(grad);
            }
            slot @ None => *slot = Some(grad),
        }
    }

    /// Gradient for `id`, if the parameter participated in the computation.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.slots.get(id.0).and_then(|s| s.as_ref())
    }

    /// Merges another gradient set into this one (summing overlaps).
    pub fn merge(&mut self, other: Gradients) {
        for (i, slot) in other.slots.into_iter().enumerate() {
            if let Some(g) = slot {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Adds `scale * other` into this gradient set (missing slots on either
    /// side are treated as zero). Used by the second-order bi-level update.
    pub fn add_scaled(&mut self, other: &Gradients, scale: f32) {
        for (id, g) in other.iter() {
            let mut scaled = pool::clone_of(g);
            scaled.scale_inplace(scale);
            self.accumulate(id, scaled);
        }
    }

    /// Joint L2 norm restricted to the given parameters.
    pub fn l2_norm_subset(&self, ids: &[ParamId]) -> f32 {
        let mut sq = 0.0f32;
        for &id in ids {
            if let Some(g) = self.get(id) {
                sq += g.data().iter().map(|v| v * v).sum::<f32>();
            }
        }
        sq.sqrt()
    }

    /// Global gradient-norm clipping: scales all gradients so the joint
    /// L2 norm does not exceed `max_norm`. Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let mut sq = 0.0f32;
        for slot in self.slots.iter().flatten() {
            sq += slot.data().iter().map(|v| v * v).sum::<f32>();
        }
        let norm = sq.sqrt();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for slot in self.slots.iter_mut().flatten() {
                slot.scale_inplace(s);
            }
        }
        norm
    }

    /// True if no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Iterates over `(id, grad)` pairs that received gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|g| (ParamId(i), g)))
    }

    /// Consumes the gradient set, returning its buffers to the thread-local
    /// pool. Call after the optimiser step; skipping it only costs fresh
    /// allocations on the next backward sweep.
    pub fn recycle(self) {
        for slot in self.slots.into_iter().flatten() {
            pool::put(slot);
        }
    }
}

struct Slot {
    value: Arc<Matrix>,
    name: String,
}

/// Storage for trainable parameters, shared across training steps.
///
/// Values are held behind `Arc` so recording a parameter on a tape is a
/// reference-count bump, not a copy; optimizers mutate through
/// [`Arc::make_mut`] once the step's tapes are dropped.
#[derive(Default)]
pub struct VarStore {
    slots: Vec<Slot>,
}

impl VarStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value. Names are for debugging
    /// and need not be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.slots.push(Slot { value: Arc::new(value), name: name.into() });
        ParamId(self.slots.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    pub(crate) fn value_arc(&self, id: ParamId) -> Arc<Matrix> {
        Arc::clone(&self.slots[id.0].value)
    }

    /// Mutable access to a parameter's value (clones on write if a tape still
    /// holds the value).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        Arc::make_mut(&mut self.slots[id.0].value)
    }

    /// Replaces a parameter's value (shape may change; used when re-deriving
    /// architectures with different hidden sizes is *not* desired — prefer a
    /// fresh store for that).
    pub fn set(&mut self, id: ParamId, value: Matrix) {
        self.slots[id.0].value = Arc::new(value);
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.slots.len()).map(ParamId)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Deep snapshot of every parameter value (for retrain-from-best logic).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.slots.iter().map(|s| (*s.value).clone()).collect()
    }

    /// Restores a snapshot taken with [`VarStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.slots.len(), "snapshot/store length mismatch");
        for (slot, value) in self.slots.iter_mut().zip(snapshot) {
            assert_eq!(
                slot.value.shape(),
                value.shape(),
                "snapshot shape mismatch for {}",
                slot.name
            );
            slot.value = Arc::new(value.clone());
        }
    }

    /// Re-initialises every parameter with `f(name, current) -> new`.
    pub fn reinit(&mut self, mut f: impl FnMut(&str, &Matrix) -> Matrix) {
        for slot in &mut self.slots {
            let new = f(&slot.name, &slot.value);
            assert_eq!(new.shape(), slot.value.shape(), "reinit changed shape of {}", slot.name);
            slot.value = Arc::new(new);
        }
    }
}

/// Fills a matrix with i.i.d. uniform values in `[-bound, bound]`.
pub fn uniform_init(rows: usize, cols: usize, bound: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// Glorot/Xavier uniform initialisation for a `rows x cols` weight.
pub fn glorot_init(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform_init(rows, cols, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_value_roundtrip() {
        let mut tape = Tape::new(0);
        let t = tape.constant(Matrix::scalar(3.0));
        assert_eq!(tape.value(t).as_scalar(), 3.0);
    }

    #[test]
    fn param_gradient_of_identity() {
        let mut store = VarStore::new();
        let p = store.add("w", Matrix::scalar(2.0));
        let mut tape = Tape::new(0);
        let t = tape.param(&store, p);
        let grads = tape.backward(t);
        assert_eq!(grads.get(p).unwrap().as_scalar(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new(0);
        let t = tape.constant(Matrix::zeros(2, 2));
        let _ = tape.backward(t);
    }

    #[test]
    fn gradients_merge_sums_overlaps() {
        let mut a = Gradients::default();
        a.accumulate(ParamId(0), Matrix::scalar(1.0));
        let mut b = Gradients::default();
        b.accumulate(ParamId(0), Matrix::scalar(2.0));
        b.accumulate(ParamId(2), Matrix::scalar(5.0));
        a.merge(b);
        assert_eq!(a.get(ParamId(0)).unwrap().as_scalar(), 3.0);
        assert_eq!(a.get(ParamId(2)).unwrap().as_scalar(), 5.0);
        assert!(a.get(ParamId(1)).is_none());
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let mut g = Gradients::default();
        g.accumulate(ParamId(0), Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let norm = g.clip_global_norm(1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped = g.get(ParamId(0)).unwrap();
        assert!((clipped.frob_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn varstore_snapshot_restore() {
        let mut store = VarStore::new();
        let p = store.add("w", Matrix::scalar(1.0));
        let snap = store.snapshot();
        store.value_mut(p).data_mut()[0] = 9.0;
        store.restore(&snap);
        assert_eq!(store.value(p).as_scalar(), 1.0);
    }

    #[test]
    fn glorot_bound_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_init(30, 50, &mut rng);
        let bound = (6.0 / 80.0f32).sqrt();
        assert!(w.max_abs() <= bound + 1e-6);
        assert!(w.max_abs() > bound * 0.5, "suspiciously small init");
    }
}
