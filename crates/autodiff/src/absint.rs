//! Abstract interpretation over recorded tapes.
//!
//! Every [`crate::Tape`] node gets an abstract value — an [`AbsVal`] of
//! shape (with symbolic dims for node/edge counts), value interval, derived
//! sign, and NaN/Inf-freedom — propagated through the op registry via the
//! per-op [`Op::transfer`] functions declared alongside each op's
//! `GradReads` contract. The analysis runs to a fixed point over the DAG;
//! because the Wengert list is topologically ordered the fixed point is
//! reached in one sweep plus one confirming pass, but the driver iterates
//! until stability so the invariant is checked, not assumed.
//!
//! Two clients consume the pass:
//!
//! * [`Tape::absint`] analyses a recorded tape from its concrete leaf
//!   values and cross-checks every abstract value against the concrete
//!   matrix stored on the node — a transfer function that fails to
//!   over-approximate its own op is reported, not trusted. The result
//!   feeds [`crate::TapeReport`] via `Tape::audit_with_absint`.
//! * [`Tape::absint_assuming`] substitutes caller-provided abstract values
//!   (symbolic shapes, declared intervals) at chosen nodes; the
//!   rewrite-soundness checker in [`crate::rewrite`] uses this to compare
//!   an original subgraph against its replacement over *all* inputs in a
//!   domain, not just one fixture.
//!
//! Segment ops carry their boundary invariants through the transfer
//! functions: offsets are sorted and covering by [`Segments`] construction,
//! coverage of the value rows is re-checked whenever the row count is
//! concrete, and empty segments force every reduction interval to include
//! zero.

use crate::tape::{Tape, Tensor};
use crate::Matrix;

/// A tensor dimension: concrete, symbolic (named, e.g. `"N"` nodes or
/// `"E"` edges), or unknown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dim {
    /// A concrete extent.
    Const(usize),
    /// A named symbolic extent; two symbolic dims are equal iff their
    /// names are equal.
    Sym(&'static str),
    /// Unknown extent (top): compatible with everything, provably equal
    /// to nothing.
    Any,
}

impl Dim {
    /// The concrete extent, if this dim is constant.
    pub fn known(self) -> Option<usize> {
        match self {
            Dim::Const(n) => Some(n),
            Dim::Sym(_) | Dim::Any => None,
        }
    }

    /// True when the two dims *could* denote the same extent. `Any` is
    /// compatible with everything; a symbol is compatible with any
    /// constant (it may be instantiated to it).
    pub fn compatible(self, other: Dim) -> bool {
        match (self, other) {
            (Dim::Const(a), Dim::Const(b)) => a == b,
            (Dim::Sym(a), Dim::Sym(b)) => a == b,
            _ => true,
        }
    }

    /// True when the two dims *provably* denote the same extent.
    pub fn provably_equal(self, other: Dim) -> bool {
        match (self, other) {
            (Dim::Const(a), Dim::Const(b)) => a == b,
            (Dim::Sym(a), Dim::Sym(b)) => a == b,
            _ => false,
        }
    }

    /// Join for the fixed point: equal dims survive, disagreement widens
    /// to `Any`.
    pub fn join(self, other: Dim) -> Dim {
        if self.provably_equal(other) {
            self
        } else {
            Dim::Any
        }
    }

    fn describe(self) -> String {
        match self {
            Dim::Const(n) => n.to_string(),
            Dim::Sym(s) => s.to_string(),
            Dim::Any => "?".to_string(),
        }
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Requires two dims to be compatible, for transfer-function contracts.
pub(crate) fn require_compatible(what: &str, a: Dim, b: Dim) -> Result<(), String> {
    if a.compatible(b) {
        Ok(())
    } else {
        Err(format!("{what}: {a} vs {b}"))
    }
}

/// Sign abstraction, derived from the interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
    /// Strictly negative.
    Negative,
    /// Zero or positive.
    NonNegative,
    /// Zero or negative.
    NonPositive,
    /// Both signs possible.
    Unknown,
}

/// A closed interval of non-NaN values. Infinite bounds mean "unbounded on
/// that side"; whether actual infinities occur is tracked separately by
/// [`AbsVal::inf_free`]. NaN never belongs to an interval —
/// [`AbsVal::nan_free`] carries that bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive; `-inf` = unbounded below).
    pub lo: f32,
    /// Upper bound (inclusive; `+inf` = unbounded above).
    pub hi: f32,
}

impl Interval {
    /// The unbounded interval.
    pub const TOP: Interval = Interval { lo: f32::NEG_INFINITY, hi: f32::INFINITY };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics on NaN bounds or `lo > hi`.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bounds must not be NaN");
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: f32) -> Self {
        Self::new(v, v)
    }

    /// True when both bounds are finite.
    pub fn is_finite(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// True when `v` lies inside (NaN is never contained).
    pub fn contains(self, v: f32) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// True when every value of `self` lies inside `outer`.
    pub fn subset_of(self, outer: Interval) -> bool {
        self.lo >= outer.lo && self.hi <= outer.hi
    }

    /// The smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Widens to include zero (the value every empty-segment reduction
    /// produces).
    pub fn hull_with_zero(self) -> Interval {
        Interval { lo: self.lo.min(0.0), hi: self.hi.max(0.0) }
    }

    /// Interval sum.
    #[allow(clippy::should_implement_trait)] // interval combinator, not operator overloading
    pub fn add(self, other: Interval) -> Interval {
        Self::from_corners(&[self.lo + other.lo, self.hi + other.hi])
    }

    /// Interval difference.
    #[allow(clippy::should_implement_trait)] // interval combinator, not operator overloading
    pub fn sub(self, other: Interval) -> Interval {
        Self::from_corners(&[self.lo - other.hi, self.hi - other.lo])
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // interval combinator, not operator overloading
    pub fn neg(self) -> Interval {
        Interval { lo: -self.hi, hi: -self.lo }
    }

    /// Four-corner interval product. Indeterminate corners (`0 * inf`)
    /// widen to [`Interval::TOP`].
    #[allow(clippy::should_implement_trait)] // interval combinator, not operator overloading
    pub fn mul(self, other: Interval) -> Interval {
        Self::from_corners(&[
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ])
    }

    /// Product with a constant.
    pub fn scale(self, c: f32) -> Interval {
        if c == 0.0 {
            // 0 * x = 0 for every non-NaN finite x; 0 * inf is NaN, which
            // intervals never describe — `nan_free` handles that case.
            return Interval::point(0.0);
        }
        self.mul(Interval::point(c))
    }

    /// Absolute value.
    pub fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }

    /// The interval of a sum of `count` terms, each drawn from `self`.
    /// A symbolic/unknown count keeps the bound's sign but loses its
    /// magnitude; a count of zero terms produces exactly zero.
    pub fn sum_of(self, count: Dim) -> Interval {
        match count.known() {
            Some(0) => Interval::point(0.0),
            Some(k) => {
                let k = k as f32; // lint:allow(lossy-cast) -- term counts are far below 2^24
                Self::from_corners(&[k * self.lo, k * self.hi])
            }
            None => Interval {
                lo: if self.lo >= 0.0 { 0.0 } else { f32::NEG_INFINITY },
                hi: if self.hi <= 0.0 { 0.0 } else { f32::INFINITY },
            },
        }
    }

    /// Derived sign.
    pub fn sign(self) -> Sign {
        if self.lo == 0.0 && self.hi == 0.0 {
            Sign::Zero
        } else if self.lo > 0.0 {
            Sign::Positive
        } else if self.hi < 0.0 {
            Sign::Negative
        } else if self.lo >= 0.0 {
            Sign::NonNegative
        } else if self.hi <= 0.0 {
            Sign::NonPositive
        } else {
            Sign::Unknown
        }
    }

    /// Builds the hull of raw corner values; any NaN corner (an
    /// indeterminate form such as `0 * inf`) widens to [`Interval::TOP`].
    fn from_corners(corners: &[f32]) -> Interval {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &c in corners {
            if c.is_nan() {
                return Interval::TOP;
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The abstract value of one tape node: shape, interval, NaN/Inf-freedom.
/// Sign is derived from the interval via [`AbsVal::sign`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbsVal {
    /// Row extent.
    pub rows: Dim,
    /// Column extent.
    pub cols: Dim,
    /// Hull of every non-NaN entry the value can hold.
    pub range: Interval,
    /// Proven free of NaN entries.
    pub nan_free: bool,
    /// Proven free of `±inf` entries.
    pub inf_free: bool,
}

impl AbsVal {
    /// The least-informative value of a given shape.
    pub fn top(rows: Dim, cols: Dim) -> Self {
        Self { rows, cols, range: Interval::TOP, nan_free: false, inf_free: false }
    }

    /// A proven-finite value in `[lo, hi]`.
    pub fn finite(rows: Dim, cols: Dim, lo: f32, hi: f32) -> Self {
        Self { rows, cols, range: Interval::new(lo, hi), nan_free: true, inf_free: true }
    }

    /// The exact abstraction of a concrete matrix: tight interval over the
    /// non-NaN entries, NaN/Inf flags from a full scan. An empty matrix
    /// abstracts to the point `[0, 0]` (vacuously sound).
    pub fn from_matrix(m: &Matrix) -> Self {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let mut nan_free = true;
        let mut inf_free = true;
        for &v in m.data() {
            if v.is_nan() {
                nan_free = false;
            } else {
                lo = lo.min(v);
                hi = hi.max(v);
                if v.is_infinite() {
                    inf_free = false;
                }
            }
        }
        let range = if lo <= hi { Interval::new(lo, hi) } else { Interval::point(0.0) };
        Self { rows: Dim::Const(m.rows()), cols: Dim::Const(m.cols()), range, nan_free, inf_free }
    }

    /// Derived sign of the interval.
    pub fn sign(&self) -> Sign {
        self.range.sign()
    }

    /// Least upper bound; shapes join dimension-wise, flags conjoin.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            rows: self.rows.join(other.rows),
            cols: self.cols.join(other.cols),
            range: self.range.join(other.range),
            nan_free: self.nan_free && other.nan_free,
            inf_free: self.inf_free && other.inf_free,
        }
    }

    /// Checks that this abstract value admits the concrete matrix: shape
    /// compatible, every non-NaN entry inside the interval, and no
    /// NaN/Inf entry where freedom was claimed.
    pub fn over_approximates(&self, m: &Matrix) -> Result<(), String> {
        if !self.rows.compatible(Dim::Const(m.rows()))
            || !self.cols.compatible(Dim::Const(m.cols()))
        {
            return Err(format!(
                "abstract shape {}x{} excludes concrete {}x{}",
                self.rows,
                self.cols,
                m.rows(),
                m.cols()
            ));
        }
        for (i, &v) in m.data().iter().enumerate() {
            if v.is_nan() {
                if self.nan_free {
                    return Err(format!("claimed nan-free but entry {i} is NaN"));
                }
                continue;
            }
            if v.is_infinite() && self.inf_free {
                return Err(format!("claimed inf-free but entry {i} is {v}"));
            }
            if !self.range.contains(v) {
                return Err(format!("entry {i} = {v} escapes {}", self.range));
            }
        }
        Ok(())
    }

    /// Convenience for unary identity-shaped transfers: keeps the shape,
    /// replaces the value facts.
    pub(crate) fn with_range(&self, range: Interval, nan_free: bool, inf_free: bool) -> AbsVal {
        AbsVal { rows: self.rows, cols: self.cols, range, nan_free, inf_free }
    }
}

impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} {}{}{}",
            self.rows,
            self.cols,
            self.range,
            if self.nan_free { "" } else { " nan?" },
            if self.inf_free { "" } else { " inf?" },
        )
    }
}

// ---------------------------------------------------------------------------
// Shared transfer-function helpers used by the op registry.
// ---------------------------------------------------------------------------

/// Transfer for binary elementwise ops: shapes must agree, value facts come
/// from `range`, and the NaN/Inf conclusions are supplied by the op.
pub(crate) fn binary_elementwise(
    name: &str,
    a: &AbsVal,
    b: &AbsVal,
    range: Interval,
    nan_free: bool,
    inf_free: bool,
) -> Result<AbsVal, String> {
    require_compatible(&format!("{name}: row mismatch"), a.rows, b.rows)?;
    require_compatible(&format!("{name}: col mismatch"), a.cols, b.cols)?;
    Ok(AbsVal { rows: a.rows.join2(b.rows), cols: a.cols.join2(b.cols), range, nan_free, inf_free })
}

impl Dim {
    /// Picks the more informative of two compatible dims (a constant or
    /// symbol beats `Any`).
    pub(crate) fn join2(self, other: Dim) -> Dim {
        match (self, other) {
            (Dim::Any, d) => d,
            (d, _) => d,
        }
    }
}

/// `inf_free` conclusion for an arithmetic result: inputs must be finite
/// and the computed interval must not have overflowed to an infinite bound.
pub(crate) fn finite_arith(range: Interval, inputs: &[&AbsVal]) -> bool {
    inputs.iter().all(|v| v.inf_free) && range.is_finite()
}

/// `nan_free` conclusion for an addition/subtraction: `inf - inf` is the
/// only NaN-producing form, so it suffices that either side is inf-free.
pub(crate) fn nan_free_addsub(a: &AbsVal, b: &AbsVal) -> bool {
    a.nan_free && b.nan_free && (a.inf_free || b.inf_free)
}

/// `nan_free` conclusion for a product: `0 * inf` is the NaN-producing
/// form — possible only when one side may be infinite while the other
/// may be zero.
pub(crate) fn nan_free_mul(a: &AbsVal, b: &AbsVal) -> bool {
    let zero_times_inf =
        (!a.inf_free && b.range.contains(0.0)) || (!b.inf_free && a.range.contains(0.0));
    a.nan_free && b.nan_free && !zero_times_inf
}

// ---------------------------------------------------------------------------
// The analysis driver.
// ---------------------------------------------------------------------------

/// One transfer-function failure: the op's declared contract rejected its
/// abstract inputs, or the abstract value failed to admit the concrete one.
#[derive(Clone, Debug)]
pub struct AbsViolation {
    /// Tape index of the offending node.
    pub node: usize,
    /// Op name.
    pub op: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AbsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} ({}): {}", self.node, self.op, self.message)
    }
}

/// Counters of one analysis run, embedded in [`crate::TapeReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AbsSummary {
    /// Nodes analysed.
    pub analyzed: usize,
    /// Transfer/over-approximation failures.
    pub violations: usize,
    /// Non-leaf nodes whose abstract shape stayed unknown.
    pub unknown_shapes: usize,
    /// Fixed-point sweeps until stability.
    pub iterations: usize,
}

impl std::fmt::Display for AbsSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} node(s) analyzed, {} violation(s), {} unknown shape(s), \
             fixed point in {} sweep(s)",
            self.analyzed, self.violations, self.unknown_shapes, self.iterations
        )
    }
}

/// The result of one abstract-interpretation pass.
#[derive(Debug)]
pub struct AbsReport {
    /// Per-node abstract values, indexed like the tape.
    pub values: Vec<AbsVal>,
    /// Contract violations found during the stable sweep.
    pub violations: Vec<AbsViolation>,
    /// Non-leaf nodes whose shape could not be inferred.
    pub unknown_shapes: Vec<usize>,
    /// Sweeps until the fixed point was confirmed.
    pub iterations: usize,
}

impl AbsReport {
    /// The abstract value of a tensor.
    pub fn value(&self, t: Tensor) -> &AbsVal {
        &self.values[t.index()]
    }

    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The embedded-report summary.
    pub fn summary(&self) -> AbsSummary {
        AbsSummary {
            analyzed: self.values.len(),
            violations: self.violations.len(),
            unknown_shapes: self.unknown_shapes.len(),
            iterations: self.iterations,
        }
    }
}

impl Tape {
    /// Runs the abstract interpreter from the tape's concrete leaf values
    /// and cross-checks every abstract value against the concrete matrix
    /// recorded on its node.
    pub fn absint(&self) -> AbsReport {
        self.absint_assuming(&[])
    }

    /// Runs the abstract interpreter with caller-supplied abstract values
    /// pinned at the given tensors (normally leaves). Pinned nodes are
    /// never recomputed; everything else flows through the per-op transfer
    /// functions. With a non-empty assumption set the concrete
    /// cross-check is skipped — the recorded values are one sample of the
    /// assumed domain, not its bound.
    pub fn absint_assuming(&self, assumptions: &[(Tensor, AbsVal)]) -> AbsReport {
        let n = self.len();
        let mut pinned = vec![false; n];
        let mut values: Vec<AbsVal> = (0..n)
            .map(|i| {
                let node = self.node(i);
                AbsVal::from_matrix(&node.value)
            })
            .collect();
        for (t, v) in assumptions {
            values[t.index()] = *v;
            pinned[t.index()] = true;
        }

        let mut violations = Vec::new();
        let mut iterations = 0usize;
        // The Wengert list is topologically ordered, so one sweep reaches
        // the fixed point; the loop re-sweeps until nothing changes to
        // *check* that property rather than assume it, and is bounded by
        // the node count as a backstop.
        loop {
            iterations += 1;
            violations.clear();
            let mut changed = false;
            for i in 0..n {
                let node = self.node(i);
                if pinned[i] || node.inputs.is_empty() {
                    continue;
                }
                let ins: Vec<AbsVal> = node.inputs.iter().map(|t| values[t.index()]).collect();
                let next = match node.op.transfer(&ins) {
                    Ok(v) => v,
                    Err(message) => {
                        violations.push(AbsViolation { node: i, op: node.op.name(), message });
                        // Fall back to the concrete shape with unknown
                        // values so downstream nodes stay analysable.
                        AbsVal::top(Dim::Const(node.value.rows()), Dim::Const(node.value.cols()))
                    }
                };
                if next != values[i] {
                    values[i] = next;
                    changed = true;
                }
            }
            if !changed || iterations > n + 1 {
                break;
            }
        }

        if assumptions.is_empty() {
            for (i, val) in values.iter().enumerate() {
                let node = self.node(i);
                if let Err(message) = val.over_approximates(&node.value) {
                    violations.push(AbsViolation { node: i, op: node.op.name(), message });
                }
            }
        }

        let unknown_shapes: Vec<usize> = (0..n)
            .filter(|&i| {
                !self.node(i).inputs.is_empty()
                    && (values[i].rows == Dim::Any || values[i].cols == Dim::Any)
            })
            .collect();

        AbsReport { values, violations, unknown_shapes, iterations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mat(rows: usize, cols: usize, f: impl FnMut(usize) -> f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(f).collect())
    }

    #[test]
    fn interval_arithmetic_corners() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(1.0, 4.0);
        assert_eq!(a.add(b), Interval::new(-1.0, 7.0));
        assert_eq!(a.sub(b), Interval::new(-6.0, 2.0));
        assert_eq!(a.mul(b), Interval::new(-8.0, 12.0));
        assert_eq!(a.neg(), Interval::new(-3.0, 2.0));
        assert_eq!(a.abs(), Interval::new(0.0, 3.0));
        assert_eq!(a.scale(0.0), Interval::point(0.0));
        assert_eq!(Interval::TOP.mul(Interval::point(0.0)), Interval::TOP);
    }

    #[test]
    fn interval_sum_of_counts() {
        let p = Interval::new(0.5, 2.0);
        assert_eq!(p.sum_of(Dim::Const(3)), Interval::new(1.5, 6.0));
        assert_eq!(p.sum_of(Dim::Const(0)), Interval::point(0.0));
        let s = p.sum_of(Dim::Sym("N"));
        assert_eq!(s.lo, 0.0);
        assert_eq!(s.hi, f32::INFINITY);
    }

    #[test]
    fn signs_derive_from_intervals() {
        assert_eq!(Interval::point(0.0).sign(), Sign::Zero);
        assert_eq!(Interval::new(0.5, 2.0).sign(), Sign::Positive);
        assert_eq!(Interval::new(-2.0, -0.5).sign(), Sign::Negative);
        assert_eq!(Interval::new(0.0, 2.0).sign(), Sign::NonNegative);
        assert_eq!(Interval::new(-2.0, 0.0).sign(), Sign::NonPositive);
        assert_eq!(Interval::new(-1.0, 1.0).sign(), Sign::Unknown);
    }

    #[test]
    fn from_matrix_is_tight_and_flags_specials() {
        let m = Matrix::from_vec(2, 2, vec![1.0, -3.0, f32::INFINITY, 2.0]);
        let v = AbsVal::from_matrix(&m);
        assert_eq!(v.range.lo, -3.0);
        assert_eq!(v.range.hi, f32::INFINITY);
        assert!(v.nan_free);
        assert!(!v.inf_free);
        assert!(v.over_approximates(&m).is_ok());
    }

    #[test]
    fn over_approximation_rejects_escapes() {
        let v = AbsVal::finite(Dim::Const(1), Dim::Const(2), 0.0, 1.0);
        let inside = Matrix::from_vec(1, 2, vec![0.25, 1.0]);
        let outside = Matrix::from_vec(1, 2, vec![0.25, 1.5]);
        let nan = Matrix::from_vec(1, 2, vec![0.25, f32::NAN]);
        assert!(v.over_approximates(&inside).is_ok());
        assert!(v.over_approximates(&outside).is_err());
        assert!(v.over_approximates(&nan).is_err());
    }

    #[test]
    fn concrete_tape_analysis_is_clean_and_tracks_ranges() {
        let mut tape = Tape::new(0);
        let x = tape.constant(mat(3, 2, |i| {
            i as f32 - 2.0 // lint:allow(lossy-cast) -- tiny test indices
        }));
        let r = tape.relu(x);
        let s = tape.sigmoid(r);
        let out = tape.sum_all(s);
        let report = tape.absint();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.value(r).range.lo >= 0.0);
        let sv = report.value(s);
        assert!(sv.range.subset_of(Interval::new(0.0, 1.0)));
        assert!(sv.nan_free && sv.inf_free);
        assert!(report.value(out).nan_free);
        assert!(report.unknown_shapes.is_empty());
        // Topological order: fixed point confirmed on the second sweep.
        assert_eq!(report.iterations, 2);
    }

    #[test]
    fn assumed_symbolic_dims_flow_through() {
        let mut tape = Tape::new(0);
        let x = tape.constant(mat(4, 3, |_| 0.5));
        let y = tape.relu(x);
        let assumed = AbsVal::finite(Dim::Sym("N"), Dim::Const(3), -1.0, 1.0);
        let report = tape.absint_assuming(&[(x, assumed)]);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        let yv = report.value(y);
        assert_eq!(yv.rows, Dim::Sym("N"));
        assert_eq!(yv.range, Interval::new(0.0, 1.0));
    }

    /// Property harness: the abstract transfer of an op must over-
    /// approximate 256 random concrete executions drawn from the declared
    /// input domains.
    fn assert_over_approximates(
        domains: &[(usize, usize, Interval)],
        record: impl Fn(&mut Tape, &[Tensor]) -> Tensor,
    ) {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        // Abstract result, computed once from the declared domains.
        let mut probe = Tape::new(0);
        let probe_inputs: Vec<Tensor> = domains
            .iter()
            .map(|&(r, c, iv)| {
                probe.constant(mat(r, c, |_| (0.5 * (iv.lo + iv.hi)).clamp(iv.lo, iv.hi)))
            })
            .collect();
        let probe_out = record(&mut probe, &probe_inputs);
        let assumptions: Vec<(Tensor, AbsVal)> = probe_inputs
            .iter()
            .zip(domains)
            .map(|(&t, &(r, c, iv))| {
                (t, AbsVal::finite(Dim::Const(r), Dim::Const(c), iv.lo, iv.hi))
            })
            .collect();
        let abs = probe.absint_assuming(&assumptions);
        assert!(abs.is_clean(), "abstract eval failed: {:?}", abs.violations);
        let abs_out = *abs.value(probe_out);

        for run in 0..256 {
            let mut tape = Tape::new(run);
            let inputs: Vec<Tensor> = domains
                .iter()
                .map(|&(r, c, iv)| tape.constant(mat(r, c, |_| rng.gen_range(iv.lo..=iv.hi))))
                .collect();
            let out = record(&mut tape, &inputs);
            let concrete = tape.value(out).clone();
            abs_out
                .over_approximates(&concrete)
                .unwrap_or_else(|e| panic!("run {run}: {e}; abstract {abs_out}"));
        }
    }

    #[test]
    fn transfer_over_approximates_add_sub_mul() {
        let d = [(3, 2, Interval::new(-2.0, 2.0)), (3, 2, Interval::new(-1.0, 3.0))];
        assert_over_approximates(&d, |t, i| t.add(i[0], i[1]));
        assert_over_approximates(&d, |t, i| t.sub(i[0], i[1]));
        assert_over_approximates(&d, |t, i| t.mul(i[0], i[1]));
    }

    #[test]
    fn transfer_over_approximates_unary_activations() {
        let d = [(4, 3, Interval::new(-3.0, 3.0))];
        assert_over_approximates(&d, |t, i| t.relu(i[0]));
        assert_over_approximates(&d, |t, i| t.leaky_relu(i[0], 0.2));
        assert_over_approximates(&d, |t, i| t.elu(i[0]));
        assert_over_approximates(&d, |t, i| t.tanh(i[0]));
        assert_over_approximates(&d, |t, i| t.sigmoid(i[0]));
        assert_over_approximates(&d, |t, i| t.abs(i[0]));
        assert_over_approximates(&d, |t, i| t.scale(i[0], -1.5));
        assert_over_approximates(&d, |t, i| t.scale(i[0], 0.0));
        assert_over_approximates(&d, |t, i| t.add_scalar(i[0], 2.5));
    }

    #[test]
    fn transfer_over_approximates_linalg() {
        let mm = [(3, 4, Interval::new(-1.0, 1.0)), (4, 2, Interval::new(-2.0, 2.0))];
        assert_over_approximates(&mm, |t, i| t.matmul(i[0], i[1]));
        let one = [(3, 4, Interval::new(-2.0, 2.0))];
        assert_over_approximates(&one, |t, i| t.row_sum(i[0]));
        assert_over_approximates(&one, |t, i| t.sum_all(i[0]));
        assert_over_approximates(&one, |t, i| t.mean_all(i[0]));
        assert_over_approximates(&one, |t, i| t.softmax_rows(i[0]));
        assert_over_approximates(&one, |t, i| t.log_softmax_rows(i[0]));
        assert_over_approximates(&one, |t, i| t.slice_cols(i[0], 1, 3));
        let bias = [(3, 4, Interval::new(-1.0, 1.0)), (1, 4, Interval::new(-0.5, 0.5))];
        assert_over_approximates(&bias, |t, i| t.add_bias(i[0], i[1]));
        let cc = [(3, 2, Interval::new(-1.0, 1.0)), (3, 3, Interval::new(0.0, 2.0))];
        assert_over_approximates(&cc, |t, i| t.concat_cols(&[i[0], i[1]]));
        assert_over_approximates(&cc, |t, i| {
            let sliced = t.slice_cols(i[1], 0, 2);
            t.max_stack(&[i[0], sliced])
        });
        let bw = [(3, 4, Interval::new(-1.0, 1.0)), (3, 1, Interval::new(0.0, 1.0))];
        assert_over_approximates(&bw, |t, i| t.mul_col_broadcast(i[0], i[1]));
        let ms = [(3, 4, Interval::new(-1.0, 1.0)), (1, 1, Interval::new(-2.0, 2.0))];
        assert_over_approximates(&ms, |t, i| t.mul_scalar_tensor(i[0], i[1]));
    }

    #[test]
    fn transfer_over_approximates_segment_ops() {
        use crate::ops::Segments;
        use std::sync::Arc;
        // Includes an empty segment: every reduction interval must admit 0.
        let segs = Arc::new(Segments::from_lengths(&[3, 0, 4, 2, 1]));
        let total = segs.total_len();
        let d = [(total, 3, Interval::new(-2.0, 2.0))];
        let s1 = segs.clone();
        assert_over_approximates(&d, move |t, i| t.segment_sum(i[0], &s1));
        let s2 = segs.clone();
        assert_over_approximates(&d, move |t, i| t.segment_mean(i[0], &s2));
        let s3 = segs.clone();
        assert_over_approximates(&d, move |t, i| t.segment_max(i[0], &s3));
        let scores = [(total, 1, Interval::new(-3.0, 3.0))];
        let s4 = segs.clone();
        assert_over_approximates(&scores, move |t, i| t.segment_softmax(i[0], &s4));
        let att = [(total, 1, Interval::new(-3.0, 3.0)), (total, 3, Interval::new(-2.0, 2.0))];
        let s5 = segs.clone();
        assert_over_approximates(&att, move |t, i| t.segment_attention(i[0], i[1], &s5));
        let idx: Arc<Vec<u32>> = Arc::new(vec![0, 3, 3, 1, 2, 0, 3, 2, 1, 0]);
        let gather = [(4, 3, Interval::new(-2.0, 2.0))];
        let gi = idx.clone();
        assert_over_approximates(&gather, move |t, i| t.gather_rows(i[0], &gi));
        let ga = [(total, 1, Interval::new(-3.0, 3.0)), (4, 3, Interval::new(-2.0, 2.0))];
        let s6 = segs.clone();
        assert_over_approximates(&ga, move |t, i| t.gather_attention(i[0], i[1], &idx, &s6));
    }

    #[test]
    fn transfer_over_approximates_losses() {
        use std::sync::Arc;
        let logits = [(6, 4, Interval::new(-4.0, 4.0))];
        let labels: Arc<Vec<u32>> = Arc::new(vec![0, 1, 2, 3, 0, 1]);
        let rows: Arc<Vec<u32>> = Arc::new(vec![0, 1, 3, 4, 5]);
        let r1 = rows.clone();
        assert_over_approximates(&logits, move |t, i| t.cross_entropy(i[0], &labels, &r1));
        let bce = [(6, 2, Interval::new(-4.0, 4.0))];
        let targets: Arc<Matrix> = Arc::new(Matrix::from_vec(
            6,
            2,
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
        ));
        assert_over_approximates(&bce, move |t, i| t.bce_with_logits(i[0], &targets, &rows));
    }

    #[test]
    fn shape_violation_is_reported_not_dropped() {
        // Pin an abstract shape that contradicts the recorded op wiring:
        // add() of 3x2 and (assumed) 3x5 must violate the transfer contract.
        let mut tape = Tape::new(0);
        let a = tape.constant(mat(3, 2, |_| 1.0));
        let b = tape.constant(mat(3, 2, |_| 2.0));
        let sum = tape.add(a, b);
        let bad = AbsVal::finite(Dim::Const(3), Dim::Const(5), 0.0, 1.0);
        let report = tape.absint_assuming(&[(b, bad)]);
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].node, sum.index());
        assert!(report.violations[0].message.contains("col mismatch"));
    }

    #[test]
    fn segment_coverage_violation_is_reported() {
        use crate::ops::Segments;
        use std::sync::Arc;
        // segment_sum over 6 value rows with segments covering 5: the
        // recorded tape cannot even be built (the kernel asserts), so pin
        // an abstract row count that contradicts the segment total.
        let segs = Arc::new(Segments::from_lengths(&[3, 2]));
        let mut tape = Tape::new(0);
        let x = tape.constant(mat(5, 2, |_| 1.0));
        let out = tape.segment_sum(x, &segs);
        let bad = AbsVal::finite(Dim::Const(6), Dim::Const(2), -1.0, 1.0);
        let report = tape.absint_assuming(&[(x, bad)]);
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].node, out.index());
        assert!(report.violations[0].message.contains("segment"), "{}", report.violations[0]);
    }
}
