//! Kernel safety analysis: partition-plan proofs and a shadow write-set
//! race detector for the parallel kernels.
//!
//! Every multi-threaded kernel in this crate partitions its output through
//! the helpers in [`crate::parallel`]. Until this module existed, the
//! safety of that partitioning — no two workers write the same output
//! element, every element is written by somebody, chunks cut exactly at
//! item boundaries, and workers reduce in a fixed order — rested on
//! convention. A single off-by-one in a cut would corrupt a gradient
//! without any test failing deterministically, and (worse for a DARTS
//! search) could silently change which architecture wins.
//!
//! This module turns those conventions into machine-checked contracts:
//!
//! 1. **Partition plans.** Before spawning, a kernel materialises a
//!    [`PartitionPlan`]: the item cuts per worker plus the exact output
//!    range each worker is allowed to write. [`check_plan`] is a pure
//!    function that proves the plan sound — monotone cuts spanning every
//!    item, writes that are pairwise disjoint, gap-free from `0` to
//!    `out_len`, aligned with the item boundaries (CSR row offsets,
//!    segment offsets, row strides), and ordered so worker `w`'s output
//!    precedes worker `w + 1`'s (the stable reduction order that makes
//!    results bitwise identical at any thread count).
//! 2. **Shadow write sets.** In check mode each worker records the output
//!    interval it actually received into a [`ShadowLog`] — one slot per
//!    worker, so recording is contention-free — and a post-join audit
//!    turns any cross-thread overlap, or any drift between the plan and
//!    what the split arithmetic really handed out, into a structured
//!    [`ShadowFinding`] naming the kernel, the thread pair and the
//!    overlapping range. It is a cheap, structured ThreadSanitizer for our
//!    fixed kernel shapes.
//!
//! Checks run on every kernel invocation in debug builds, and in release
//! builds when `SANE_CHECK_PLANS` is set (see [`checks_enabled`]). A
//! violation is a logic error in the kernel, never a data error, so the
//! response is loud: a structured telemetry event followed by a panic —
//! silent corruption is the one outcome this module exists to rule out.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The contiguous output interval one worker is allowed to write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteRange {
    /// Worker index (its position in the spawn order).
    pub worker: usize,
    /// First flat output index owned by this worker.
    pub start: usize,
    /// One past the last flat output index owned by this worker.
    pub end: usize,
}

impl WriteRange {
    /// Number of output elements covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True for a zero-length range (a worker whose items are all empty).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for WriteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} -> [{}, {})", self.worker, self.start, self.end)
    }
}

/// How one kernel invocation splits its output across workers.
///
/// Built by the helpers in [`crate::parallel`] immediately before
/// spawning; [`check_plan`] proves it sound first.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    /// Kernel the plan belongs to (e.g. `spmm`, `segment_sum`).
    pub kernel: String,
    /// Number of work items being partitioned (rows, CSR rows, segments).
    pub items: usize,
    /// Total flat length of the output buffer.
    pub out_len: usize,
    /// Item boundaries per worker: worker `w` computes items
    /// `cuts[w]..cuts[w + 1]`. Length is `workers + 1`.
    pub cuts: Vec<usize>,
    /// Planned output interval per *active* worker (workers whose item
    /// range is empty are skipped, matching the spawn loop).
    pub writes: Vec<WriteRange>,
}

impl PartitionPlan {
    /// Builds the plan implied by `cuts` and the item→output mapping
    /// `out_offset` (flat index where item `i`'s output starts; must be
    /// monotone with `out_offset(items) == out_len`).
    pub fn from_cuts(
        kernel: impl Into<String>,
        items: usize,
        cuts: Vec<usize>,
        out_offset: &(dyn Fn(usize) -> usize + Sync),
        out_len: usize,
    ) -> Self {
        let mut writes = Vec::with_capacity(cuts.len().saturating_sub(1));
        for (worker, w) in cuts.windows(2).enumerate() {
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            writes.push(WriteRange { worker, start: out_offset(start), end: out_offset(end) });
        }
        Self { kernel: kernel.into(), items, out_len, cuts, writes }
    }
}

/// Why a [`PartitionPlan`] failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The cut array is missing or too short to describe any worker.
    NoCuts,
    /// `cuts[0]` must be 0 so coverage starts at the first item.
    BadFirstCut { got: usize },
    /// The last cut must equal `items` so every item is assigned.
    BadLastCut { got: usize, items: usize },
    /// Cuts must be non-decreasing; a reversal double-assigns items.
    NonMonotoneCuts { index: usize, prev: usize, next: usize },
    /// A write range with `end < start`.
    InvalidRange { write: WriteRange },
    /// Writes are not in ascending worker order: the reduction order would
    /// depend on spawn timing, breaking bitwise determinism.
    UnstableOrder { prev_worker: usize, next_worker: usize },
    /// Two workers' planned writes overlap — a write-write race.
    WriteOverlap { a: WriteRange, b: WriteRange, start: usize, end: usize },
    /// Output elements `[at, next_start)` belong to no worker.
    CoverageGap { at: usize, next_start: usize },
    /// The plan stops short of (or runs past) the output buffer.
    CoverageEnd { covered: usize, out_len: usize },
    /// A write range does not match the output boundary of its cut window
    /// — the chunk would straddle an item (CSR row / segment) boundary.
    MisalignedWrite { write: WriteRange, expected_start: usize, expected_end: usize },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoCuts => write!(f, "plan has no cuts"),
            PlanError::BadFirstCut { got } => {
                write!(f, "first cut must be 0, got {got}")
            }
            PlanError::BadLastCut { got, items } => {
                write!(f, "last cut must equal items ({items}), got {got}")
            }
            PlanError::NonMonotoneCuts { index, prev, next } => {
                write!(f, "cuts reverse at index {index}: {prev} -> {next}")
            }
            PlanError::InvalidRange { write } => {
                write!(f, "invalid write range ({write})")
            }
            PlanError::UnstableOrder { prev_worker, next_worker } => write!(
                f,
                "writes out of worker order ({prev_worker} then {next_worker}): reduction order \
                 would depend on spawn timing"
            ),
            PlanError::WriteOverlap { a, b, start, end } => write!(
                f,
                "write overlap on [{start}, {end}): {a} collides with {b} — cross-thread \
                 write-write race"
            ),
            PlanError::CoverageGap { at, next_start } => {
                write!(f, "coverage gap: output [{at}, {next_start}) is written by no worker")
            }
            PlanError::CoverageEnd { covered, out_len } => {
                write!(f, "plan covers output up to {covered} but the buffer has {out_len}")
            }
            PlanError::MisalignedWrite { write, expected_start, expected_end } => write!(
                f,
                "misaligned write ({write}): its cut window maps to \
                 [{expected_start}, {expected_end}) — chunk straddles an item boundary"
            ),
        }
    }
}

/// Statically verifies a [`PartitionPlan`] before the kernel runs.
///
/// `out_offset` is the same item→flat-output mapping the kernel partitions
/// with; the checker uses it to prove every write range lands exactly on
/// item boundaries (for CSR kernels that means row-offset alignment).
///
/// The checks, in order: cuts span `0..=items` monotonically; writes are
/// well-formed, in ascending worker order (stable reduction order),
/// pairwise disjoint, and gap-free from `0` to `out_len`; and each write
/// equals the output interval of its cut window.
pub fn check_plan(
    plan: &PartitionPlan,
    out_offset: &(dyn Fn(usize) -> usize + Sync),
) -> Result<(), PlanError> {
    let cuts = &plan.cuts;
    if cuts.len() < 2 {
        return Err(PlanError::NoCuts);
    }
    if cuts[0] != 0 {
        return Err(PlanError::BadFirstCut { got: cuts[0] });
    }
    let last = cuts[cuts.len() - 1];
    if last != plan.items {
        return Err(PlanError::BadLastCut { got: last, items: plan.items });
    }
    for (i, w) in cuts.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(PlanError::NonMonotoneCuts { index: i + 1, prev: w[0], next: w[1] });
        }
    }

    // Stable reduction order first: writes must be listed in ascending
    // worker order, independently of where their ranges land.
    let mut prev_worker: Option<usize> = None;
    for w in &plan.writes {
        if w.end < w.start {
            return Err(PlanError::InvalidRange { write: *w });
        }
        if let Some(p) = prev_worker {
            if w.worker <= p {
                return Err(PlanError::UnstableOrder { prev_worker: p, next_worker: w.worker });
            }
        }
        prev_worker = Some(w.worker);
    }

    // Disjointness + coverage in one sweep: `cursor` is the first output
    // index not yet owned. Zero-length writes (all-empty item windows) are
    // legal and advance nothing.
    let mut cursor = 0usize;
    for w in &plan.writes {
        if w.start < cursor {
            let prev = plan.writes.iter().find(|o| o.worker != w.worker && o.end > w.start);
            return Err(PlanError::WriteOverlap {
                a: prev.copied().unwrap_or(*w),
                b: *w,
                start: w.start,
                end: w.end.min(cursor),
            });
        }
        if w.start > cursor {
            return Err(PlanError::CoverageGap { at: cursor, next_start: w.start });
        }
        cursor = w.end;
    }
    if cursor != plan.out_len {
        return Err(PlanError::CoverageEnd { covered: cursor, out_len: plan.out_len });
    }

    // Boundary alignment: write `k` must cover exactly the output of the
    // `k`-th non-empty cut window.
    let mut wi = 0usize;
    for (worker, w) in cuts.windows(2).enumerate() {
        let (start, end) = (w[0], w[1]);
        if start == end {
            continue;
        }
        let (exp_start, exp_end) = (out_offset(start), out_offset(end));
        match plan.writes.get(wi) {
            Some(write) if write.worker == worker => {
                if write.start != exp_start || write.end != exp_end {
                    return Err(PlanError::MisalignedWrite {
                        write: *write,
                        expected_start: exp_start,
                        expected_end: exp_end,
                    });
                }
            }
            _ => {
                return Err(PlanError::MisalignedWrite {
                    write: WriteRange { worker, start: exp_start, end: exp_end },
                    expected_start: exp_start,
                    expected_end: exp_end,
                });
            }
        }
        wi += 1;
    }
    Ok(())
}

/// Whether kernel safety checks (plan verification + shadow write sets)
/// run on this build.
///
/// Debug builds always check. Release builds check when the
/// `SANE_CHECK_PLANS` environment variable is set to anything but `0` or
/// the empty string; the flag is read once per process.
pub fn checks_enabled() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("SANE_CHECK_PLANS").is_ok_and(|v| !v.is_empty() && v.trim() != "0")
    })
}

/// One observed violation from a shadow write-set audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShadowFinding {
    /// Two workers touched the same output interval — the write-write race
    /// the partitioning exists to prevent.
    Collision {
        /// Kernel the colliding workers belong to.
        kernel: String,
        /// Lower-indexed worker of the pair.
        worker_a: usize,
        /// Higher-indexed worker of the pair.
        worker_b: usize,
        /// First overlapping flat output index.
        start: usize,
        /// One past the last overlapping flat output index.
        end: usize,
    },
    /// A worker's observed write interval disagrees with the verified
    /// plan (or a planned worker never reported) — the split arithmetic
    /// drifted from the proof.
    Drift {
        /// Kernel whose plan drifted.
        kernel: String,
        /// Worker whose observation mismatched.
        worker: usize,
        /// The interval the verified plan assigned (`None`: unplanned).
        planned: Option<(usize, usize)>,
        /// The interval the worker reported (`None`: never reported).
        observed: Option<(usize, usize)>,
    },
}

impl ShadowFinding {
    /// The kernel this finding implicates.
    pub fn kernel(&self) -> &str {
        match self {
            ShadowFinding::Collision { kernel, .. } | ShadowFinding::Drift { kernel, .. } => kernel,
        }
    }
}

impl fmt::Display for ShadowFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShadowFinding::Collision { kernel, worker_a, worker_b, start, end } => write!(
                f,
                "shadow race in kernel `{kernel}`: workers {worker_a} and {worker_b} both \
                 write output range [{start}, {end})"
            ),
            ShadowFinding::Drift { kernel, worker, planned, observed } => write!(
                f,
                "plan drift in kernel `{kernel}`: worker {worker} planned {planned:?} but \
                 observed {observed:?}"
            ),
        }
    }
}

/// Per-worker record of the output intervals actually handed out by one
/// kernel invocation.
///
/// Each worker owns one slot and locks only it, so recording is
/// contention-free; the post-join [`ShadowLog::audit`] is the only reader
/// that crosses slots.
pub struct ShadowLog {
    kernel: String,
    slots: Vec<Mutex<Vec<(usize, usize)>>>,
}

impl ShadowLog {
    /// A log with one slot per worker for `kernel`.
    pub fn new(kernel: impl Into<String>, workers: usize) -> Self {
        Self {
            kernel: kernel.into(),
            slots: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Records that `worker` touched output indices `start..end`.
    ///
    /// # Panics
    /// Panics if `worker` is out of range — recording for a worker the log
    /// was not sized for is itself a partitioning bug.
    pub fn record(&self, worker: usize, start: usize, end: usize) {
        let mut slot = self.slots[worker].lock().unwrap_or_else(|p| p.into_inner());
        slot.push((start, end));
    }

    /// All `(worker, start, end)` records, sorted by interval start.
    fn collected(&self) -> Vec<(usize, usize, usize)> {
        let mut all = Vec::new();
        for (worker, slot) in self.slots.iter().enumerate() {
            let slot = slot.lock().unwrap_or_else(|p| p.into_inner());
            for &(s, e) in slot.iter() {
                if e > s {
                    all.push((worker, s, e));
                }
            }
        }
        all.sort_unstable_by_key(|&(w, s, e)| (s, e, w));
        all
    }

    /// Cross-thread overlap audit: any two records from *different*
    /// workers that intersect become a [`ShadowFinding::Collision`]. A
    /// worker overlapping itself is fine — its chunk is its own.
    pub fn audit(&self) -> Vec<ShadowFinding> {
        let all = self.collected();
        let mut findings = Vec::new();
        // Sweep: compare each record against successors that start before
        // it ends. Sorted by start, so the inner loop is short.
        for (i, &(wa, _sa, ea)) in all.iter().enumerate() {
            for &(wb, sb, eb) in &all[i + 1..] {
                if sb >= ea {
                    break;
                }
                if wa != wb {
                    findings.push(ShadowFinding::Collision {
                        kernel: self.kernel.clone(),
                        worker_a: wa.min(wb),
                        worker_b: wa.max(wb),
                        start: sb,
                        end: ea.min(eb),
                    });
                }
            }
        }
        findings
    }

    /// [`ShadowLog::audit`] plus plan conformance: every worker's observed
    /// union must equal its planned write range, and every planned worker
    /// must have reported. Catches split arithmetic drifting from the
    /// verified plan even when the drift stays (accidentally) disjoint.
    pub fn audit_against(&self, plan: &PartitionPlan) -> Vec<ShadowFinding> {
        let mut findings = self.audit();
        for (worker, slot) in self.slots.iter().enumerate() {
            let slot = slot.lock().unwrap_or_else(|p| p.into_inner());
            let observed: Option<(usize, usize)> =
                slot.iter().filter(|&&(s, e)| e > s).fold(None, |acc, &(s, e)| match acc {
                    None => Some((s, e)),
                    Some((a, b)) => Some((a.min(s), b.max(e))),
                });
            let planned = plan
                .writes
                .iter()
                .find(|w| w.worker == worker && !w.is_empty())
                .map(|w| (w.start, w.end));
            if planned != observed {
                findings.push(ShadowFinding::Drift {
                    kernel: self.kernel.clone(),
                    worker,
                    planned,
                    observed,
                });
            }
        }
        findings
    }
}

/// Escalates safety findings: one structured telemetry event per finding,
/// then a panic carrying every report. Called by the parallel helpers
/// after a failed plan check or shadow audit — a finding means the kernel
/// would have corrupted (or did corrupt) shared output, so continuing is
/// never an option.
///
/// # Panics
/// Always panics when `findings` is non-empty.
pub(crate) fn deny_shadow(findings: &[ShadowFinding]) {
    if findings.is_empty() {
        return;
    }
    for finding in findings {
        sane_telemetry::error(
            "analysis.race",
            &[("kernel", finding.kernel().into()), ("report", finding.to_string().into())],
        );
    }
    let joined: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    panic!("kernel safety audit failed:\n  {}", joined.join("\n  "));
}

/// Escalates a failed plan check. See [`deny_shadow`] for the policy.
///
/// # Panics
/// Always panics.
pub(crate) fn deny_plan(plan: &PartitionPlan, err: &PlanError) -> ! {
    sane_telemetry::error(
        "analysis.bad_plan",
        &[("kernel", plan.kernel.as_str().into()), ("report", err.to_string().into())],
    );
    panic!("kernel `{}` produced an unsound partition plan: {err}", plan.kernel);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `out_offset` for a plain row-partitioned kernel with `n` columns.
    fn rows_offset(n: usize) -> impl Fn(usize) -> usize + Sync {
        move |i| i * n
    }

    fn good_plan() -> PartitionPlan {
        // 10 items, 3 columns, cuts at 0/4/8/10.
        PartitionPlan::from_cuts("gemm", 10, vec![0, 4, 8, 10], &rows_offset(3), 30)
    }

    #[test]
    fn sound_plan_passes() {
        let plan = good_plan();
        assert_eq!(check_plan(&plan, &rows_offset(3)), Ok(()));
        assert_eq!(plan.writes.len(), 3);
        assert_eq!(plan.writes[1], WriteRange { worker: 1, start: 12, end: 24 });
    }

    #[test]
    fn empty_windows_are_skipped_but_covered() {
        // Worker 1 gets no items; coverage must still be seamless.
        let plan = PartitionPlan::from_cuts("spmm", 6, vec![0, 3, 3, 6], &rows_offset(2), 12);
        assert_eq!(plan.writes.len(), 2);
        assert_eq!(check_plan(&plan, &rows_offset(2)), Ok(()));
    }

    #[test]
    fn overlapping_writes_are_rejected() {
        let mut plan = good_plan();
        // Worker 1 reaches one row into worker 0's range.
        plan.writes[1].start = 9;
        let err = check_plan(&plan, &rows_offset(3)).expect_err("overlap must fail");
        assert!(
            matches!(err, PlanError::WriteOverlap { start: 9, .. }),
            "expected WriteOverlap, got {err}"
        );
        assert!(err.to_string().contains("race"), "{err}");
    }

    #[test]
    fn coverage_gap_is_rejected() {
        let mut plan = good_plan();
        // Worker 1 starts late: rows 12..15 belong to nobody.
        plan.writes[1].start = 15;
        let err = check_plan(&plan, &rows_offset(3)).expect_err("gap must fail");
        assert_eq!(err, PlanError::CoverageGap { at: 12, next_start: 15 });
    }

    #[test]
    fn short_coverage_is_rejected() {
        let mut plan = good_plan();
        plan.writes.pop();
        let err = check_plan(&plan, &rows_offset(3)).expect_err("short plan must fail");
        assert_eq!(err, PlanError::CoverageEnd { covered: 24, out_len: 30 });
    }

    #[test]
    fn non_monotone_cuts_are_rejected() {
        let mut plan = good_plan();
        plan.cuts[2] = 2;
        let err = check_plan(&plan, &rows_offset(3)).expect_err("reversed cuts must fail");
        assert!(matches!(err, PlanError::NonMonotoneCuts { .. }), "{err}");
    }

    #[test]
    fn cut_endpoints_are_checked() {
        let mut plan = good_plan();
        plan.cuts[0] = 1;
        assert_eq!(check_plan(&plan, &rows_offset(3)), Err(PlanError::BadFirstCut { got: 1 }),);
        let mut plan = good_plan();
        *plan.cuts.last_mut().expect("cuts non-empty") = 9;
        assert_eq!(
            check_plan(&plan, &rows_offset(3)),
            Err(PlanError::BadLastCut { got: 9, items: 10 }),
        );
    }

    #[test]
    fn unstable_worker_order_is_rejected() {
        let mut plan = good_plan();
        plan.writes.swap(0, 1);
        let err = check_plan(&plan, &rows_offset(3)).expect_err("order must be stable");
        assert!(matches!(err, PlanError::UnstableOrder { .. }), "{err}");
    }

    #[test]
    fn misaligned_write_is_rejected() {
        // Writes disjoint and covering, but shifted off the item boundary
        // implied by a *different* out_offset (columns 3 vs cut mapping 5).
        let plan = PartitionPlan {
            kernel: "segment_sum".into(),
            items: 10,
            out_len: 30,
            cuts: vec![0, 5, 10],
            writes: vec![
                WriteRange { worker: 0, start: 0, end: 12 },
                WriteRange { worker: 1, start: 12, end: 30 },
            ],
        };
        let err = check_plan(&plan, &rows_offset(3)).expect_err("straddling chunk must fail");
        assert!(matches!(err, PlanError::MisalignedWrite { .. }), "{err}");
    }

    #[test]
    fn zero_item_plan_is_sound() {
        let plan = PartitionPlan::from_cuts("noop", 0, vec![0, 0], &rows_offset(4), 0);
        assert_eq!(check_plan(&plan, &rows_offset(4)), Ok(()));
    }

    #[test]
    fn shadow_audit_passes_disjoint_writes() {
        let log = ShadowLog::new("spmm", 3);
        log.record(0, 0, 10);
        log.record(1, 10, 20);
        log.record(2, 20, 24);
        assert!(log.audit().is_empty());
    }

    #[test]
    fn shadow_audit_catches_injected_overlapping_kernel() {
        // The acceptance fixture: a (test-only) kernel whose workers 0 and
        // 2 both write rows [8, 12) must produce a structured report
        // naming the kernel and the exact overlapping range.
        let log = ShadowLog::new("evil_overlap", 3);
        log.record(0, 0, 12);
        log.record(1, 12, 20);
        log.record(2, 8, 28); // collides with both neighbours
        let findings = log.audit();
        assert!(
            findings.contains(&ShadowFinding::Collision {
                kernel: "evil_overlap".into(),
                worker_a: 0,
                worker_b: 2,
                start: 8,
                end: 12,
            }),
            "missing 0/2 collision: {findings:?}"
        );
        assert!(
            findings.contains(&ShadowFinding::Collision {
                kernel: "evil_overlap".into(),
                worker_a: 1,
                worker_b: 2,
                start: 12,
                end: 20,
            }),
            "missing 1/2 collision: {findings:?}"
        );
        let rendered = findings[0].to_string();
        assert!(rendered.contains("evil_overlap"), "{rendered}");
        assert!(rendered.contains("[8, 12)"), "{rendered}");
    }

    #[test]
    fn shadow_same_worker_rewrites_are_not_races() {
        let log = ShadowLog::new("segment_max", 2);
        log.record(0, 0, 8);
        log.record(0, 4, 8); // same worker touching its chunk twice
        log.record(1, 8, 12);
        assert!(log.audit().is_empty());
    }

    #[test]
    fn shadow_audit_against_plan_catches_drift() {
        let plan = PartitionPlan::from_cuts("gather_rows", 8, vec![0, 4, 8], &rows_offset(2), 16);
        let log = ShadowLog::new("gather_rows", 2);
        log.record(0, 0, 8);
        log.record(1, 8, 14); // two elements short of its planned range
        let findings = log.audit_against(&plan);
        assert_eq!(
            findings,
            vec![ShadowFinding::Drift {
                kernel: "gather_rows".into(),
                worker: 1,
                planned: Some((8, 16)),
                observed: Some((8, 14)),
            }]
        );
    }

    #[test]
    fn shadow_audit_against_plan_accepts_exact_conformance() {
        let plan = good_plan();
        let log = ShadowLog::new("gemm", 3);
        for w in &plan.writes {
            log.record(w.worker, w.start, w.end);
        }
        assert!(log.audit_against(&plan).is_empty());
    }

    #[test]
    fn deny_shadow_is_silent_on_no_findings() {
        deny_shadow(&[]);
    }

    #[test]
    #[should_panic(expected = "shadow race in kernel `evil`")]
    fn deny_shadow_panics_with_the_report() {
        deny_shadow(&[ShadowFinding::Collision {
            kernel: "evil".into(),
            worker_a: 0,
            worker_b: 1,
            start: 3,
            end: 7,
        }]);
    }

    #[test]
    fn checks_are_always_on_under_debug_assertions() {
        if cfg!(debug_assertions) {
            assert!(checks_enabled());
        }
    }
}
