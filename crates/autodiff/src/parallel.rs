//! The workspace's single threading policy.
//!
//! Every multi-threaded kernel — dense GEMM in [`crate::matrix`], sparse
//! `spmm` in [`crate::sparse`], the segment reductions in
//! `crate::ops::graphops` — partitions its work through the helpers in this
//! module, and nothing outside it is allowed to touch `std::thread` (the
//! `xtask` audit enforces that). One module owning the worker count, the
//! spawn threshold and the partitioning rules keeps three invariants easy
//! to state:
//!
//! 1. **Determinism.** Work is split at *item* boundaries (output rows,
//!    CSR rows, segments) and every item is computed by exactly one worker
//!    running the same inner loop as the serial path, so results are
//!    bitwise identical at any thread count.
//! 2. **One knob.** The worker count comes from `SANE_NUM_THREADS` (or
//!    `min(available_parallelism, 4)` when unset) for every kernel at once.
//! 3. **No runaway spawns.** Kernels below [`PAR_WORK_THRESHOLD`] scalar
//!    operations never spawn; scoped threads cost ~100µs, which only a
//!    few milliseconds of arithmetic amortises.
//!
//! Worker threads never allocate: callers pre-split the output buffer and
//! each worker writes only its own chunk, so the thread-local buffer pool
//! ([`crate::pool`]) stays a calling-thread concern.
//!
//! Since PR 5 the invariants are *checked*, not just stated: every spawn
//! goes through [`run_plan`]/[`run_plan_pair`], which in check mode (debug
//! builds, or `SANE_CHECK_PLANS` in release) prove an explicit
//! [`PartitionPlan`] sound before running and audit per-worker shadow
//! write sets after the join — see [`crate::analysis`] for the contract.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

use crate::analysis::{self, PartitionPlan, ShadowLog};

/// Minimum number of scalar operations (multiply-adds, exps, copies)
/// before a kernel bothers spawning threads. Spawning scoped threads costs
/// on the order of a hundred microseconds (more on old kernels), so
/// parallelism only pays for kernels with at least a few milliseconds of
/// work.
pub(crate) const PAR_WORK_THRESHOLD: usize = 4 << 20;

/// The configured worker count: `SANE_NUM_THREADS` when set to a positive
/// integer, otherwise `min(available_parallelism, 4)`.
///
/// Cached: `available_parallelism` reads cgroup state from `/sys` on
/// Linux, which is far too slow to query per kernel call. The env var is
/// therefore read once per process.
fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("SANE_NUM_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => sane_telemetry::warn(
                    "parallel.bad_num_threads",
                    &[
                        ("value", sane_telemetry::Value::from(v.as_str())),
                        ("hint", "not a positive integer; using the default".into()),
                    ],
                ),
            }
        }
        std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(1)
    })
}

thread_local! {
    /// Per-thread override installed by [`with_threads`]. `Some(n)` pins
    /// the worker count to `n` *and* bypasses [`PAR_WORK_THRESHOLD`], so
    /// tests and benchmarks can force the parallel partitioning on inputs
    /// of any size.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the next kernel invocation on this thread will
/// use.
pub fn num_threads() -> usize {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(configured_threads)
}

/// Number of hardware threads the OS reports (1 when unknown). Exposed so
/// diagnostics outside this crate never touch `std::thread` directly.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the worker count pinned to `threads` on this thread.
///
/// While the override is active the work-size threshold is bypassed:
/// kernels partition across exactly `threads` workers no matter how small
/// the input (with `threads == 1` forcing the serial path). This is the
/// hook the determinism tests and the `kernels` bench binary use to
/// compare 1/2/4-thread runs within one process; production code should
/// rely on `SANE_NUM_THREADS` instead.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "with_threads needs at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads))));
    f()
}

fn forced() -> bool {
    OVERRIDE.with(|o| o.get()).is_some()
}

thread_local! {
    /// Name of the kernel currently executing on this thread, maintained
    /// by [`timed`]. Safety reports from [`crate::analysis`] use it to
    /// attribute a bad plan or a shadow race to the kernel that produced
    /// it (nested kernels report the innermost name).
    static CURRENT_KERNEL: Cell<&'static str> = const { Cell::new("") };
}

/// The kernel name the safety analysis should attribute findings to.
pub(crate) fn current_kernel() -> &'static str {
    let k = CURRENT_KERNEL.with(|c| c.get());
    if k.is_empty() {
        "unattributed"
    } else {
        k
    }
}

/// Times one kernel invocation into the installed telemetry recorder's
/// `kernel.<name>.ns` summary, and labels the thread with the kernel name
/// for the duration so safety findings are attributable.
///
/// This is the workspace's single kernel-timing hook: every hot kernel —
/// spmm, the segment reductions, GEMM, the tape's backward sweep — runs
/// through it. The disabled path (no recorder on this thread, or the
/// recorder built with `with_kernel_timing(false)`) is two thread-local
/// accesses and no clock call, so the hook is safe to leave in release
/// binaries.
pub(crate) fn timed<R>(kernel: &'static str, f: impl FnOnce() -> R) -> R {
    struct RestoreKernel(&'static str);
    impl Drop for RestoreKernel {
        fn drop(&mut self) {
            CURRENT_KERNEL.with(|c| c.set(self.0));
        }
    }
    let _restore = RestoreKernel(CURRENT_KERNEL.with(|c| c.replace(kernel)));
    if !sane_telemetry::kernel_timing_enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    sane_telemetry::kernel_sample(kernel, start.elapsed().as_nanos() as u64); // lint:allow(lossy-cast) -- u64 nanoseconds overflow after 584 years
    out
}

/// Verifies `cuts` against the output mapping and, in check mode, returns
/// the proven [`PartitionPlan`] plus a [`ShadowLog`] sized for it.
///
/// Returns `None` outside check mode (see [`analysis::checks_enabled`]) so
/// the release fast path pays one cached boolean read and nothing else.
///
/// # Panics
/// Panics (via [`analysis::deny_plan`]) if the plan fails verification —
/// an unsound split is a kernel logic bug and must never reach the spawn.
fn prove_plan(
    label: String,
    items: usize,
    cuts: &[usize],
    out_offset: &(dyn Fn(usize) -> usize + Sync),
    out_len: usize,
) -> Option<(PartitionPlan, ShadowLog)> {
    if !analysis::checks_enabled() {
        return None;
    }
    let plan = PartitionPlan::from_cuts(label, items, cuts.to_vec(), out_offset, out_len);
    if let Err(err) = analysis::check_plan(&plan, out_offset) {
        analysis::deny_plan(&plan, &err);
    }
    let shadow = ShadowLog::new(plan.kernel.clone(), cuts.len().saturating_sub(1));
    Some((plan, shadow))
}

/// Spawns one scoped worker per non-empty cut window, handing worker `w`
/// the output slice `out_offset(cuts[w])..out_offset(cuts[w + 1])`.
///
/// This is the single execution path behind [`parallel_rows`] and
/// [`parallel_ranges`]: the same `cuts` array that the (check-mode) plan
/// proof validated drives the actual `split_at_mut` partitioning, so the
/// proof and the execution cannot drift apart silently — and in check mode
/// each worker also records the interval it really received into the
/// shadow log, which is audited against the plan after the join.
fn run_plan<T: Send>(
    items: usize,
    cuts: &[usize],
    out_offset: &(dyn Fn(usize) -> usize + Sync),
    out: &mut [T],
    run: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    let kernel = current_kernel();
    let checked = prove_plan(kernel.to_string(), items, cuts, out_offset, out.len());
    let shadow = checked.as_ref().map(|(_, s)| s);
    // Workers must compute exactly what the calling thread would have: the
    // scalar/SIMD mode is part of that contract, so it rides along.
    let scalar = crate::simd::scalar_forced();
    let mut slice_ns = worker_slice_slots(cuts);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut consumed = 0usize;
        let mut ns_rest = slice_ns.as_mut_slice();
        for (worker, w) in cuts.windows(2).enumerate() {
            let slot = match std::mem::take(&mut ns_rest).split_first_mut() {
                Some((slot, tail)) => {
                    ns_rest = tail;
                    Some(slot)
                }
                None => None,
            };
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            let stop = out_offset(end);
            let (chunk, tail) = rest.split_at_mut(stop - consumed);
            let chunk_start = consumed;
            rest = tail;
            consumed = stop;
            let run = &run;
            s.spawn(move || {
                if let Some(log) = shadow {
                    log.record(worker, chunk_start, chunk_start + chunk.len());
                }
                match slot {
                    Some(slot) => {
                        let t0 = std::time::Instant::now();
                        crate::simd::with_mode(scalar, || run(start..end, chunk));
                        *slot = t0.elapsed().as_nanos() as u64; // lint:allow(lossy-cast) -- u64 nanoseconds overflow after 584 years
                    }
                    None => crate::simd::with_mode(scalar, || run(start..end, chunk)),
                }
            });
        }
    });
    book_worker_slices(kernel, &slice_ns);
    if let Some((plan, log)) = &checked {
        analysis::deny_shadow(&log.audit_against(plan));
    }
}

/// One duration slot per partition window when the caller's recorder is
/// sampling kernels, else empty (workers then skip the clock entirely).
fn worker_slice_slots(cuts: &[usize]) -> Vec<u64> {
    if sane_telemetry::kernel_timing_enabled() {
        vec![0u64; cuts.len().saturating_sub(1)]
    } else {
        Vec::new()
    }
}

/// Books the workers' slice durations into the run's
/// `kernel.<name>.worker.ns` stream — separate from the caller-level
/// `kernel.<name>.ns` sample [`timed`] records around the whole
/// invocation, so worker slices never double-count kernel time.
///
/// Workers only stamp a pre-split slot each; the caller does the actual
/// recording after the scope joins. Attaching every ~100µs-lived kernel
/// worker to the run (the [`sane_telemetry::RecorderHandle::attach`]
/// path long-lived workers use) costs more than the slice it would
/// book, and the kernels bench gates that overhead budget in CI.
fn book_worker_slices(kernel: &'static str, slice_ns: &[u64]) {
    if slice_ns.is_empty() {
        return;
    }
    let stream = format!("kernel.{kernel}.worker.ns");
    for &ns in slice_ns {
        // Zero marks a window the partition plan left empty: no worker
        // was spawned for it, so there is no slice to book.
        if ns > 0 {
            sane_telemetry::record_latency(&stream, ns as f64); // lint:allow(lossy-cast) -- f64 is exact below 2^53 ns ≈ 104 days
        }
    }
}

/// Two-buffer variant of [`run_plan`]: one cut array drives both outputs,
/// each with its own offset mapping, plan proof and shadow log.
fn run_plan_pair<A: Send, B: Send>(
    items: usize,
    cuts: &[usize],
    out_offset_a: &(dyn Fn(usize) -> usize + Sync),
    out_offset_b: &(dyn Fn(usize) -> usize + Sync),
    a: &mut [A],
    b: &mut [B],
    run: impl Fn(Range<usize>, &mut [A], &mut [B]) + Sync,
) {
    let kernel = current_kernel();
    let checked_a = prove_plan(format!("{kernel}.a"), items, cuts, out_offset_a, a.len());
    let checked_b = prove_plan(format!("{kernel}.b"), items, cuts, out_offset_b, b.len());
    let shadow_a = checked_a.as_ref().map(|(_, s)| s);
    let shadow_b = checked_b.as_ref().map(|(_, s)| s);
    let scalar = crate::simd::scalar_forced();
    let mut slice_ns = worker_slice_slots(cuts);
    std::thread::scope(|s| {
        let (mut rest_a, mut rest_b) = (a, b);
        let (mut done_a, mut done_b) = (0usize, 0usize);
        let mut ns_rest = slice_ns.as_mut_slice();
        for (worker, w) in cuts.windows(2).enumerate() {
            let slot = match std::mem::take(&mut ns_rest).split_first_mut() {
                Some((slot, tail)) => {
                    ns_rest = tail;
                    Some(slot)
                }
                None => None,
            };
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            let (stop_a, stop_b) = (out_offset_a(end), out_offset_b(end));
            let (ca, ta) = rest_a.split_at_mut(stop_a - done_a);
            let (cb, tb) = rest_b.split_at_mut(stop_b - done_b);
            let (ca_start, cb_start) = (done_a, done_b);
            rest_a = ta;
            rest_b = tb;
            done_a = stop_a;
            done_b = stop_b;
            let run = &run;
            s.spawn(move || {
                if let Some(log) = shadow_a {
                    log.record(worker, ca_start, ca_start + ca.len());
                }
                if let Some(log) = shadow_b {
                    log.record(worker, cb_start, cb_start + cb.len());
                }
                match slot {
                    Some(slot) => {
                        let t0 = std::time::Instant::now();
                        crate::simd::with_mode(scalar, || run(start..end, ca, cb));
                        *slot = t0.elapsed().as_nanos() as u64; // lint:allow(lossy-cast) -- u64 nanoseconds overflow after 584 years
                    }
                    None => crate::simd::with_mode(scalar, || run(start..end, ca, cb)),
                }
            });
        }
    });
    book_worker_slices(kernel, &slice_ns);
    for (plan, log) in [&checked_a, &checked_b].into_iter().flatten() {
        analysis::deny_shadow(&log.audit_against(plan));
    }
}

/// Runs `f(worker_index)` on `workers` scoped threads and joins them all.
///
/// This is the workspace's only general-purpose thread fan-out: higher
/// layers (the `trials` bench's concurrent search trials, the
/// multi-thread telemetry tests) go through it so `std::thread` stays
/// confined to this module, as the `xtask` audit demands. Unlike the
/// kernel helpers there is no output partitioning or plan proof — `f`
/// owns its synchronisation (typically an atomic work queue plus a
/// mutexed result vector). Telemetry is not attached automatically:
/// callers that want worker records in a trace capture a
/// `sane_telemetry::RecorderHandle` before the call and attach it inside
/// `f` with their own labels. A panic in any worker propagates to the
/// caller when the scope joins.
pub fn run_workers(workers: usize, f: impl Fn(usize) + Sync) {
    std::thread::scope(|s| {
        for w in 0..workers {
            let f = &f;
            s.spawn(move || f(w));
        }
    });
}

/// Equal-size item cuts: `items` split into `workers` contiguous windows
/// of `ceil(items / workers)` items (the last window may be short, and
/// trailing workers may get empty windows). The row analogue of
/// [`balanced_cuts`] for kernels whose items all weigh the same.
fn even_cuts(items: usize, workers: usize) -> Vec<usize> {
    let chunk = items.div_ceil(workers.max(1)).max(1);
    let mut cuts = Vec::with_capacity(workers + 1);
    let mut at = 0usize;
    cuts.push(at);
    while at < items {
        at = (at + chunk).min(items);
        cuts.push(at);
    }
    if cuts.len() < 2 {
        cuts.push(items);
    }
    cuts
}

/// Splits the output rows of an `m x n` result into equal contiguous row
/// chunks across worker threads when `work` (total scalar operations)
/// justifies the spawn cost.
///
/// `run(rows, chunk)` receives a row range and the output slice covering
/// exactly those rows; it must write every element it owns.
pub(crate) fn parallel_rows(
    m: usize,
    n: usize,
    work: usize,
    out: &mut [f32],
    run: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), m * n, "output must be exactly m x n");
    let workers = num_threads();
    if workers <= 1 || m < 2 || n == 0 || (!forced() && work < PAR_WORK_THRESHOLD) {
        run(0..m, out);
        return;
    }
    let cuts = even_cuts(m, workers);
    run_plan(m, &cuts, &|i| i * n, out, run);
}

/// Like [`parallel_rows`] but for kernels that fill *two* parallel output
/// buffers row by row (e.g. a gradient and a per-row reduction).
pub(crate) fn parallel_rows_pair<A: Send, B: Send>(
    m: usize,
    na: usize,
    nb: usize,
    work: usize,
    a: &mut [A],
    b: &mut [B],
    run: impl Fn(Range<usize>, &mut [A], &mut [B]) + Sync,
) {
    debug_assert_eq!(a.len(), m * na, "output a must be exactly m x na");
    debug_assert_eq!(b.len(), m * nb, "output b must be exactly m x nb");
    let workers = num_threads();
    if workers <= 1 || m < 2 || na == 0 || nb == 0 || (!forced() && work < PAR_WORK_THRESHOLD) {
        run(0..m, a, b);
        return;
    }
    let cuts = even_cuts(m, workers);
    run_plan_pair(m, &cuts, &|i| i * na, &|i| i * nb, a, b, run);
}

/// Computes contiguous item ranges (`cuts[w]..cuts[w + 1]` per worker)
/// that share `offsets`-weighted load as evenly as item boundaries allow.
///
/// `offsets` is a monotone cumulative-weight array of length `items + 1`
/// (a CSR `indptr`, or segment offsets): item `i` carries weight
/// `offsets[i + 1] - offsets[i]`. Degenerate inputs are handled, not
/// assumed away: an empty or single-entry `offsets` (zero items) yields
/// the trivial plan `[0, 0]`, and `workers > items` produces trailing
/// empty windows that the spawn loop skips.
fn balanced_cuts(offsets: &[usize], workers: usize) -> Vec<usize> {
    if offsets.len() <= 1 {
        return vec![0, 0];
    }
    debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
    let items = offsets.len() - 1;
    let total = offsets[items] - offsets[0];
    let mut cuts = Vec::with_capacity(workers.max(1) + 1);
    cuts.push(0);
    for w in 1..workers {
        let target = offsets[0] + total * w / workers;
        let at = offsets.partition_point(|&o| o < target).min(items);
        let last = *cuts.last().unwrap_or(&0);
        cuts.push(at.max(last));
    }
    cuts.push(items);
    cuts
}

/// Partitions `items` contiguous work items (CSR rows, segments) across
/// workers, cutting only at item boundaries so each item is computed
/// whole by one worker — the serial inner loop per item is preserved and
/// the result is bitwise identical at any thread count.
///
/// * `offsets` — cumulative weight per item (length `items + 1`); the load
///   balancer splits so workers get roughly equal weight (e.g. nonzeros
///   for spmm, edges for segment ops), not equal item counts.
/// * `out_offset(i)` — flat index in `out` where item `i`'s output starts;
///   must be monotone with `out_offset(0) == 0` and
///   `out_offset(items) == out.len()`.
/// * `run(items, chunk)` — computes an item range into the output slice
///   covering exactly those items.
pub(crate) fn parallel_ranges<T: Send>(
    offsets: &[usize],
    out_offset: &(dyn Fn(usize) -> usize + Sync),
    work: usize,
    out: &mut [T],
    run: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    let items = offsets.len() - 1;
    debug_assert_eq!(out_offset(items), out.len(), "out_offset must cover the output");
    let workers = num_threads();
    if workers <= 1 || items < 2 || (!forced() && work < PAR_WORK_THRESHOLD) {
        run(0..items, out);
        return;
    }
    let cuts = balanced_cuts(offsets, workers);
    run_plan(items, &cuts, out_offset, out, run);
}

/// Two-buffer variant of [`parallel_ranges`] for kernels that fill a pair
/// of outputs with per-item chunks (e.g. `segment_max` values + winner
/// indices).
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_ranges_pair<A: Send, B: Send>(
    offsets: &[usize],
    out_offset_a: &(dyn Fn(usize) -> usize + Sync),
    out_offset_b: &(dyn Fn(usize) -> usize + Sync),
    work: usize,
    a: &mut [A],
    b: &mut [B],
    run: impl Fn(Range<usize>, &mut [A], &mut [B]) + Sync,
) {
    let items = offsets.len() - 1;
    debug_assert_eq!(out_offset_a(items), a.len(), "out_offset_a must cover the output");
    debug_assert_eq!(out_offset_b(items), b.len(), "out_offset_b must cover the output");
    let workers = num_threads();
    if workers <= 1 || items < 2 || (!forced() && work < PAR_WORK_THRESHOLD) {
        run(0..items, a, b);
        return;
    }
    let cuts = balanced_cuts(offsets, workers);
    run_plan_pair(items, &cuts, out_offset_a, out_offset_b, a, b, run);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, || assert_eq!(num_threads(), 1));
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn parallel_rows_covers_all_rows_once() {
        let (m, n) = (10, 3);
        let mut out = vec![0.0f32; m * n];
        with_threads(4, || {
            parallel_rows(m, n, 0, &mut out, |rows, chunk| {
                for (ri, r) in rows.enumerate() {
                    for c in 0..n {
                        chunk[ri * n + c] += (r * n + c) as f32;
                    }
                }
            });
        });
        let expect: Vec<f32> = (0..m * n).map(|i| i as f32).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_ranges_splits_at_item_boundaries() {
        // Item i occupies rows offsets[i]..offsets[i+1] of a 1-column out.
        let offsets = vec![0usize, 4, 4, 5, 9, 12];
        let mut out = vec![-1.0f32; 12];
        with_threads(4, || {
            parallel_ranges(&offsets, &|i| offsets[i], 0, &mut out, |items, chunk| {
                let base = offsets[items.start];
                for i in items {
                    for e in offsets[i]..offsets[i + 1] {
                        chunk[e - base] = i as f32;
                    }
                }
            });
        });
        let expect = [0.0, 0.0, 0.0, 0.0, 2.0, 3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0];
        assert_eq!(out, expect);
    }

    #[test]
    fn balanced_cuts_are_monotone_and_complete() {
        let offsets = vec![0usize, 100, 100, 101, 102, 103, 200];
        for workers in 1..6 {
            let cuts = balanced_cuts(&offsets, workers);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().expect("non-empty"), 6);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "{cuts:?}");
        }
    }

    /// Any cut array `balanced_cuts` produces must pass the plan checker
    /// for a 1-column output (out_offset == offsets themselves).
    fn assert_plan_sound(offsets: &[usize], cuts: Vec<usize>) {
        let items = offsets.len().saturating_sub(1);
        let base = offsets.first().copied().unwrap_or(0);
        let off = move |i: usize| offsets.get(i).copied().unwrap_or(base) - base;
        let out_len = off(items);
        let plan = crate::analysis::PartitionPlan::from_cuts("test", items, cuts, &off, out_len);
        assert_eq!(crate::analysis::check_plan(&plan, &off), Ok(()), "{plan:?}");
    }

    #[test]
    fn balanced_cuts_degenerate_empty_offsets() {
        assert_eq!(balanced_cuts(&[], 4), vec![0, 0]);
        assert_eq!(balanced_cuts(&[7], 4), vec![0, 0]);
    }

    #[test]
    fn balanced_cuts_degenerate_single_row() {
        let offsets = [0usize, 5];
        let cuts = balanced_cuts(&offsets, 4);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().expect("non-empty"), 1);
        assert_plan_sound(&offsets, cuts);
    }

    #[test]
    fn balanced_cuts_degenerate_more_workers_than_rows() {
        let offsets = [0usize, 2, 3, 9];
        let cuts = balanced_cuts(&offsets, 8);
        assert_eq!(cuts.len(), 9);
        assert_eq!(*cuts.last().expect("non-empty"), 3);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "{cuts:?}");
        assert_plan_sound(&offsets, cuts);
    }

    #[test]
    fn balanced_cuts_degenerate_all_equal_offsets() {
        // Zero total weight: every item is empty; the cuts must still
        // cover all items without reversing.
        let offsets = [3usize, 3, 3, 3];
        let cuts = balanced_cuts(&offsets, 2);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().expect("non-empty"), 3);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "{cuts:?}");
        assert_plan_sound(&offsets, cuts);
    }

    #[test]
    fn even_cuts_cover_items_for_any_worker_count() {
        for items in [0usize, 1, 2, 7, 16] {
            for workers in 1..6 {
                let cuts = even_cuts(items, workers);
                assert!(cuts.len() >= 2, "{items} items / {workers} workers: {cuts:?}");
                assert_eq!(cuts[0], 0);
                assert_eq!(*cuts.last().expect("non-empty"), items);
                assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "{cuts:?}");
            }
        }
    }

    #[test]
    fn forced_partitioning_passes_safety_checks() {
        // Debug builds run the plan proof + shadow audit on every spawn;
        // a clean pass here means the real split arithmetic conforms.
        assert!(crate::analysis::checks_enabled() || !cfg!(debug_assertions));
        let offsets = vec![0usize, 3, 3, 4, 10, 11];
        let mut out = vec![0.0f32; 22];
        with_threads(4, || {
            parallel_ranges(&offsets, &|i| offsets[i] * 2, 0, &mut out, |items, chunk| {
                let base = offsets[items.start] * 2;
                for i in items {
                    for e in offsets[i] * 2..offsets[i + 1] * 2 {
                        chunk[e - base] = 1.0;
                    }
                }
            });
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn worker_pool_recycling_stays_thread_local() {
        // Workers run on scoped threads with their own thread-local pools;
        // a worker recycling or drawing buffers must neither leak into nor
        // double-count in the calling thread's `PoolStats`.
        crate::pool::reset();
        let caller_before = crate::pool::stats();
        let mut out = vec![0.0f32; 8];
        with_threads(4, || {
            parallel_rows(8, 1, 0, &mut out, |_, chunk| {
                // Simulate a worker that (against policy) touches the pool:
                // everything lands in the *worker's* pool, which dies with
                // the scoped thread.
                let m = crate::pool::zeros(4, 4);
                crate::pool::put(m);
                let stats = crate::pool::stats();
                assert!(stats.consistent(), "worker-local stats inconsistent: {stats:?}");
                assert_eq!(stats.misses, 1, "worker pool must start empty");
                chunk.fill(1.0);
            });
        });
        let caller_after = crate::pool::stats();
        assert_eq!(
            caller_after, caller_before,
            "worker pool activity must not leak into the caller's stats"
        );
        assert!(caller_after.consistent());
        crate::pool::reset();
    }

    #[test]
    fn pool_stats_are_consistent_under_with_threads() {
        crate::pool::reset();
        for threads in [1usize, 2, 4] {
            with_threads(threads, || {
                let a = crate::pool::zeros(6, 2);
                let b = crate::pool::clone_of(&a);
                crate::pool::put(a);
                crate::pool::put(b);
            });
            let stats = crate::pool::stats();
            assert!(
                stats.consistent(),
                "caller stats inconsistent at {threads} threads: {stats:?}"
            );
        }
        let stats = crate::pool::stats();
        // Three rounds of two takes / two puts on the caller thread: all
        // recycles must be visible here and balance against the holdings.
        assert_eq!(stats.recycled, 6);
        assert_eq!(stats.buffers as u64, stats.recycled - stats.hits);
        crate::pool::reset();
    }

    #[test]
    fn parallel_ranges_pair_keeps_buffers_aligned() {
        let offsets = vec![0usize, 2, 5, 6];
        let mut vals = vec![0.0f32; 3 * 2]; // 2 cols per item
        let mut tags = vec![0u32; 3]; // 1 tag per item
        with_threads(2, || {
            parallel_ranges_pair(
                &offsets,
                &|i| i * 2,
                &|i| i,
                0,
                &mut vals,
                &mut tags,
                |items, va, tb| {
                    let base = items.start;
                    for i in items {
                        va[(i - base) * 2] = i as f32;
                        va[(i - base) * 2 + 1] = i as f32;
                        tb[i - base] = i as u32;
                    }
                },
            );
        });
        assert_eq!(vals, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        assert_eq!(tags, [0, 1, 2]);
    }
}
