//! Thread-local buffer pool recycling tape value and gradient allocations.
//!
//! The training and search loops in `sane-core` build a fresh [`crate::Tape`]
//! every step, so every intermediate value and every gradient matrix used to
//! be a `vec![0.0; n]` that lived for one step and hit the allocator twice.
//! This pool intercepts that churn: kernels draw their output buffers from
//! per-size free lists via [`zeros`] / [`clone_of`], and buffers flow back via
//! [`put`] at the points where the engine can prove a matrix is dead — tape
//! teardown (`Drop for Tape`), gradient consumption inside
//! `Tape::backward_seeded`, and `Gradients::recycle` after an optimiser step.
//! In steady state a training step allocates nothing for tape buffers.
//!
//! The pool is **thread-local** on purpose: only the thread driving the tape
//! ever allocates (kernel worker threads write into pre-split `&mut [f32]`
//! chunks of a buffer the caller already owns — see [`crate::parallel`]), so
//! a thread-local free list needs no locks and keeps test processes, which
//! run tests on many threads, from sharing state. Everything here is safe
//! code; returning a buffer is always optional, and a matrix that escapes
//! (e.g. a value kept by the caller) simply never comes back.
//!
//! Size classes are exact lengths. Training shapes are stable across steps
//! (same graph, same layer widths), so exact-length reuse hits nearly 100%
//! after the first step without any rounding waste.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use crate::matrix::Matrix;

/// Per-size-class cap on pooled buffers. The fully-mixed supernet forward
/// holds hundreds of live `n x hidden` matrices on one tape (every
/// aggregator of every layer), and all of them come back at tape teardown,
/// so the cap must cover a whole step's worth of one shape or steady-state
/// steps keep allocating. Memory is bounded by [`MAX_POOLED_FLOATS`], not
/// this count; the class cap only guards degenerate many-tiny-shapes churn.
const MAX_BUFFERS_PER_CLASS: usize = 512;

/// Cap on total pooled floats (64 Mi floats = 256 MiB). Beyond this the
/// pool drops returned buffers instead of growing without bound.
const MAX_POOLED_FLOATS: usize = 64 << 20;

/// Snapshot of the calling thread's pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Buffer requests served from the free lists.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
    /// Buffers accepted back into the free lists.
    pub recycled: u64,
    /// Buffers offered back but dropped (class full or float cap hit).
    pub dropped: u64,
    /// Buffers currently held in the free lists.
    pub buffers: usize,
    /// Total floats currently held in the free lists.
    pub floats: usize,
}

impl PoolStats {
    /// Fraction of buffer requests served without allocating.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Internal bookkeeping invariant: every buffer held by the pool
    /// arrived through a recycle and leaves through a hit, so the live
    /// buffer count must equal `recycled - hits` exactly. A violation
    /// means a buffer leaked into or double-counted in the free lists —
    /// the cross-thread failure mode the pool's thread-locality exists to
    /// prevent. Checked by the parallel worker tests and cheap enough to
    /// assert anywhere.
    pub fn consistent(&self) -> bool {
        self.recycled >= self.hits && self.buffers as u64 == self.recycled - self.hits
    }

    /// Activity since an `earlier` snapshot: the counters become deltas,
    /// while `buffers`/`floats` stay absolute (they describe what the pool
    /// holds *now*, not what happened in between). This is how
    /// [`crate::audit::TapeReport`] scopes pool stats to one tape instead
    /// of accumulating them across a whole run.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            recycled: self.recycled.saturating_sub(earlier.recycled),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            buffers: self.buffers,
            floats: self.floats,
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} pooled buffers ({:.1} MiB), \
             {} recycled, {} dropped",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.buffers,
            self.floats as f64 * 4.0 / (1024.0 * 1024.0),
            self.recycled,
            self.dropped,
        )
    }
}

#[derive(Default)]
struct Pool {
    /// Free lists keyed by exact buffer length.
    classes: BTreeMap<usize, Vec<Vec<f32>>>,
    floats: usize,
    buffers: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
}

impl Pool {
    /// A buffer of exactly `len` floats with unspecified contents; the
    /// caller must overwrite every element or zero it.
    fn take(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        match self.classes.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.hits += 1;
                self.buffers -= 1;
                self.floats -= len;
                buf
            }
            None => {
                self.misses += 1;
                vec![0.0; len]
            }
        }
    }

    fn put(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 {
            return;
        }
        if self.floats + len > MAX_POOLED_FLOATS {
            self.dropped += 1;
            return;
        }
        let class = self.classes.entry(len).or_default();
        if class.len() >= MAX_BUFFERS_PER_CLASS {
            self.dropped += 1;
            return;
        }
        class.push(buf);
        self.buffers += 1;
        self.floats += len;
        self.recycled += 1;
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// An all-zeros `rows x cols` matrix drawn from this thread's pool.
pub(crate) fn zeros(rows: usize, cols: usize) -> Matrix {
    let mut buf = POOL.with(|p| p.borrow_mut().take(rows * cols));
    buf.fill(0.0);
    Matrix::from_vec(rows, cols, buf)
}

/// A `rows x cols` matrix with *unspecified contents* for overwrite-only
/// kernels, drawn from this thread's pool.
///
/// Skipping the `fill(0.0)` of [`zeros`] matters on wide buffers that are
/// about to be fully overwritten anyway (gather outputs, broadcast-style
/// backward planes): the memset is pure memory traffic. The caller must
/// write **every** element before any element is read — a partial write
/// would expose stale floats from a recycled buffer, which is exactly the
/// kind of history-dependent state the determinism contract forbids. Debug
/// builds poison the buffer with NaN so a read-before-write (or a row left
/// unwritten) surfaces as NaN in the test suites instead of silently
/// reading recycled data; release builds skip the fill entirely.
pub(crate) fn scratch(rows: usize, cols: usize) -> Matrix {
    let mut buf = POOL.with(|p| p.borrow_mut().take(rows * cols));
    if cfg!(debug_assertions) {
        buf.fill(f32::NAN);
    }
    Matrix::from_vec(rows, cols, buf)
}

/// A `rows x cols` matrix filled with `value`, drawn from this thread's pool.
pub(crate) fn full(rows: usize, cols: usize, value: f32) -> Matrix {
    let mut buf = POOL.with(|p| p.borrow_mut().take(rows * cols));
    buf.fill(value);
    Matrix::from_vec(rows, cols, buf)
}

/// A pooled copy of `m`.
pub(crate) fn clone_of(m: &Matrix) -> Matrix {
    let mut buf = POOL.with(|p| p.borrow_mut().take(m.len()));
    buf.copy_from_slice(m.data());
    Matrix::from_vec(m.rows(), m.cols(), buf)
}

/// Returns a dead matrix's buffer to this thread's pool.
///
/// Always safe to skip: a buffer that never comes back is ordinary garbage.
pub(crate) fn put(m: Matrix) {
    POOL.with(|p| p.borrow_mut().put(m.into_vec()));
}

/// Counters for the calling thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            dropped: p.dropped,
            buffers: p.buffers,
            floats: p.floats,
        }
    })
}

/// Empties the calling thread's pool and zeroes its counters.
///
/// Benchmarks and tests call this between scenarios so hit rates and
/// steady-state allocation counts are attributable to one workload.
pub fn reset() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        reset();
        let a = zeros(4, 3);
        assert_eq!(stats().misses, 1);
        put(a);
        assert_eq!(stats().recycled, 1);
        let b = zeros(4, 3);
        assert_eq!(stats().hits, 1, "same-size request must reuse the buffer");
        assert!(b.data().iter().all(|&v| v == 0.0), "pooled zeros must be zeroed");
        put(b);
        reset();
    }

    #[test]
    fn scratch_reuses_without_zeroing_and_poisons_in_debug() {
        reset();
        let mut a = zeros(4, 3);
        a.data_mut().fill(3.25);
        put(a);
        let b = scratch(4, 3);
        assert_eq!(stats().hits, 1, "scratch must draw from the free list");
        if cfg!(debug_assertions) {
            assert!(
                b.data().iter().all(|v| v.is_nan()),
                "debug scratch must be NaN-poisoned, not stale"
            );
        }
        put(b);
        reset();
    }

    #[test]
    fn clone_of_copies_and_full_fills() {
        reset();
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let c = clone_of(&src);
        assert_eq!(c, src);
        put(c);
        let f = full(2, 2, 7.5);
        assert_eq!(stats().hits, 1);
        assert!(f.data().iter().all(|&v| v == 7.5), "recycled buffer must be refilled");
        reset();
    }

    #[test]
    fn class_cap_drops_excess_buffers() {
        reset();
        for _ in 0..MAX_BUFFERS_PER_CLASS + 3 {
            put(Matrix::zeros(2, 2));
        }
        let s = stats();
        assert_eq!(s.recycled as usize, MAX_BUFFERS_PER_CLASS);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.buffers, MAX_BUFFERS_PER_CLASS);
        reset();
    }

    #[test]
    fn zero_len_buffers_bypass_the_pool() {
        reset();
        let e = zeros(0, 5);
        assert_eq!(e.len(), 0);
        put(e);
        assert_eq!(stats(), PoolStats::default());
        reset();
    }
}
