//! Dataflow analysis of recorded tapes: liveness, interference and a
//! verified memory-reuse plan.
//!
//! A [`Tape`](crate::Tape) is a Wengert list — a flat, already-scheduled
//! dataflow graph. [`Tape::op_graph`] lowers it into a typed [`OpGraph`]
//! view (op name, shape, wiring, and each op's declared
//! [`GradReads`] contract), and [`plan_memory`] runs a pure static pass
//! over that view:
//!
//! 1. **Liveness** — every value gets a `[def, last_use]` interval on a
//!    shared timeline covering both sweeps: forward time `i` computes node
//!    `i`, backward time `n + (n - 1 - j)` runs node `j`'s backward. A
//!    value's last use is the latest of its forward consumers, the
//!    backward steps of consumers whose [`GradReads`] declare they
//!    dereference it, and its own backward step when the op reads its
//!    output. Shape-only reads count as reads: a released buffer loses
//!    its shape along with its data.
//! 2. **Interference + slots** — values whose intervals overlap interfere;
//!    a greedy linear scan over def order colors non-pinned values onto
//!    buffer slots, reusing a slot as soon as its previous tenant's
//!    interval has closed (strictly — a value being read while its
//!    consumer is computed still interferes with that consumer).
//! 3. **In-place aliasing** — for ops whose kernels could write their
//!    output over an input ([`inplace_positions`]), the pass records the
//!    pairs where that is provably safe: single consumer, matching shape,
//!    source not pinned, and nothing (including the op's own backward)
//!    reading the source afterwards.
//!
//! The emitted [`MemPlan`] is *proven before use*: [`check_memplan`] is an
//! independent verifier in the style of [`crate::analysis::check_plan`]
//! that recomputes reachability and the liveness lower bounds from the
//! graph and rejects any plan that releases a value too early, overlaps
//! two tenants in one slot, undersizes a slot, claims an illegal alias, or
//! disagrees about dead ops. [`Tape::memplan`] never returns an unchecked
//! plan; a violation panics through telemetry (`dataflow.bad_memplan`),
//! because executing under a bad plan would read freed buffers.
//!
//! [`Tape::backward_measured`](crate::Tape::backward_measured) consumes the
//! plan: it releases each tape value into the [`crate::pool`] the moment
//! its interval closes, so backward-pass gradient buffers are drawn from
//! the memory the forward pass no longer needs, and reports actual
//! peak-resident bytes next to the plan's prediction.
//!
//! This module is also the seed of the ROADMAP-1 typed inference graph:
//! dead-op elimination and the in-place map are its first two optimization
//! passes, and `OpGraph` is the IR they run on.

use crate::tape::{Tape, Tensor};

/// Which forward values an op's backward pass dereferences.
///
/// "Dereferences" includes shape-only reads: the planner frees a value by
/// swapping in an empty matrix, which loses the shape along with the data.
/// The conservative default ([`GradReads::ALL`]) declares everything read,
/// which is always safe and merely forfeits reuse.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GradReads {
    /// `backward` dereferences the forward output (value or shape).
    pub out: bool,
    /// Which input positions `backward` dereferences (value or shape).
    pub inputs: InputReads,
}

/// Input positions an op's backward pass dereferences.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InputReads {
    /// Backward touches no input value.
    None,
    /// Backward may touch every input value.
    All,
    /// Backward touches exactly these input positions.
    Only(&'static [usize]),
}

impl GradReads {
    /// Conservative contract: backward may read everything.
    pub const ALL: Self = Self { out: true, inputs: InputReads::All };
    /// Backward reads neither output nor inputs (everything it needs was
    /// saved at record time, or the rule only touches the incoming grad).
    pub const NONE: Self = Self { out: false, inputs: InputReads::None };
    /// Backward reads only the forward output (activations like `relu`).
    pub const OUT_ONLY: Self = Self { out: true, inputs: InputReads::None };
    /// Backward reads every input but not the output (e.g. `matmul`).
    pub const INPUTS_ONLY: Self = Self { out: false, inputs: InputReads::All };

    /// Backward reads only the listed input positions, not the output.
    pub const fn inputs_at(positions: &'static [usize]) -> Self {
        Self { out: false, inputs: InputReads::Only(positions) }
    }

    /// Whether this contract permits backward to dereference input `pos`.
    pub fn reads_input(&self, pos: usize) -> bool {
        match self.inputs {
            InputReads::None => false,
            InputReads::All => true,
            InputReads::Only(ps) => ps.contains(&pos),
        }
    }
}

/// One tape node in the typed op-graph view.
#[derive(Clone, Debug)]
pub struct OpNode {
    /// Node index on the tape (also its forward timestamp).
    pub index: usize,
    /// Op name as declared by [`Op::name`](crate::tape::Op::name).
    pub op: &'static str,
    /// Recorded output shape.
    pub shape: (usize, usize),
    /// Recorded output length in scalars.
    pub len: usize,
    /// Input node indices, in wiring order.
    pub inputs: Vec<usize>,
    /// True for input/param leaves (no tape inputs).
    pub is_leaf: bool,
    /// True for parameter leaves.
    pub is_param: bool,
    /// The op's declared backward-read contract.
    pub grad_reads: GradReads,
}

/// Typed dataflow view of one recorded tape.
#[derive(Clone, Debug)]
pub struct OpGraph {
    pub nodes: Vec<OpNode>,
    /// The loss node the backward sweep starts from, when known.
    pub output: Option<usize>,
}

impl OpGraph {
    /// Per-node reachability from the output via a reverse walk over
    /// inputs. With no output, nothing is reachable. This is the one
    /// reachability implementation shared with [`Tape::audit`], so the
    /// audit's dead-compute report and the planner's dead list cannot
    /// disagree.
    pub fn reachable(&self) -> Vec<bool> {
        let mut reachable = vec![false; self.nodes.len()];
        let Some(out) = self.output else { return reachable };
        let mut stack = vec![out];
        reachable[out] = true;
        while let Some(i) = stack.pop() {
            for &t in &self.nodes[i].inputs {
                if !reachable[t] {
                    reachable[t] = true;
                    stack.push(t);
                }
            }
        }
        reachable
    }

    /// Forward-consumer count per node, over *all* recorded nodes (dead
    /// consumers still read their inputs during the eager forward pass).
    pub fn fanout(&self) -> Vec<usize> {
        let mut fan = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &t in &node.inputs {
                fan[t] += 1;
            }
        }
        fan
    }

    /// Timestamp of node `j`'s backward step on the shared timeline.
    pub fn bwd_time(&self, j: usize) -> usize {
        let n = self.nodes.len();
        n + (n - 1 - j)
    }

    /// One past the last timestamp; pinned values live until here.
    pub fn end_time(&self) -> usize {
        2 * self.nodes.len()
    }

    /// Whether a value must stay resident for the tape's whole lifetime:
    /// leaves (their buffers are shared with the caller or the
    /// [`crate::VarStore`]) and the output node (the caller reads the
    /// loss after backward).
    pub fn pinned(&self, v: usize) -> bool {
        self.nodes[v].is_leaf || self.output == Some(v)
    }
}

/// Input positions an op's forward kernel could write its output over,
/// were the tape executed from a plan instead of eagerly (elementwise
/// same-shape kernels only; anything reading across rows or columns is
/// excluded). This is the per-op in-place contract table — the alias map
/// in a [`MemPlan`] only ever pairs an op with a position listed here.
pub fn inplace_positions(op: &str) -> &'static [usize] {
    match op {
        // Binary elementwise: the output may overwrite either operand.
        "add" | "sub" | "mul" => &[0, 1],
        // Unary elementwise (incl. the scalar-gate multiply, whose dense
        // operand is position 0).
        "scale" | "add_scalar" | "mul_scalar_tensor" | "relu" | "leaky_relu" | "elu" | "tanh"
        | "sigmoid" | "abs" | "dropout" => &[0],
        _ => &[],
    }
}

/// Planned lifetime and placement of one tape value.
#[derive(Clone, Debug)]
pub struct ValuePlan {
    /// Forward timestamp the value is defined at (== its node index).
    pub def: usize,
    /// Last timestamp the value is dereferenced at (inclusive);
    /// [`OpGraph::end_time`] for pinned values.
    pub last_use: usize,
    /// Value length in scalars.
    pub len: usize,
    /// Recorded shape, so a plan-driven executor can validate gradient
    /// shapes after the value itself has been released.
    pub shape: (usize, usize),
    /// Never released (leaves and the output).
    pub pinned: bool,
    /// Assigned buffer slot; `None` for pinned or zero-length values.
    pub slot: Option<usize>,
}

/// One provably-safe in-place opportunity: node `node` could write its
/// output over input `src` (wired at `input_pos`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AliasEntry {
    pub node: usize,
    pub input_pos: usize,
    pub src: usize,
}

/// A buffer-reuse plan for one recorded tape, emitted by [`plan_memory`]
/// and proven by [`check_memplan`] before any executor consumes it.
#[derive(Clone, Debug)]
pub struct MemPlan {
    /// One entry per tape node, indexed by node.
    pub values: Vec<ValuePlan>,
    /// Slot capacities in scalars; slot `s` holds any value with
    /// `len <= slots[s]` whose interval does not overlap a co-tenant.
    pub slots: Vec<usize>,
    /// Provably-safe in-place pairs (advisory for the future plan-driven
    /// executor; the eager tape does not rewrite history).
    pub aliases: Vec<AliasEntry>,
    /// Non-leaf op nodes the output does not depend on, in index order.
    pub dead: Vec<usize>,
    /// Peak resident bytes under this plan: values live for their planned
    /// intervals plus gradient buffers over their backward lifetimes.
    pub planned_peak_bytes: usize,
    /// Peak resident bytes with no plan: every value held to the end plus
    /// the same gradient traffic. This is what the eager tape does today.
    pub baseline_peak_bytes: usize,
    /// Total bytes of slotted values over total slot bytes; 1.0 means no
    /// reuse, higher means the slots are shared across lifetimes.
    pub reuse_ratio: f64,
}

/// Compact numbers for audit reports and JSON artifacts.
#[derive(Clone, Copy, Debug)]
pub struct MemSummary {
    pub planned_peak_bytes: usize,
    pub baseline_peak_bytes: usize,
    pub slots: usize,
    pub reuse_ratio: f64,
    pub dead_ops: usize,
}

impl MemPlan {
    pub fn summary(&self) -> MemSummary {
        MemSummary {
            planned_peak_bytes: self.planned_peak_bytes,
            baseline_peak_bytes: self.baseline_peak_bytes,
            slots: self.slots.len(),
            reuse_ratio: self.reuse_ratio,
            dead_ops: self.dead.len(),
        }
    }
}

impl std::fmt::Display for MemSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "planned peak {} B (baseline {} B), {} slot(s), reuse x{:.2}, {} dead op(s)",
            self.planned_peak_bytes,
            self.baseline_peak_bytes,
            self.slots,
            self.reuse_ratio,
            self.dead_ops
        )
    }
}

/// Why a [`MemPlan`] failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemPlanError {
    /// Plan and graph disagree about how many nodes exist.
    NodeCount { plan: usize, graph: usize },
    /// An interval is self-inconsistent (def must equal the node index,
    /// last_use must lie in `def..=end_time`).
    MalformedInterval { node: usize, def: usize, last_use: usize },
    /// A pinned value (leaf or output) is scheduled for release, or holds
    /// a slot it must not occupy.
    PinnedReleased { node: usize },
    /// A value is released before a consumer that provably dereferences
    /// it (`needed` is the verifier's lower bound, `planned` the plan's).
    LivenessTooShort { node: usize, consumer: usize, needed: usize, planned: usize },
    /// Two values with overlapping intervals share a slot.
    SlotOverlap { slot: usize, a: usize, b: usize },
    /// A slot's capacity does not cover a tenant.
    SlotTooSmall { slot: usize, node: usize, len: usize, capacity: usize },
    /// A value references a slot the plan never declared.
    SlotOutOfRange { node: usize, slot: usize },
    /// An alias entry violates the in-place contract.
    IllegalAlias { node: usize, input_pos: usize, reason: &'static str },
    /// The plan's dead list disagrees with reachability from the output.
    DeadMismatch { node: usize, listed: bool },
}

impl std::fmt::Display for MemPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemPlanError::NodeCount { plan, graph } => {
                write!(f, "plan covers {plan} node(s) but the graph has {graph}")
            }
            MemPlanError::MalformedInterval { node, def, last_use } => {
                write!(f, "node {node} has a malformed interval [{def}, {last_use}]")
            }
            MemPlanError::PinnedReleased { node } => {
                write!(f, "pinned node {node} is scheduled for release or slotted")
            }
            MemPlanError::LivenessTooShort { node, consumer, needed, planned } => write!(
                f,
                "node {node} is released at t={planned} but node {consumer} \
                 dereferences it at t={needed}"
            ),
            MemPlanError::SlotOverlap { slot, a, b } => {
                write!(f, "slot {slot} hosts nodes {a} and {b} with overlapping lifetimes")
            }
            MemPlanError::SlotTooSmall { slot, node, len, capacity } => {
                write!(f, "slot {slot} holds {capacity} scalar(s) but node {node} needs {len}")
            }
            MemPlanError::SlotOutOfRange { node, slot } => {
                write!(f, "node {node} references undeclared slot {slot}")
            }
            MemPlanError::IllegalAlias { node, input_pos, reason } => {
                write!(f, "alias of node {node} onto input {input_pos} is illegal: {reason}")
            }
            MemPlanError::DeadMismatch { node, listed } => {
                if *listed {
                    write!(f, "node {node} is listed dead but the output depends on it")
                } else {
                    write!(f, "node {node} is dead but missing from the dead list")
                }
            }
        }
    }
}

impl Tape {
    /// Lowers this tape into its typed op-graph view. `output` is the loss
    /// node when the tape will be differentiated; `None` analyzes the
    /// forward pass alone (nothing reachable, everything dead).
    pub fn op_graph(&self, output: Option<Tensor>) -> OpGraph {
        let nodes = (0..self.len())
            .map(|i| {
                let node = self.node(i);
                OpNode {
                    index: i,
                    op: node.op.name(),
                    shape: node.value.shape(),
                    len: node.value.len(),
                    inputs: node.inputs.iter().map(|t| t.index()).collect(),
                    is_leaf: node.inputs.is_empty(),
                    is_param: node.param.is_some(),
                    grad_reads: node.op.grad_reads(),
                }
            })
            .collect();
        OpGraph { nodes, output: output.map(|t| t.index()) }
    }

    /// Plans buffer reuse for a backward sweep from `output` and proves
    /// the plan with [`check_memplan`] before returning it.
    ///
    /// # Panics
    /// Panics (through telemetry, event `dataflow.bad_memplan`) if the
    /// generated plan fails its own verifier — executing under a bad plan
    /// would read released buffers, so continuing is never an option.
    pub fn memplan(&self, output: Tensor) -> MemPlan {
        let graph = self.op_graph(Some(output));
        let plan = plan_memory(&graph);
        if let Err(err) = check_memplan(&graph, &plan) {
            deny_memplan(&err);
        }
        if sane_telemetry::active() {
            sane_telemetry::gauge_max(
                "dataflow.planned_peak_bytes",
                plan.planned_peak_bytes as f64,
            );
            sane_telemetry::gauge_max(
                "dataflow.baseline_peak_bytes",
                plan.baseline_peak_bytes as f64,
            );
        }
        plan
    }
}

/// Computes liveness, slots, aliases and peak predictions for one graph.
/// Pure: no telemetry, no panics, deterministic for a given graph.
pub fn plan_memory(graph: &OpGraph) -> MemPlan {
    let n = graph.nodes.len();
    let end = graph.end_time();
    let reach = graph.reachable();
    let fanout = graph.fanout();

    // Liveness: def at the node's own forward timestamp; last use is the
    // max over forward consumers, declared backward reads, and (for
    // pinned values) the end of the timeline.
    let mut last_use: Vec<usize> = (0..n).collect();
    for c in 0..n {
        for (p, &u) in graph.nodes[c].inputs.iter().enumerate() {
            last_use[u] = last_use[u].max(c);
            if reach[c] && graph.nodes[c].grad_reads.reads_input(p) {
                last_use[u] = last_use[u].max(graph.bwd_time(c));
            }
        }
    }
    for v in 0..n {
        if reach[v] && !graph.nodes[v].is_leaf && graph.nodes[v].grad_reads.out {
            last_use[v] = last_use[v].max(graph.bwd_time(v));
        }
        if graph.pinned(v) {
            last_use[v] = end;
        }
    }

    // In-place aliases: node v may write over input u iff the op's kernel
    // is elementwise in that position, shapes match, v is u's only
    // consumer, u is not pinned, and nothing after v's forward step —
    // including v's own backward — dereferences u. The last condition is
    // exactly `last_use[u] == def(v)`.
    let mut aliases = Vec::new();
    for v in 0..n {
        for (p, &u) in graph.nodes[v].inputs.iter().enumerate() {
            if inplace_positions(graph.nodes[v].op).contains(&p)
                && graph.nodes[u].shape == graph.nodes[v].shape
                && fanout[u] == 1
                && !graph.pinned(u)
                && last_use[u] == v
            {
                aliases.push(AliasEntry { node: v, input_pos: p, src: u });
            }
        }
    }

    // Greedy linear-scan slot coloring over def order. Expiry is strict
    // (`last_use < def`): a value read by the op being computed still
    // interferes with that op's output.
    let mut slots: Vec<usize> = Vec::new();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut active: Vec<(usize, usize)> = Vec::new(); // (last_use, slot)
    let mut free: Vec<usize> = Vec::new();
    for v in 0..n {
        if graph.pinned(v) || graph.nodes[v].len == 0 {
            continue;
        }
        active.retain(|&(lu, s)| {
            if lu < v {
                free.push(s);
                false
            } else {
                true
            }
        });
        let len = graph.nodes[v].len;
        // Best fit: the smallest free slot that already covers `len`;
        // otherwise grow the largest free slot; otherwise open a new one.
        // Ties break on slot id for determinism.
        free.sort_unstable();
        let mut best_fit: Option<usize> = None; // position in `free`
        let mut largest: Option<usize> = None;
        for (k, &s) in free.iter().enumerate() {
            if slots[s] >= len && best_fit.is_none_or(|b| slots[s] < slots[free[b]]) {
                best_fit = Some(k);
            }
            if largest.is_none_or(|l| slots[s] > slots[free[l]]) {
                largest = Some(k);
            }
        }
        let slot = match best_fit.or(largest) {
            Some(k) => free.swap_remove(k),
            None => {
                slots.push(0);
                slots.len() - 1
            }
        };
        slots[slot] = slots[slot].max(len);
        assignment[v] = Some(slot);
        active.push((last_use[v], slot));
    }

    let dead: Vec<usize> = (0..n).filter(|&v| !graph.nodes[v].is_leaf && !reach[v]).collect();

    // Peak prediction: an exact event sweep over value intervals plus
    // gradient intervals. Gradients are modeled per node: born at the
    // backward step of the node's latest-processed consumer (the seed for
    // the output node is born when the backward sweep starts), released
    // at the node's own backward step, except parameter gradients which
    // the caller keeps until the optimizer step.
    let mut grad_intervals: Vec<(usize, usize, usize)> = Vec::new(); // (start, end, bytes)
    for v in 0..n {
        if !reach[v] || graph.nodes[v].len == 0 {
            continue;
        }
        let consumers: Vec<usize> =
            (0..n).filter(|&c| reach[c] && graph.nodes[c].inputs.contains(&v)).collect();
        let mut start = consumers.iter().map(|&c| graph.bwd_time(c)).min();
        if graph.output == Some(v) {
            start = Some(start.map_or(n, |s| s.min(n)));
        }
        let Some(start) = start else { continue };
        let g_end = if graph.nodes[v].is_param { end } else { graph.bwd_time(v) };
        grad_intervals.push((start, g_end, graph.nodes[v].len * 4));
    }
    let sweep = |value_end: &dyn Fn(usize) -> usize| -> usize {
        let mut delta = vec![0i64; end + 2];
        for v in 0..n {
            let bytes = (graph.nodes[v].len * 4) as i64;
            delta[v] += bytes;
            delta[value_end(v) + 1] -= bytes;
        }
        for &(s, e, b) in &grad_intervals {
            delta[s] += b as i64;
            delta[e + 1] -= b as i64;
        }
        let mut peak = 0i64;
        let mut cur = 0i64;
        for d in delta {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    };
    let planned_peak_bytes = sweep(&|v| last_use[v]);
    let baseline_peak_bytes = sweep(&|_| end);

    let slotted_bytes: usize =
        (0..n).filter(|&v| assignment[v].is_some()).map(|v| graph.nodes[v].len * 4).sum();
    let slot_bytes: usize = slots.iter().map(|c| c * 4).sum();
    let reuse_ratio = if slot_bytes == 0 { 1.0 } else { slotted_bytes as f64 / slot_bytes as f64 };

    let values = (0..n)
        .map(|v| ValuePlan {
            def: v,
            last_use: last_use[v],
            len: graph.nodes[v].len,
            shape: graph.nodes[v].shape,
            pinned: graph.pinned(v),
            slot: assignment[v],
        })
        .collect();

    MemPlan { values, slots, aliases, dead, planned_peak_bytes, baseline_peak_bytes, reuse_ratio }
}

/// Proves a [`MemPlan`] safe against its graph, recomputing reachability
/// and every liveness lower bound independently of [`plan_memory`].
///
/// The checks are one-sided in the safety direction: a plan that keeps a
/// value alive *longer* than necessary passes (it only wastes memory); a
/// plan that releases a value any consumer still dereferences, overlaps
/// slot tenants, undersizes a slot, claims an unproven alias, or
/// mislabels dead ops is rejected.
pub fn check_memplan(graph: &OpGraph, plan: &MemPlan) -> Result<(), MemPlanError> {
    let n = graph.nodes.len();
    if plan.values.len() != n {
        return Err(MemPlanError::NodeCount { plan: plan.values.len(), graph: n });
    }
    let end = graph.end_time();
    let reach = graph.reachable();
    let fanout = graph.fanout();

    // Interval well-formedness and pinning.
    for (v, vp) in plan.values.iter().enumerate() {
        if vp.def != v || vp.last_use < vp.def || vp.last_use > end {
            return Err(MemPlanError::MalformedInterval {
                node: v,
                def: vp.def,
                last_use: vp.last_use,
            });
        }
        let pinned = graph.pinned(v);
        if pinned && (vp.last_use != end || vp.slot.is_some() || !vp.pinned) {
            return Err(MemPlanError::PinnedReleased { node: v });
        }
    }

    // Liveness lower bounds, recomputed from the graph edge by edge.
    for c in 0..n {
        for (p, &u) in graph.nodes[c].inputs.iter().enumerate() {
            let mut needed = c; // forward read
            if reach[c] && graph.nodes[c].grad_reads.reads_input(p) {
                needed = needed.max(graph.bwd_time(c));
            }
            if plan.values[u].last_use < needed {
                return Err(MemPlanError::LivenessTooShort {
                    node: u,
                    consumer: c,
                    needed,
                    planned: plan.values[u].last_use,
                });
            }
        }
    }
    for v in 0..n {
        if reach[v] && !graph.nodes[v].is_leaf && graph.nodes[v].grad_reads.out {
            let needed = graph.bwd_time(v);
            if plan.values[v].last_use < needed {
                return Err(MemPlanError::LivenessTooShort {
                    node: v,
                    consumer: v,
                    needed,
                    planned: plan.values[v].last_use,
                });
            }
        }
    }

    // Slot discipline: declared, sized, and exclusively tenanted.
    let mut by_slot: Vec<Vec<usize>> = vec![Vec::new(); plan.slots.len()];
    for (v, vp) in plan.values.iter().enumerate() {
        let Some(s) = vp.slot else { continue };
        if s >= plan.slots.len() {
            return Err(MemPlanError::SlotOutOfRange { node: v, slot: s });
        }
        if plan.slots[s] < vp.len {
            return Err(MemPlanError::SlotTooSmall {
                slot: s,
                node: v,
                len: vp.len,
                capacity: plan.slots[s],
            });
        }
        by_slot[s].push(v);
    }
    for (s, tenants) in by_slot.iter().enumerate() {
        // Values arrive in def order (ascending node index), so adjacent
        // pairs suffice for pairwise disjointness.
        for w in tenants.windows(2) {
            let (a, b) = (w[0], w[1]);
            if plan.values[a].last_use >= plan.values[b].def {
                return Err(MemPlanError::SlotOverlap { slot: s, a, b });
            }
        }
    }

    // Aliases: each claimed pair re-proven from the graph.
    for al in &plan.aliases {
        let AliasEntry { node, input_pos, src } = *al;
        let reason = if node >= n || input_pos >= graph.nodes[node].inputs.len() {
            Some("no such wiring")
        } else if graph.nodes[node].inputs[input_pos] != src {
            Some("source is not wired at that position")
        } else if !inplace_positions(graph.nodes[node].op).contains(&input_pos) {
            Some("op kernel is not in-place capable at that position")
        } else if graph.nodes[node].grad_reads.reads_input(input_pos) {
            Some("op backward dereferences the overwritten input")
        } else if graph.nodes[src].shape != graph.nodes[node].shape {
            Some("shapes differ")
        } else if fanout[src] != 1 {
            Some("source has other consumers")
        } else if graph.pinned(src) {
            Some("source is pinned")
        } else if plan.values[src].last_use > node {
            Some("source outlives the overwrite")
        } else {
            None
        };
        if let Some(reason) = reason {
            return Err(MemPlanError::IllegalAlias { node, input_pos, reason });
        }
    }

    // Dead list: exactly the unreachable non-leaf ops, both directions.
    let mut listed = vec![false; n];
    for &d in &plan.dead {
        if d >= n || graph.nodes[d].is_leaf || reach[d] {
            return Err(MemPlanError::DeadMismatch {
                node: d.min(n.saturating_sub(1)),
                listed: true,
            });
        }
        listed[d] = true;
    }
    for v in 0..n {
        if !graph.nodes[v].is_leaf && !reach[v] && !listed[v] {
            return Err(MemPlanError::DeadMismatch { node: v, listed: false });
        }
    }

    Ok(())
}

/// Escalates a failed memplan check: emits a telemetry error event and
/// panics. Executing under an unsound plan would read released buffers,
/// so continuing is never an option (same policy as
/// [`crate::analysis::deny_shadow`]).
///
/// # Panics
/// Always panics.
pub(crate) fn deny_memplan(err: &MemPlanError) -> ! {
    sane_telemetry::error("dataflow.bad_memplan", &[("report", err.to_string().into())]);
    panic!("tape produced an unsound memory plan: {err}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::VarStore;

    #[test]
    fn empty_tape_plans_clean() {
        let tape = Tape::new(0);
        let graph = tape.op_graph(None);
        let plan = plan_memory(&graph);
        assert!(check_memplan(&graph, &plan).is_ok());
        assert_eq!(plan.planned_peak_bytes, 0);
        assert_eq!(plan.baseline_peak_bytes, 0);
        assert!(plan.slots.is_empty());
        assert!(plan.dead.is_empty());
    }

    #[test]
    fn single_op_tape_pins_leaf_and_output() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let loss = tape.sum_all(x);
        let plan = tape.memplan(loss);
        assert!(plan.values[x.index()].pinned, "leaf must be pinned");
        assert!(plan.values[loss.index()].pinned, "output must be pinned");
        assert!(plan.values.iter().all(|v| v.slot.is_none()), "nothing to slot");
        assert!(plan.dead.is_empty());
    }

    #[test]
    fn backward_only_use_extends_liveness_to_backward_step() {
        let mut store = VarStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.5; 4]));
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let wt = tape.param(&store, w);
        let h = tape.matmul(x, wt);
        let a = tape.relu(h);
        let loss = tape.mean_all(a);
        let graph = tape.op_graph(Some(loss));
        let plan = tape.memplan(loss);
        // relu's backward reads its own output: after mean_all consumes it
        // in the forward pass, `a` is used only in the backward sweep.
        assert_eq!(plan.values[a.index()].last_use, graph.bwd_time(a.index()));
        // relu does not read its input, and matmul's backward is h's
        // producer, not consumer — h dies at relu's forward step.
        assert_eq!(plan.values[h.index()].last_use, a.index());
    }

    #[test]
    fn zero_sized_values_get_no_slot() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::zeros(0, 5));
        let a = tape.relu(x);
        let b = tape.relu(a);
        let loss = tape.sum_all(b);
        let plan = tape.memplan(loss);
        assert!(plan.values.iter().all(|v| v.slot.is_none()));
        assert!(check_memplan(&tape.op_graph(Some(loss)), &plan).is_ok());
    }

    #[test]
    fn forward_only_chain_reuses_slots() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(8, 8, vec![1.0; 64]));
        let mut h = x;
        for _ in 0..6 {
            h = tape.add_scalar(h, 1.0); // backward reads nothing
        }
        let loss = tape.sum_all(h);
        let plan = tape.memplan(loss);
        let slotted = plan.values.iter().filter(|v| v.slot.is_some()).count();
        assert_eq!(slotted, 6, "every intermediate between the pinned leaf and output");
        assert!(
            plan.slots.len() < slotted,
            "a dead-after-one-step chain must share slots, got {} slot(s) for {slotted} values",
            plan.slots.len()
        );
        assert!(plan.reuse_ratio > 1.0);
        assert!(plan.planned_peak_bytes < plan.baseline_peak_bytes);
    }

    #[test]
    fn activation_chain_interferes_through_backward() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(4, 4, vec![1.0; 16]));
        let a = tape.relu(x);
        let b = tape.relu(a);
        let loss = tape.sum_all(b);
        let graph = tape.op_graph(Some(loss));
        let plan = tape.memplan(loss);
        // Each relu output is read at its own backward step, so the two
        // activations interfere and may not share a slot.
        assert_eq!(plan.values[a.index()].last_use, graph.bwd_time(a.index()));
        assert_ne!(plan.values[a.index()].slot, plan.values[b.index()].slot);
    }

    #[test]
    fn inplace_alias_found_for_elementwise_nonreading_op() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(3, 3, vec![1.0; 9]));
        let y = tape.constant(Matrix::from_vec(3, 3, vec![2.0; 9]));
        let h = tape.add(x, y);
        let a = tape.relu(h); // relu reads out, not input -> h may be overwritten
        let loss = tape.sum_all(a);
        let plan = tape.memplan(loss);
        assert!(
            plan.aliases.contains(&AliasEntry { node: a.index(), input_pos: 0, src: h.index() }),
            "expected relu-over-add alias, got {:?}",
            plan.aliases
        );
    }

    #[test]
    fn no_alias_when_backward_reads_the_input() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(3, 3, vec![1.0; 9]));
        let y = tape.constant(Matrix::from_vec(3, 3, vec![2.0; 9]));
        let h = tape.add(x, y);
        let a = tape.leaky_relu(h, 0.1); // backward reads inputs[0]
        let loss = tape.sum_all(a);
        let plan = tape.memplan(loss);
        assert!(
            plan.aliases.iter().all(|al| al.node != a.index()),
            "leaky_relu dereferences its input in backward, got {:?}",
            plan.aliases
        );
    }

    #[test]
    fn dead_ops_are_listed_and_matched() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let wasted = tape.relu(x);
        let _wasted2 = tape.relu(wasted);
        let loss = tape.sum_all(x);
        let plan = tape.memplan(loss);
        assert_eq!(plan.dead, vec![wasted.index(), _wasted2.index()]);
    }

    #[test]
    fn verifier_rejects_overlapping_slots() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(4, 4, vec![1.0; 16]));
        let a = tape.relu(x);
        let b = tape.relu(a);
        let loss = tape.sum_all(b);
        let graph = tape.op_graph(Some(loss));
        let mut plan = plan_memory(&graph);
        // Corrupt: force both interfering activations into slot 0.
        plan.values[a.index()].slot = Some(0);
        plan.values[b.index()].slot = Some(0);
        assert!(matches!(
            check_memplan(&graph, &plan),
            Err(MemPlanError::SlotOverlap { slot: 0, .. })
        ));
    }

    #[test]
    fn verifier_rejects_early_release() {
        let mut store = VarStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.5; 4]));
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let wt = tape.param(&store, w);
        let h = tape.matmul(x, wt);
        let loss = tape.sum_all(h);
        let graph = tape.op_graph(Some(loss));
        let mut plan = plan_memory(&graph);
        // Corrupt: matmul's backward reads h's inputs; the verifier must
        // notice when the plan pretends x-reads end at the forward step.
        // (x is pinned as a leaf, so corrupt the interval wholesale.)
        plan.values[x.index()].last_use = h.index();
        assert!(check_memplan(&graph, &plan).is_err());
    }

    #[test]
    fn verifier_rejects_undersized_slot() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(4, 4, vec![1.0; 16]));
        let a = tape.add_scalar(x, 1.0);
        let b = tape.add_scalar(a, 1.0);
        let loss = tape.sum_all(b);
        let graph = tape.op_graph(Some(loss));
        let mut plan = plan_memory(&graph);
        let s = plan.values[a.index()].slot.expect("a is slotted"); // lint:allow(expect) -- a is slotted
        plan.slots[s] = 1;
        assert!(matches!(check_memplan(&graph, &plan), Err(MemPlanError::SlotTooSmall { .. })));
    }

    #[test]
    fn verifier_rejects_fabricated_alias() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(3, 3, vec![1.0; 9]));
        let h = tape.add_scalar(x, 1.0);
        let a = tape.leaky_relu(h, 0.1);
        let loss = tape.sum_all(a);
        let graph = tape.op_graph(Some(loss));
        let mut plan = plan_memory(&graph);
        plan.aliases.push(AliasEntry { node: a.index(), input_pos: 0, src: h.index() });
        assert!(matches!(check_memplan(&graph, &plan), Err(MemPlanError::IllegalAlias { .. })));
    }

    #[test]
    fn verifier_rejects_wrong_dead_list() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let _wasted = tape.relu(x);
        let loss = tape.sum_all(x);
        let graph = tape.op_graph(Some(loss));
        let mut plan = plan_memory(&graph);
        plan.dead.clear(); // hide the dead op
        assert!(matches!(
            check_memplan(&graph, &plan),
            Err(MemPlanError::DeadMismatch { listed: false, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "unsound memory plan")]
    fn deny_memplan_panics_with_the_report() {
        deny_memplan(&MemPlanError::SlotOverlap { slot: 0, a: 1, b: 2 });
    }

    /// The load-bearing guard for every [`GradReads`] override: gradients
    /// under plan-driven release must be bitwise identical to the eager
    /// sweep. An op that under-declares its backward reads would consume a
    /// released (empty) buffer here and panic or diverge.
    #[test]
    fn measured_backward_matches_eager_bitwise_and_reduces_peak() {
        let build = || {
            let mut store = VarStore::new();
            let w1 =
                store.add("w1", Matrix::from_fn(16, 16, |i, j| ((i * 7 + j) % 5) as f32 * 0.1));
            let w2 =
                store.add("w2", Matrix::from_fn(16, 16, |i, j| ((i + 3 * j) % 7) as f32 * 0.05));
            let mut tape = Tape::new(11);
            let x = tape.constant(Matrix::from_fn(16, 16, |i, j| (i + j) as f32 * 0.01));
            let p1 = tape.param(&store, w1);
            let p2 = tape.param(&store, w2);
            let h = tape.matmul(x, p1);
            let a = tape.relu(h);
            let d = tape.dropout(a, 0.25);
            let h2 = tape.matmul(d, p2);
            let b = tape.add_scalar(h2, 0.1);
            let c = tape.tanh(b);
            let loss = tape.mean_all(c);
            (tape, store, loss)
        };

        let (mut tape, store, loss) = build();
        let eager = tape.backward(loss);
        let plan = tape.memplan(loss);
        let (planned, stats) = tape.backward_measured(loss, Some(&plan));
        for id in store.ids() {
            let (a, b) = (eager.get(id), planned.get(id));
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.data(), b.data(), "param {id:?} diverged"),
                (None, None) => {}
                _ => panic!("param {id:?}: one sweep produced a gradient, the other did not"),
            }
        }
        assert!(stats.released_values > 0, "the fixture has releasable intermediates");

        // Identical tape, no plan: nothing released, peak strictly higher.
        let (mut tape2, _store2, loss2) = build();
        let (base_grads, base) = tape2.backward_measured(loss2, None);
        assert_eq!(base.released_values, 0);
        assert!(
            stats.peak_resident_bytes < base.peak_resident_bytes,
            "plan must reduce peak: {} vs {}",
            stats.peak_resident_bytes,
            base.peak_resident_bytes
        );
        for id in store.ids() {
            if let (Some(a), Some(b)) = (eager.get(id), base_grads.get(id)) {
                assert_eq!(a.data(), b.data(), "instrumented no-plan sweep diverged");
            }
        }
        eager.recycle();
        planned.recycle();
        base_grads.recycle();
    }

    /// The fused attention op declares the narrowest contract on the tape —
    /// backward reads only the messages; scores, output and alpha never
    /// survive as tape dependencies. Guard it the same way as the generic
    /// fixture: plan-driven release must stay bitwise equal to eager, and
    /// the planner must actually exploit the declaration by releasing
    /// intermediates (the score chain) before the backward sweep ends.
    #[test]
    fn fused_segment_attention_contract_releases_scores_and_stays_bitwise() {
        use crate::ops::Segments;
        let build = || {
            let segs = std::sync::Arc::new(Segments::from_lengths(&[5, 0, 7, 4]));
            let total = segs.total_len();
            let mut store = VarStore::new();
            let pm =
                store.add("m", Matrix::from_fn(total, 8, |i, j| ((i * 5 + j) % 9) as f32 * 0.1));
            let ps = store.add("s", Matrix::from_fn(total, 1, |i, _| (i % 7) as f32 * 0.2 - 0.5));
            let mut tape = Tape::new(13);
            let m = tape.param(&store, pm);
            let s0 = tape.param(&store, ps);
            let s1 = tape.tanh(s0); // an intermediate the planner can retire
            let att = tape.segment_attention(s1, m, &segs);
            let sq = tape.mul(att, att);
            let loss = tape.mean_all(sq);
            (tape, store, loss)
        };
        let (mut tape, store, loss) = build();
        let eager = tape.backward(loss);
        let plan = tape.memplan(loss);
        let (planned, stats) = tape.backward_measured(loss, Some(&plan));
        for id in store.ids() {
            match (eager.get(id), planned.get(id)) {
                (Some(a), Some(b)) => assert_eq!(a.data(), b.data(), "param {id:?} diverged"),
                (None, None) => {}
                _ => panic!("param {id:?}: one sweep produced a gradient, the other did not"),
            }
        }
        assert!(
            stats.released_values > 0,
            "the score chain must be releasable under the fused op's GradReads"
        );
        eager.recycle();
        planned.recycle();
    }

    #[test]
    fn plans_are_deterministic() {
        let build = || {
            let mut store = VarStore::new();
            let w = store.add("w", Matrix::from_vec(4, 4, vec![0.5; 16]));
            let mut tape = Tape::new(3);
            let x = tape.constant(Matrix::from_vec(4, 4, vec![1.0; 16]));
            let wt = tape.param(&store, w);
            let h = tape.matmul(x, wt);
            let a = tape.relu(h);
            let s = tape.add_scalar(a, 0.5);
            let loss = tape.mean_all(s);
            (tape.memplan(loss), store)
        };
        let (p1, _s1) = build();
        let (p2, _s2) = build();
        assert_eq!(p1.planned_peak_bytes, p2.planned_peak_bytes);
        assert_eq!(p1.slots, p2.slots);
        assert_eq!(p1.aliases, p2.aliases);
        let slots1: Vec<_> = p1.values.iter().map(|v| v.slot).collect();
        let slots2: Vec<_> = p2.values.iter().map(|v| v.slot).collect();
        assert_eq!(slots1, slots2);
    }
}
