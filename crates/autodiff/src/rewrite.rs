//! Graph-rewrite soundness: statically checked, golden-tested rewrites.
//!
//! A [`Rewrite`] names a pattern (the *original* subgraph) and its
//! *replacement*, both recorded on fixture tapes from the same inputs.
//! Every registered rewrite must discharge two kinds of obligation before
//! an optimizer may apply it:
//!
//! * **Static** ([`check_rewrite`]): both sides are abstractly evaluated
//!   with the rewrite's declared input domains pinned at the leaves
//!   (symbolic dims included — see [`crate::absint`]); the replacement
//!   must produce a provably equal shape, must not lose a NaN- or
//!   Inf-freedom guarantee the original established, and its value
//!   interval must stay inside the original's. Violations are typed
//!   [`RewriteError`]s, counted in telemetry.
//! * **Runtime** ([`golden_equivalence`]): forward values and per-param
//!   gradients must be bitwise identical between the two sides, at 1, 2
//!   and 4 worker threads (leaning on the determinism contract in
//!   [`crate::parallel`]). A gradient present on one side only must be
//!   numerically zero — that is exactly the dead-code case folding
//!   rewrites create.
//!
//! The built-in registry ([`builtin_rewrites`]) re-expresses the fused
//! attention ops (`segment_attention`, `gather_attention`) as checked
//! rewrites of their unfused chains, and adds constant folding of
//! zero/identity scales plus dead-branch elimination for zero-α mixtures.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::absint::{AbsVal, Dim, Interval};
use crate::ops::Segments;
use crate::tape::{Tape, Tensor, VarStore};
use crate::Matrix;

/// How closely the replacement must track the original numerically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Equivalence {
    /// Forward values and gradients must be bitwise identical (the
    /// default). Holds for rewrites that only change the schedule or the
    /// addressing — the determinism contract pins the arithmetic order.
    Bitwise,
    /// Each element must agree within `max_ulps` ULPs *or* `atol`
    /// absolutely — for rewrites that change the arithmetic itself (e.g.
    /// fusing a divide into a multiply-by-reciprocal, or swapping the
    /// scalar `exp` for the vectorized split). Cross-thread stability of
    /// each side individually is still checked bitwise.
    Approximate {
        /// Maximum units-in-the-last-place distance.
        max_ulps: u32,
        /// Absolute slack for near-zero cancellation.
        atol: f32,
    },
}

/// A registered graph rewrite: a matched pattern and its replacement,
/// recorded on caller-provided tapes from shared inputs.
pub trait Rewrite: Send + Sync {
    /// Registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// The numeric obligation [`golden_equivalence`] enforces between the
    /// two sides. Defaults to [`Equivalence::Bitwise`].
    fn equivalence(&self) -> Equivalence {
        Equivalence::Bitwise
    }

    /// The abstract domain assumed for each input, in wiring order.
    /// Symbolic dims (`Dim::Sym`) express node/edge-count polymorphism;
    /// the obligations are checked over these domains, not over one
    /// concrete fixture.
    fn input_domains(&self) -> Vec<AbsVal>;

    /// Which inputs are differentiable. Gradient golden-equivalence is
    /// only required for trainable inputs; a dead-branch rewrite may
    /// declare its folded constant (e.g. a zero architecture weight)
    /// non-trainable. Defaults to all-trainable.
    fn trainable(&self) -> Vec<bool> {
        self.input_domains().iter().map(|_| true).collect()
    }

    /// Samples one concrete instantiation of the inputs, inside the
    /// declared domains.
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix>;

    /// Records the original pattern; returns its output.
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor;

    /// Records the replacement subgraph; returns its output.
    fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor;
}

/// Why a rewrite failed its static obligations.
#[derive(Clone, Debug, PartialEq)]
pub enum RewriteError {
    /// The replacement's output shape is not provably the original's.
    ShapeMismatch {
        /// Rewrite name.
        rewrite: &'static str,
        /// Original output shape.
        original: (Dim, Dim),
        /// Replacement output shape.
        replacement: (Dim, Dim),
    },
    /// The original is NaN-free over the domain but the replacement is not.
    NanObligation {
        /// Rewrite name.
        rewrite: &'static str,
    },
    /// The original is Inf-free over the domain but the replacement is not.
    InfObligation {
        /// Rewrite name.
        rewrite: &'static str,
    },
    /// The replacement's value interval escapes the original's.
    IntervalEscape {
        /// Rewrite name.
        rewrite: &'static str,
        /// Original output interval.
        original: Interval,
        /// Replacement output interval.
        replacement: Interval,
    },
    /// One side failed abstract evaluation (or the fixture escaped its own
    /// declared domain), so the obligations could not be discharged.
    AnalysisFailed {
        /// Rewrite name.
        rewrite: &'static str,
        /// Which side failed: `"original"`, `"replacement"` or `"fixture"`.
        side: &'static str,
        /// First violation message.
        message: String,
    },
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::ShapeMismatch { rewrite, original, replacement } => write!(
                f,
                "rewrite `{rewrite}`: replacement shape {}x{} is not provably the original \
                 {}x{}",
                replacement.0, replacement.1, original.0, original.1
            ),
            RewriteError::NanObligation { rewrite } => write!(
                f,
                "rewrite `{rewrite}`: original is NaN-free over the domain, replacement is not"
            ),
            RewriteError::InfObligation { rewrite } => write!(
                f,
                "rewrite `{rewrite}`: original is Inf-free over the domain, replacement is not"
            ),
            RewriteError::IntervalEscape { rewrite, original, replacement } => write!(
                f,
                "rewrite `{rewrite}`: replacement interval {replacement} escapes the original \
                 {original}"
            ),
            RewriteError::AnalysisFailed { rewrite, side, message } => {
                write!(
                    f,
                    "rewrite `{rewrite}`: abstract evaluation of the {side} failed: {message}"
                )
            }
        }
    }
}

/// The discharged static obligations of one rewrite.
#[derive(Clone, Debug)]
pub struct RewriteCheck {
    /// Abstract output of the original pattern.
    pub original: AbsVal,
    /// Abstract output of the replacement.
    pub replacement: AbsVal,
}

fn abs_output(
    rw: &dyn Rewrite,
    side: &'static str,
    inputs: &[Matrix],
    domains: &[AbsVal],
) -> Result<AbsVal, RewriteError> {
    let mut tape = Tape::new(0);
    let tensors: Vec<Tensor> = inputs.iter().map(|m| tape.input(Arc::new(m.clone()))).collect();
    let out = match side {
        "original" => rw.original(&mut tape, &tensors),
        _ => rw.replacement(&mut tape, &tensors),
    };
    let assumptions: Vec<(Tensor, AbsVal)> =
        tensors.iter().copied().zip(domains.iter().cloned()).collect();
    let report = tape.absint_assuming(&assumptions);
    if let Some(v) = report.violations.first() {
        return Err(RewriteError::AnalysisFailed {
            rewrite: rw.name(),
            side,
            message: v.to_string(),
        });
    }
    Ok(*report.value(out))
}

/// Statically verifies the rewrite's shape/NaN/Inf/interval obligations
/// over its declared input domains. Failures are emitted to telemetry and
/// counted under `absint.rewrite_rejected`.
pub fn check_rewrite(rw: &dyn Rewrite) -> Result<RewriteCheck, RewriteError> {
    let result = check_rewrite_inner(rw);
    match &result {
        Ok(_) => sane_telemetry::counter_add("absint.rewrite_checked", 1),
        Err(e) => {
            sane_telemetry::counter_add("absint.rewrite_rejected", 1);
            sane_telemetry::error(
                "absint.rewrite_rejected",
                &[("rewrite", rw.name().to_string().into()), ("error", e.to_string().into())],
            );
        }
    }
    result
}

fn check_rewrite_inner(rw: &dyn Rewrite) -> Result<RewriteCheck, RewriteError> {
    let domains = rw.input_domains();
    let inputs = rw.sample_inputs(0);
    assert_eq!(
        domains.len(),
        inputs.len(),
        "rewrite `{}` declares {} domains but samples {} inputs",
        rw.name(),
        domains.len(),
        inputs.len()
    );
    for (i, (m, d)) in inputs.iter().zip(&domains).enumerate() {
        if let Err(message) = d.over_approximates(m) {
            return Err(RewriteError::AnalysisFailed {
                rewrite: rw.name(),
                side: "fixture",
                message: format!("sampled input {i} escapes its declared domain: {message}"),
            });
        }
    }

    let orig = abs_output(rw, "original", &inputs, &domains)?;
    let repl = abs_output(rw, "replacement", &inputs, &domains)?;

    if !repl.rows.provably_equal(orig.rows) || !repl.cols.provably_equal(orig.cols) {
        return Err(RewriteError::ShapeMismatch {
            rewrite: rw.name(),
            original: (orig.rows, orig.cols),
            replacement: (repl.rows, repl.cols),
        });
    }
    if orig.nan_free && !repl.nan_free {
        return Err(RewriteError::NanObligation { rewrite: rw.name() });
    }
    if orig.inf_free && !repl.inf_free {
        return Err(RewriteError::InfObligation { rewrite: rw.name() });
    }
    if !repl.range.subset_of(orig.range) {
        return Err(RewriteError::IntervalEscape {
            rewrite: rw.name(),
            original: orig.range,
            replacement: repl.range,
        });
    }
    Ok(RewriteCheck { original: orig, replacement: repl })
}

/// One side's concrete run: forward bits plus per-param gradient bits.
struct SideRun {
    forward: Vec<u32>,
    shape: (usize, usize),
    grads: Vec<Option<Vec<u32>>>,
}

fn run_side(
    rw: &dyn Rewrite,
    side: &'static str,
    inputs: &[Matrix],
    trainable: &[bool],
) -> SideRun {
    let mut store = VarStore::new();
    let ids: Vec<Option<crate::tape::ParamId>> = inputs
        .iter()
        .zip(trainable)
        .enumerate()
        .map(|(i, (m, &tr))| tr.then(|| store.add(format!("in{i}"), m.clone())))
        .collect();
    let mut tape = Tape::new(0);
    let tensors: Vec<Tensor> = inputs
        .iter()
        .zip(&ids)
        .map(|(m, id)| match id {
            Some(id) => tape.param(&store, *id),
            None => tape.input(Arc::new(m.clone())),
        })
        .collect();
    let out = match side {
        "original" => rw.original(&mut tape, &tensors),
        _ => rw.replacement(&mut tape, &tensors),
    };
    let value = tape.value(out);
    let shape = value.shape();
    let forward: Vec<u32> = value.data().iter().map(|v| v.to_bits()).collect();
    let seed = Matrix::full(shape.0, shape.1, 1.0);
    let grads = tape.backward_seeded(out, seed);
    let grads = ids
        .iter()
        .map(|id| {
            id.and_then(|id| grads.get(id)).map(|g| g.data().iter().map(|v| v.to_bits()).collect())
        })
        .collect();
    SideRun { forward, shape, grads }
}

fn all_zero(bits: &[u32]) -> bool {
    // +0.0 and -0.0 both count: a dead branch may produce negative zeros.
    bits.iter().all(|&b| f32::from_bits(b) == 0.0)
}

/// ULP distance between two floats: bit patterns mapped onto a single
/// monotone integer line (negatives mirrored below zero, `-0.0` and
/// `+0.0` coincide). NaN anywhere is infinitely far.
fn ulp_diff(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let key = |x: f32| -> i64 {
        let i = i64::from(x.to_bits() as i32); // lint:allow(lossy-cast) -- bit-pattern reinterpretation, not a value cast
        if i < 0 {
            i64::from(i32::MIN) - i
        } else {
            i
        }
    };
    key(a).abs_diff(key(b))
}

fn bits_equal(a: &[u32], b: &[u32], eq: Equivalence) -> bool {
    match eq {
        Equivalence::Bitwise => a == b,
        Equivalence::Approximate { max_ulps, atol } => {
            a.len() == b.len()
                && a.iter().zip(b).all(|(&x, &y)| {
                    let (x, y) = (f32::from_bits(x), f32::from_bits(y));
                    (x - y).abs() <= atol || ulp_diff(x, y) <= u64::from(max_ulps)
                })
        }
    }
}

fn compare_sides(rw: &dyn Rewrite, o: &SideRun, r: &SideRun, ctx: &str) -> Result<(), String> {
    let eq = rw.equivalence();
    if o.shape != r.shape {
        return Err(format!(
            "rewrite `{}` {ctx}: forward shapes differ: {:?} vs {:?}",
            rw.name(),
            o.shape,
            r.shape
        ));
    }
    if !bits_equal(&o.forward, &r.forward, eq) {
        return Err(format!(
            "rewrite `{}` {ctx}: forward values are not bitwise identical",
            rw.name()
        ));
    }
    for (i, (go, gr)) in o.grads.iter().zip(&r.grads).enumerate() {
        match (go, gr) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                if !bits_equal(a, b, eq) {
                    return Err(format!(
                        "rewrite `{}` {ctx}: gradient {i} is not bitwise identical",
                        rw.name()
                    ));
                }
            }
            (Some(g), None) | (None, Some(g)) => {
                if !all_zero(g) {
                    return Err(format!(
                        "rewrite `{}` {ctx}: gradient {i} flows on one side only and is \
                         non-zero",
                        rw.name()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Runs the rewrite's runtime obligation: forward values and per-param
/// gradients must be bitwise identical between the original and the
/// replacement, and stable across 1/2/4 worker threads.
pub fn golden_equivalence(rw: &dyn Rewrite, seed: u64) -> Result<(), String> {
    let inputs = rw.sample_inputs(seed);
    let trainable = rw.trainable();
    assert_eq!(inputs.len(), trainable.len(), "trainable mask must cover every input");
    let mut baseline: Option<(SideRun, SideRun)> = None;
    for threads in [1usize, 2, 4] {
        let (o, r) = crate::parallel::with_threads(threads, || {
            (
                run_side(rw, "original", &inputs, &trainable),
                run_side(rw, "replacement", &inputs, &trainable),
            )
        });
        compare_sides(rw, &o, &r, &format!("at {threads} thread(s)"))?;
        if let Some((bo, _)) = &baseline {
            if o.forward != bo.forward || o.grads != bo.grads {
                return Err(format!(
                    "rewrite `{}`: original run at {threads} threads diverges from the \
                     single-thread baseline",
                    rw.name()
                ));
            }
        } else {
            baseline = Some((o, r));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Built-in rewrites.
// ---------------------------------------------------------------------------

fn sample(rng: &mut StdRng, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(lo..=hi)).collect())
}

/// The attention fixture shared by the fused-op rewrites: a handful of
/// segments including an empty one, exercising the non-empty-handling
/// invariant.
fn attention_segments() -> Arc<Segments> {
    Arc::new(Segments::from_lengths(&[3, 0, 4, 2, 1]))
}

/// `segment_softmax → mul_col_broadcast → segment_sum` fused into
/// [`Tape::segment_attention`].
struct SegmentAttentionFusion {
    segs: Arc<Segments>,
    cols: usize,
}

impl Rewrite for SegmentAttentionFusion {
    fn name(&self) -> &'static str {
        "segment-attention-fusion"
    }
    /// The fused kernel changes the arithmetic, not just the schedule: it
    /// normalises by multiplying with `1/sum` where `segment_softmax`
    /// divides, and it uses the vectorized `exp` split (relative error
    /// `< 1e-6` of `f32::exp`). The budget mirrors the `1e-5` pin in the
    /// kernel's own fused-vs-unfused test.
    fn equivalence(&self) -> Equivalence {
        Equivalence::Approximate { max_ulps: 256, atol: 1e-5 }
    }
    fn input_domains(&self) -> Vec<AbsVal> {
        vec![
            AbsVal::finite(Dim::Sym("E"), Dim::Const(1), -4.0, 4.0),
            AbsVal::finite(Dim::Sym("E"), Dim::Const(self.cols), -2.0, 2.0),
        ]
    }
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = self.segs.total_len();
        vec![sample(&mut rng, e, 1, -4.0, 4.0), sample(&mut rng, e, self.cols, -2.0, 2.0)]
    }
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        let alpha = tape.segment_softmax(inputs[0], &self.segs);
        let weighted = tape.mul_col_broadcast(inputs[1], alpha);
        tape.segment_sum(weighted, &self.segs)
    }
    fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        tape.segment_attention(inputs[0], inputs[1], &self.segs)
    }
}

/// `gather_rows + segment_attention` fused into [`Tape::gather_attention`].
struct GatherAttentionFusion {
    idx: Arc<Vec<u32>>,
    segs: Arc<Segments>,
    nodes: usize,
    cols: usize,
}

impl Rewrite for GatherAttentionFusion {
    fn name(&self) -> &'static str {
        "gather-attention-fusion"
    }
    fn input_domains(&self) -> Vec<AbsVal> {
        vec![
            AbsVal::finite(Dim::Sym("E"), Dim::Const(1), -4.0, 4.0),
            AbsVal::finite(Dim::Sym("N"), Dim::Const(self.cols), -2.0, 2.0),
        ]
    }
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = self.segs.total_len();
        vec![sample(&mut rng, e, 1, -4.0, 4.0), sample(&mut rng, self.nodes, self.cols, -2.0, 2.0)]
    }
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        let gathered = tape.gather_rows(inputs[1], &self.idx);
        tape.segment_attention(inputs[0], gathered, &self.segs)
    }
    fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        tape.gather_attention(inputs[0], inputs[1], &self.idx, &self.segs)
    }
}

/// `scale(x, 1.0)` folds to `x`.
struct IdentityScaleFold {
    rows: usize,
    cols: usize,
}

impl Rewrite for IdentityScaleFold {
    fn name(&self) -> &'static str {
        "identity-scale-fold"
    }
    fn input_domains(&self) -> Vec<AbsVal> {
        vec![AbsVal::finite(Dim::Const(self.rows), Dim::Const(self.cols), -2.0, 2.0)]
    }
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        vec![sample(&mut rng, self.rows, self.cols, -2.0, 2.0)]
    }
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        tape.scale(inputs[0], 1.0)
    }
    fn replacement(&self, _tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        inputs[0]
    }
}

/// `scale(x, 0.0)` folds to a zero constant. The domain is restricted to
/// non-negative inputs: `0.0 * x` is `-0.0` for negative `x`, which would
/// break bitwise equivalence with a `+0.0` constant.
struct ZeroScaleFold {
    rows: usize,
    cols: usize,
}

impl Rewrite for ZeroScaleFold {
    fn name(&self) -> &'static str {
        "zero-scale-fold"
    }
    fn input_domains(&self) -> Vec<AbsVal> {
        vec![AbsVal::finite(Dim::Const(self.rows), Dim::Const(self.cols), 0.0, 2.0)]
    }
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        vec![sample(&mut rng, self.rows, self.cols, 0.0, 2.0)]
    }
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        tape.scale(inputs[0], 0.0)
    }
    fn replacement(&self, tape: &mut Tape, _inputs: &[Tensor]) -> Tensor {
        tape.constant(Matrix::zeros(self.rows, self.cols))
    }
}

/// `add(a, mul_scalar_tensor(b, α))` with `α` pinned to zero folds to `a`
/// — the dead branch a derived (non-mixed) architecture leaves behind.
/// `α` is declared non-trainable: the fold is for derived graphs where
/// the architecture weight is a constant, not a search parameter.
struct ZeroAlphaDeadBranch {
    rows: usize,
    cols: usize,
}

impl Rewrite for ZeroAlphaDeadBranch {
    fn name(&self) -> &'static str {
        "zero-alpha-dead-branch"
    }
    fn input_domains(&self) -> Vec<AbsVal> {
        vec![
            AbsVal::finite(Dim::Const(self.rows), Dim::Const(self.cols), -2.0, 2.0),
            AbsVal::finite(Dim::Const(self.rows), Dim::Const(self.cols), -2.0, 2.0),
            AbsVal::finite(Dim::Const(1), Dim::Const(1), 0.0, 0.0),
        ]
    }
    fn trainable(&self) -> Vec<bool> {
        vec![true, true, false]
    }
    fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        vec![
            sample(&mut rng, self.rows, self.cols, -2.0, 2.0),
            sample(&mut rng, self.rows, self.cols, -2.0, 2.0),
            Matrix::scalar(0.0),
        ]
    }
    fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        let dead = tape.mul_scalar_tensor(inputs[1], inputs[2]);
        tape.add(inputs[0], dead)
    }
    fn replacement(&self, _tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
        inputs[0]
    }
}

/// Every rewrite the autodiff crate registers. Downstream crates (the GNN
/// layer registry) extend this set with their own fixtures.
pub fn builtin_rewrites() -> Vec<Box<dyn Rewrite>> {
    let segs = attention_segments();
    let idx: Arc<Vec<u32>> = Arc::new(vec![0, 3, 3, 1, 2, 0, 3, 2, 1, 0]);
    assert_eq!(idx.len(), segs.total_len());
    vec![
        Box::new(SegmentAttentionFusion { segs: segs.clone(), cols: 5 }),
        Box::new(GatherAttentionFusion { idx, segs, nodes: 4, cols: 5 }),
        Box::new(IdentityScaleFold { rows: 6, cols: 3 }),
        Box::new(ZeroScaleFold { rows: 6, cols: 3 }),
        Box::new(ZeroAlphaDeadBranch { rows: 6, cols: 3 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rewrites_discharge_static_obligations() {
        for rw in builtin_rewrites() {
            let check = check_rewrite(rw.as_ref())
                .unwrap_or_else(|e| panic!("{} failed static check: {e}", rw.name()));
            assert!(
                check.replacement.range.subset_of(check.original.range),
                "{}: {} ⊄ {}",
                rw.name(),
                check.replacement.range,
                check.original.range
            );
        }
    }

    #[test]
    fn builtin_rewrites_are_golden_equivalent_across_threads() {
        for rw in builtin_rewrites() {
            for seed in [1u64, 42] {
                golden_equivalence(rw.as_ref(), seed)
                    .unwrap_or_else(|e| panic!("{} failed golden equivalence: {e}", rw.name()));
            }
        }
    }

    /// A corrupted rewrite: the replacement drops a column, so its shape
    /// is not provably the original's.
    struct ShapeMismatchedReplacement;
    impl Rewrite for ShapeMismatchedReplacement {
        fn name(&self) -> &'static str {
            "bad-shape"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![AbsVal::finite(Dim::Const(3), Dim::Const(4), -2.0, 2.0)]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            vec![sample(&mut rng, 3, 4, -2.0, 2.0)]
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.relu(inputs[0])
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.slice_cols(inputs[0], 0, 3)
        }
    }

    #[test]
    fn shape_mismatched_replacement_is_rejected_statically() {
        let err = check_rewrite(&ShapeMismatchedReplacement).unwrap_err();
        assert!(matches!(err, RewriteError::ShapeMismatch { rewrite: "bad-shape", .. }), "{err}");
    }

    /// Replacement widens the value interval: `sigmoid` ⊆ [0,1] but the
    /// replacement scales the raw input.
    struct EscapingReplacement;
    impl Rewrite for EscapingReplacement {
        fn name(&self) -> &'static str {
            "bad-interval"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![AbsVal::finite(Dim::Const(3), Dim::Const(4), -2.0, 2.0)]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            vec![sample(&mut rng, 3, 4, -2.0, 2.0)]
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.sigmoid(inputs[0])
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.scale(inputs[0], 2.0)
        }
    }

    #[test]
    fn interval_escape_is_rejected_statically() {
        let err = check_rewrite(&EscapingReplacement).unwrap_err();
        assert!(
            matches!(err, RewriteError::IntervalEscape { rewrite: "bad-interval", .. }),
            "{err}"
        );
    }

    /// Replacement loses the NaN-freedom guarantee (a NaN shift abstracts
    /// to top).
    struct NanLosingReplacement;
    impl Rewrite for NanLosingReplacement {
        fn name(&self) -> &'static str {
            "bad-nan"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![AbsVal::finite(Dim::Const(3), Dim::Const(4), -2.0, 2.0)]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            vec![sample(&mut rng, 3, 4, -2.0, 2.0)]
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.scale(inputs[0], 1.0)
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.add_scalar(inputs[0], f32::NAN)
        }
    }

    #[test]
    fn nan_obligation_is_rejected_statically() {
        let err = check_rewrite(&NanLosingReplacement).unwrap_err();
        assert!(matches!(err, RewriteError::NanObligation { rewrite: "bad-nan" }), "{err}");
    }

    /// Replacement loses the Inf-freedom guarantee: `log_softmax` can
    /// produce `-inf`, `softmax` cannot.
    struct InfLosingReplacement;
    impl Rewrite for InfLosingReplacement {
        fn name(&self) -> &'static str {
            "bad-inf"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![AbsVal::finite(Dim::Const(3), Dim::Const(4), -2.0, 2.0)]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            vec![sample(&mut rng, 3, 4, -2.0, 2.0)]
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.softmax_rows(inputs[0])
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.log_softmax_rows(inputs[0])
        }
    }

    #[test]
    fn inf_obligation_is_rejected_statically() {
        let err = check_rewrite(&InfLosingReplacement).unwrap_err();
        assert!(matches!(err, RewriteError::InfObligation { rewrite: "bad-inf" }), "{err}");
    }

    /// The declared domain violates an op contract (a 2x1 "scalar"), so
    /// abstract evaluation itself fails.
    struct ContractViolatingDomain;
    impl Rewrite for ContractViolatingDomain {
        fn name(&self) -> &'static str {
            "bad-domain"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![
                AbsVal::finite(Dim::Const(3), Dim::Const(4), -2.0, 2.0),
                AbsVal::finite(Dim::Const(2), Dim::Const(1), 0.0, 1.0),
            ]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            vec![sample(&mut rng, 3, 4, -2.0, 2.0), Matrix::scalar(0.5)]
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.mul_scalar_tensor(inputs[0], inputs[1])
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            tape.mul_scalar_tensor(inputs[0], inputs[1])
        }
    }

    #[test]
    fn contract_violations_surface_as_analysis_failures() {
        let err = check_rewrite(&ContractViolatingDomain).unwrap_err();
        match err {
            RewriteError::AnalysisFailed { rewrite: "bad-domain", side, .. } => {
                // The sampled 1x1 scalar escapes the declared (broken) 2x1
                // domain before either side is evaluated.
                assert_eq!(side, "fixture");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    /// Statically plausible but numerically different: f32 addition is
    /// not associative, so the golden harness must reject it.
    struct ReassociatedSum;
    impl Rewrite for ReassociatedSum {
        fn name(&self) -> &'static str {
            "bad-reassociation"
        }
        fn input_domains(&self) -> Vec<AbsVal> {
            vec![
                // The magnitude disparity forces the two association orders
                // to round differently: b rounds into a's ulp before c can
                // contribute, or b+c is formed exactly first.
                AbsVal::finite(Dim::Const(8), Dim::Const(5), 1000.0, 2000.0),
                AbsVal::finite(Dim::Const(8), Dim::Const(5), -2.0, 2.0),
                AbsVal::finite(Dim::Const(8), Dim::Const(5), -2.0, 2.0),
            ]
        }
        fn sample_inputs(&self, seed: u64) -> Vec<Matrix> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v = vec![sample(&mut rng, 8, 5, 1000.0, 2000.0)];
            v.extend((0..2).map(|_| sample(&mut rng, 8, 5, -2.0, 2.0)));
            v
        }
        fn original(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            let ab = tape.add(inputs[0], inputs[1]);
            tape.add(ab, inputs[2])
        }
        fn replacement(&self, tape: &mut Tape, inputs: &[Tensor]) -> Tensor {
            let bc = tape.add(inputs[1], inputs[2]);
            tape.add(inputs[0], bc)
        }
    }

    #[test]
    fn golden_harness_rejects_reassociation() {
        // Passes the static obligations (identical abstract values)...
        check_rewrite(&ReassociatedSum).expect("statically plausible");
        // ...but not the bitwise runtime one.
        let err = golden_equivalence(&ReassociatedSum, 1).unwrap_err();
        assert!(err.contains("not bitwise identical"), "{err}");
    }
}
