//! Evaluation metrics (non-differentiable): classification accuracy and
//! micro-F1, the two metrics of the paper's Table VI.

use crate::matrix::Matrix;

/// Index of the largest entry in a row (ties go to the first).
pub fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Multiclass accuracy of `logits` against integer `labels`, over `rows`.
///
/// # Panics
/// Panics if `rows` is empty or indices are out of bounds.
pub fn accuracy(logits: &Matrix, labels: &[u32], rows: &[u32]) -> f64 {
    assert!(!rows.is_empty(), "accuracy over an empty row subset");
    assert_eq!(labels.len(), logits.rows(), "labels must cover all rows");
    let mut correct = 0usize;
    for &r in rows {
        let r = r as usize;
        if argmax_row(logits.row(r)) == labels[r] as usize {
            correct += 1;
        }
    }
    correct as f64 / rows.len() as f64
}

/// Micro-averaged F1 for multi-label prediction: `logits > 0` (i.e.
/// sigmoid > 0.5) counts as a positive prediction.
pub fn micro_f1(logits: &Matrix, targets: &Matrix, rows: &[u32]) -> f64 {
    assert!(!rows.is_empty(), "micro_f1 over an empty row subset");
    assert_eq!(logits.shape(), targets.shape(), "shape mismatch");
    let (mut tp, mut fp, mut fnn) = (0u64, 0u64, 0u64);
    for &r in rows {
        let r = r as usize;
        for (&x, &t) in logits.row(r).iter().zip(targets.row(r)) {
            let pred = x > 0.0;
            let truth = t > 0.5;
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fnn += 1,
                (false, false) => {}
            }
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fnn) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Mean and sample standard deviation of a slice (paper tables report both).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let labels = vec![0u32, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &labels, &[0, 1]), 1.0);
    }

    #[test]
    fn micro_f1_perfect_prediction() {
        let targets = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let logits = Matrix::from_vec(2, 2, vec![5.0, -5.0, -5.0, 5.0]);
        assert!((micro_f1(&logits, &targets, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_no_true_positives_is_zero() {
        let targets = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let logits = Matrix::from_vec(1, 2, vec![-1.0, -1.0]);
        assert_eq!(micro_f1(&logits, &targets, &[0]), 0.0);
    }

    #[test]
    fn micro_f1_mixed_case() {
        // tp=1, fp=1, fn=1 => p=0.5, r=0.5 => f1=0.5
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let logits = Matrix::from_vec(1, 3, vec![1.0, 1.0, -1.0]);
        assert!((micro_f1(&logits, &targets, &[0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax_row(&[1.0, 1.0, 0.5]), 0);
    }
}
