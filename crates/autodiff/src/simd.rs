//! Pinned-order vectorized inner loops for the hot kernels.
//!
//! The kernels with a *reduction* ([`dot`]) or a *fused rounding* choice
//! ([`axpy`]) come in two flavours:
//!
//! * a **vectorized** path: `dot` uses eight fixed accumulator lanes fed
//!   with [`f32::mul_add`] and combined in a fixed binary tree (scalar tail
//!   folded in index order), so the reduction order is pinned by
//!   construction and identical for every call with the same slice length,
//!   regardless of thread count; `axpy` fuses the multiply-add to one
//!   rounding per element. Both are written as plain loops the compiler
//!   auto-vectorizes at full native width (the workspace builds with
//!   `target-cpu=x86-64-v3`, so `mul_add` lowers to hardware FMA).
//! * a **scalar reference** path that walks the slice once in index order
//!   with plain `mul`/`add` (two roundings), kept for gradcheck, Miri, and
//!   as the semantic ground truth the vectorized path is tested against.
//!
//! The two flavours are *not* bitwise equal to each other: `mul_add` rounds
//! once where `a * b + c` rounds twice, and the 8-lane tree sums partial
//! products in a different order than a left fold. That drift is deliberate
//! and observable (see the `simd-lane-drift` case in the determinism bench);
//! the determinism contract only requires that each flavour is bitwise
//! reproducible across thread counts, which both are because the dispatch
//! never depends on partition geometry.
//!
//! [`add_assign`] and [`scale`] have no flavour split at all: they are
//! per-element ops with exactly one rounding and no order freedom, so the
//! reference and the vectorized code are the same loop.
//!
//! Dispatch: the vectorized flavour is the default. Setting
//! `SANE_FORCE_SCALAR` to anything but `0`/empty at process start forces the
//! scalar references globally; [`with_scalar`] forces them for the current
//! thread inside a closure (used by tests and the lane-drift probe so both
//! flavours can run in one process). Hot kernels snapshot [`flavour()`]
//! *once* per kernel call and reuse the copy in their inner loops — the
//! thread-local read is cheap but not free at tens of thousands of calls
//! per step.

use std::cell::Cell;
use std::sync::OnceLock;

const LANES: usize = 8;

fn env_force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("SANE_FORCE_SCALAR").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

thread_local! {
    static SCALAR_OVERRIDE: Cell<bool> = const { Cell::new(false) };
}

/// True when the scalar reference paths are active on this thread, either via
/// the `SANE_FORCE_SCALAR` environment variable or a [`with_scalar`] scope.
pub fn scalar_forced() -> bool {
    SCALAR_OVERRIDE.with(|c| c.get()) || env_force_scalar()
}

/// The active kernel flavour, as a copyable token.
///
/// Kernels call [`flavour()`] once, outside their loops, and use the token's
/// inherent [`dot`](Flavour::dot) / [`axpy`](Flavour::axpy) in the hot path:
/// the mode check then costs one well-predicted branch per call instead of a
/// thread-local read. Capturing the token in a parallel kernel's worker
/// closure also pins the whole kernel to one flavour by construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flavour {
    /// Pinned-lane `mul_add` kernels (the default).
    Vector,
    /// Index-order scalar reference kernels.
    Reference,
}

/// Snapshot of the current thread's flavour (see [`scalar_forced`]).
pub fn flavour() -> Flavour {
    if scalar_forced() {
        Flavour::Reference
    } else {
        Flavour::Vector
    }
}

impl Flavour {
    /// Dot product in this flavour (see [`dot`]).
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Flavour::Vector => dot8(a, b),
            Flavour::Reference => dot_scalar(a, b),
        }
    }

    /// `out[j] += a * x[j]` in this flavour (see [`axpy`]).
    #[inline]
    pub fn axpy(self, a: f32, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), out.len());
        match self {
            Flavour::Vector => axpy_vec(a, x, out),
            Flavour::Reference => axpy_scalar(a, x, out),
        }
    }

    /// Fused `(dot(x, y), out[j] = a * y[j])` in one pass — the attention
    /// backward's per-edge pattern (gradient dot plus the weighted message
    /// gradient, both over the same upstream row `y`).
    ///
    /// The reduction uses exactly the same pinned order as [`Flavour::dot`]
    /// in each flavour, and the scale write is the same single-rounding
    /// multiply as [`scale`], so fusing changes no results — it only
    /// removes the second sweep over `y` and one call's loop overhead.
    #[inline]
    pub fn dot_scale(self, x: &[f32], y: &[f32], a: f32, out: &mut [f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        debug_assert_eq!(x.len(), out.len());
        match self {
            Flavour::Vector => dot_scale_vec(x, y, a, out),
            Flavour::Reference => {
                let mut acc = 0.0f32;
                for ((&xv, &yv), o) in x.iter().zip(y).zip(out.iter_mut()) {
                    acc += xv * yv;
                    *o = a * yv;
                }
                acc
            }
        }
    }

    /// `x[j] = e^{x[j]}` in place, for softmax-style kernels.
    ///
    /// The vectorized flavour is a branch-free `2^n · p(f)` split (degree-6
    /// polynomial on the reduced fraction, exponent applied through the
    /// bit pattern) that the compiler turns into straight vector code —
    /// relative error is under `1e-6` of [`f32::exp`], which the flavour
    /// drift contract already covers. Inputs are clamped to `[-87, 88]`:
    /// below that `e^x` underflows to zero anyway, above it the result
    /// saturates near `f32::MAX` instead of producing infinity, which is
    /// the behaviour the max-shifted softmax callers (`x ≤ 0`) never see.
    /// The reference flavour calls [`f32::exp`] per element.
    #[inline]
    pub fn exp(self, xs: &mut [f32]) {
        match self {
            Flavour::Vector => exp_vec(xs),
            Flavour::Reference => {
                for v in xs {
                    *v = v.exp();
                }
            }
        }
    }
}

/// Dot product with pinned reduction order.
///
/// Vectorized flavour: 8 fixed accumulator lanes (`acc[l]` sees elements
/// `l, l+8, l+16, ...` via `mul_add`), combined in the fixed tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then the tail (`len % 8`
/// elements) folded in index order with `mul_add`.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    flavour().dot(a, b)
}

/// `out[j] += a * x[j]` — one rounding per element (`mul_add`) in the
/// vectorized flavour, two (`mul` then `add`) in the reference flavour.
pub fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
    flavour().axpy(a, x, out)
}

/// `out[j] += x[j]`, the accumulation step of the segment-sum kernels.
///
/// No flavour split: one add per element in index order is the only
/// possible evaluation, so reference and vectorized code coincide.
pub fn add_assign(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += v;
    }
}

/// `out[j] = a * x[j]` (overwrite, not accumulate).
///
/// No flavour split: one multiply per element, no order freedom.
pub fn scale(a: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o = a * v;
    }
}

/// Run `f` with the scalar reference paths forced on the current thread.
///
/// The override is thread-local so concurrent callers (test threads) stay
/// independent, but it does follow the work into parallel kernels: the
/// dispatcher in [`crate::parallel`] snapshots the calling thread's mode
/// and re-applies it on every scoped worker, so a `with_scalar` scope
/// covers the whole kernel at any thread count.
pub fn with_scalar<R>(f: impl FnOnce() -> R) -> R {
    with_mode(true, f)
}

/// Runs `f` with the thread-local override set to `scalar`. The parallel
/// dispatcher uses this to hand the calling thread's mode to its scoped
/// workers, so a [`with_scalar`] scope covers the whole kernel even when
/// the work is split across threads.
pub(crate) fn with_mode<R>(scalar: bool, f: impl FnOnce() -> R) -> R {
    SCALAR_OVERRIDE.with(|c| {
        let prev = c.replace(scalar);
        let out = f();
        c.set(prev);
        out
    })
}

/// Scalar reference: left fold in index order, two roundings per element.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Scalar reference for [`axpy`]: `mul` then `add`, two roundings.
pub fn axpy_scalar(a: f32, x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        // The lane index is the constant here: lane `l` only ever sees
        // elements congruent to `l` mod 8, so the per-lane reduction order is
        // fixed no matter how the caller partitioned the surrounding work.
        for l in 0..LANES {
            acc[l] = xs[l].mul_add(ys[l], acc[l]);
        }
    }
    let mut tree =
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tree = x.mul_add(y, tree);
    }
    tree
}

fn axpy_vec(a: f32, x: &[f32], out: &mut [f32]) {
    // Elementwise with no order freedom beyond the rounding choice: a plain
    // zip the compiler turns into full-width FMA.
    for (o, &v) in out.iter_mut().zip(x) {
        *o = a.mul_add(v, *o);
    }
}

fn dot_scale_vec(x: &[f32], y: &[f32], a: f32, out: &mut [f32]) -> f32 {
    // Same 8-lane pinned-tree reduction as `dot8`, with the independent
    // `a * y` write folded into the same pass over `y`.
    let mut acc = [0.0f32; LANES];
    let mut cx = x.chunks_exact(LANES);
    let mut cy = y.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((xs, ys), os) in (&mut cx).zip(&mut cy).zip(&mut co) {
        for l in 0..LANES {
            acc[l] = xs[l].mul_add(ys[l], acc[l]);
            os[l] = a * ys[l];
        }
    }
    let mut tree =
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for ((&xv, &yv), o) in cx.remainder().iter().zip(cy.remainder()).zip(co.into_remainder()) {
        tree = xv.mul_add(yv, tree);
        *o = a * yv;
    }
    tree
}

fn exp_vec(xs: &mut [f32]) {
    use std::f32::consts::{LN_2, LOG2_E};
    for v in xs {
        // e^x = 2^n · e^f with n = round(x·log2 e), f = x − n·ln 2, so f is
        // in [−ln2/2, ln2/2] where the degree-6 Taylor series is accurate
        // to ~2e-7 relative. Every step is a pure per-element function of
        // the input, so the result is bitwise reproducible anywhere.
        let x = (*v).clamp(-87.0, 88.0);
        let n = (x * LOG2_E).round();
        let f = (-n).mul_add(LN_2, x);
        let p = f.mul_add(
            f.mul_add(
                f.mul_add(
                    f.mul_add(
                        f.mul_add(f.mul_add(1.0 / 720.0, 1.0 / 120.0), 1.0 / 24.0),
                        1.0 / 6.0,
                    ),
                    0.5,
                ),
                1.0,
            ),
            1.0,
        );
        // 2^n through the exponent bits: n is an integer in [−126, 127]
        // after the clamp, so the biased exponent stays in (0, 255).
        let two_n = f32::from_bits((((n as i32) + 127) << 23) as u32); // lint:allow(lossy-cast) -- in-range by the clamp above
        *v = p * two_n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.37 + salt).sin()) // lint:allow(lossy-cast) -- small integer grid, exact in f32
            .collect()
    }

    #[test]
    fn dot8_matches_scalar_within_eps() {
        for n in [0, 1, 7, 8, 9, 16, 31, 200] {
            let a = seq(n, 0.1);
            let b = seq(n, 1.9);
            let v = dot8(&a, &b);
            let s = dot_scalar(&a, &b);
            let scale = 1.0f32.max(s.abs());
            assert!((v - s).abs() <= 1e-4 * scale, "n={n}: vectorized {v} vs scalar {s}");
        }
    }

    #[test]
    fn dot8_is_bitwise_stable_across_calls() {
        let a = seq(123, 0.3);
        let b = seq(123, 2.7);
        let first = dot8(&a, &b);
        for _ in 0..8 {
            assert_eq!(first.to_bits(), dot8(&a, &b).to_bits());
        }
    }

    #[test]
    fn axpy_flavours_match_within_eps() {
        for n in [0, 3, 8, 17, 64] {
            let x = seq(n, 0.5);
            let mut v = seq(n, 4.2);
            let mut s = v.clone();
            axpy_vec(0.75, &x, &mut v);
            axpy_scalar(0.75, &x, &mut s);
            for (a, b) in v.iter().zip(&s) {
                assert!((a - b).abs() <= 1e-6, "axpy n={n}");
            }
        }
    }

    #[test]
    fn dot_scale_is_bitwise_identical_to_dot_plus_scale() {
        for fl in [Flavour::Vector, Flavour::Reference] {
            for n in [0, 1, 7, 8, 9, 31, 64] {
                let x = seq(n, 0.4);
                let y = seq(n, 3.1);
                let mut fused_out = vec![0.0f32; n];
                let fused_dot = fl.dot_scale(&x, &y, -0.6, &mut fused_out);
                let mut plain_out = vec![0.0f32; n];
                scale(-0.6, &y, &mut plain_out);
                assert_eq!(fused_dot.to_bits(), fl.dot(&x, &y).to_bits(), "{fl:?} n={n}");
                for (a, b) in fused_out.iter().zip(&plain_out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{fl:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn add_and_scale_have_no_flavour_drift() {
        let x = seq(33, 0.8);
        let mut a = seq(33, 2.2);
        let mut b = a.clone();
        add_assign(&x, &mut a);
        with_scalar(|| add_assign(&x, &mut b));
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits(), "add_assign is flavour-free");
        }
        scale(-1.25, &x, &mut a);
        with_scalar(|| scale(-1.25, &x, &mut b));
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits(), "scale is flavour-free");
        }
    }

    #[test]
    fn exp_vec_matches_libm_within_rel_eps() {
        let mut xs: Vec<f32> = (-400..=80).map(|i| i as f32 * 0.217).collect(); // lint:allow(lossy-cast) -- small integer grid, exact in f32
        xs.extend([0.0, -0.0, f32::MIN_POSITIVE, -87.0, 1e-20]);
        let expect: Vec<f32> = xs.iter().map(|&x| x.exp()).collect();
        exp_vec(&mut xs);
        for (&got, &want) in xs.iter().zip(&expect) {
            let tol = 1e-6 * want.max(f32::MIN_POSITIVE);
            assert!((got - want).abs() <= tol, "exp_vec {got} vs libm {want}");
        }
        // Below the clamp the result saturates at e^-87 ~ 1.6e-38 — an
        // effective zero for the max-shifted softmax weights that feed it.
        let mut under = [-100.0f32, -2000.0];
        exp_vec(&mut under);
        for v in under {
            assert!(v.is_finite() && (0.0..=1.7e-38).contains(&v), "underflow region: {v}");
        }
    }

    #[test]
    fn exp_vec_is_bitwise_stable_across_calls() {
        let base: Vec<f32> = (0..97).map(|i| (i as f32 * 0.13).sin() * 40.0 - 30.0).collect(); // lint:allow(lossy-cast) -- small integer grid, exact in f32
        let mut first = base.clone();
        exp_vec(&mut first);
        for _ in 0..4 {
            let mut again = base.clone();
            exp_vec(&mut again);
            for (a, b) in first.iter().zip(&again) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn with_scalar_routes_to_reference_paths() {
        let a = seq(50, 0.2);
        let b = seq(50, 1.1);
        let forced = with_scalar(|| dot(&a, &b));
        assert_eq!(forced.to_bits(), dot_scalar(&a, &b).to_bits());
        assert!(!scalar_forced());
        // Outside the scope the vectorized flavour is back (env permitting).
        if !scalar_forced() {
            assert_eq!(dot(&a, &b).to_bits(), dot8(&a, &b).to_bits());
        }
    }

    #[test]
    fn with_scalar_restores_previous_state_on_nesting() {
        with_scalar(|| {
            assert!(scalar_forced());
            assert_eq!(flavour(), Flavour::Reference);
            with_scalar(|| assert!(scalar_forced()));
            assert!(scalar_forced());
        });
        assert_eq!(flavour(), Flavour::Vector);
    }
}
