//! Loss tape ops.
//!
//! Both classification losses take a *row subset* so transductive training
//! can evaluate the loss on the train/validation mask without slicing the
//! forward pass: the full-graph logits stay on the tape, the loss only
//! looks at the masked rows.

use std::sync::Arc;

use crate::absint::{require_compatible, AbsVal, Dim, Interval};
use crate::audit::Arity;
use crate::dataflow::GradReads;
use crate::matrix::Matrix;
use crate::ops::linalg::softmax_rows_value;
use crate::pool;
use crate::tape::{Op, Tape, Tensor};

type InferredShape = Result<Option<(usize, usize)>, String>;
type Transferred = Result<AbsVal, String>;

/// Mean softmax cross-entropy over a subset of rows.
struct CrossEntropyOp {
    labels: Arc<Vec<u32>>,
    rows: Arc<Vec<u32>>,
    /// Softmax probabilities of the selected rows, saved at forward time.
    probs: Matrix,
}
impl Drop for CrossEntropyOp {
    fn drop(&mut self) {
        // `probs` is a pooled buffer living inside the op rather than as a
        // node value, so tape teardown cannot see it; hand it back here to
        // keep steady-state training steps allocation-free.
        crate::pool::put(std::mem::replace(&mut self.probs, Matrix::from_vec(0, 0, Vec::new())));
    }
}
impl Op for CrossEntropyOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (n, c) = inputs[0].shape();
        let scale = grad.as_scalar() / self.rows.len() as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
        let mut g = pool::zeros(n, c);
        for (k, &r) in self.rows.iter().enumerate() {
            let label = self.labels[r as usize] as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
            let prow = self.probs.row(k);
            let grow = g.row_mut(r as usize); // lint:allow(lossy-cast) -- u32 index widens losslessly
            for (j, (g, &p)) in grow.iter_mut().zip(prow).enumerate() {
                let target = if j == label { 1.0 } else { 0.0 };
                // Accumulate: `rows` may legally list a row more than once
                // (sampling with replacement), and the forward loss counts
                // every occurrence.
                *g += scale * (p - target);
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // logits shape; probabilities are saved
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (n, c) = inputs[0];
        if self.labels.len() != n {
            return Err(format!("{} labels for {n} logit rows", self.labels.len()));
        }
        if self.probs.shape() != (self.rows.len(), c) {
            return Err(format!(
                "saved probabilities are {:?} for {} selected rows of {c} classes",
                self.probs.shape(),
                self.rows.len()
            ));
        }
        Ok(Some((1, 1)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        require_compatible(
            "cross_entropy: one label per logit row",
            a.rows,
            Dim::Const(self.labels.len()),
        )?;
        if let Some(&r) = self.rows.iter().max() {
            if r as usize >= self.labels.len() {
                // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                return Err(format!(
                    "cross_entropy: selected row {r} out of {} labelled rows",
                    self.labels.len()
                ));
            }
        }
        if let Some(c) = a.cols.known() {
            for &r in self.rows.iter() {
                let label = self.labels[r as usize] as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
                if label >= c {
                    return Err(format!("cross_entropy: label {label} out of {c} classes"));
                }
            }
        }
        // Probabilities are clamped to ≥ 1e-12, so each row's loss lies in
        // [0, -ln(1e-12)], and so does the mean.
        let range = Interval::new(0.0, -(1e-12f32).ln());
        let clean = a.nan_free && a.inf_free && !self.rows.is_empty();
        Ok(AbsVal {
            rows: Dim::Const(1),
            cols: Dim::Const(1),
            range,
            nan_free: clean,
            inf_free: clean,
        })
    }
}

/// Mean binary cross-entropy with logits over a subset of rows
/// (multi-label objectives, e.g. PPI).
struct BceWithLogitsOp {
    targets: Arc<Matrix>,
    rows: Arc<Vec<u32>>,
}
impl Op for BceWithLogitsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (n, c) = inputs[0].shape();
        let scale = grad.as_scalar() / (self.rows.len() * c) as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
        let mut g = pool::zeros(n, c);
        for &r in self.rows.iter() {
            let r = r as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
            let xrow = inputs[0].row(r);
            let trow = self.targets.row(r);
            let grow = g.row_mut(r);
            for ((g, &x), &t) in grow.iter_mut().zip(xrow).zip(trow) {
                let s = 1.0 / (1.0 + (-x).exp());
                *g += scale * (s - t);
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "bce_with_logits"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // re-derives sigmoids from the logits
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if self.targets.shape() != inputs[0] {
            return Err(format!(
                "targets are {:?} but logits are {:?}",
                self.targets.shape(),
                inputs[0]
            ));
        }
        Ok(Some((1, 1)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        let (tr, tc) = self.targets.shape();
        require_compatible("bce_with_logits: target rows", a.rows, Dim::Const(tr))?;
        require_compatible("bce_with_logits: target cols", a.cols, Dim::Const(tc))?;
        if let Some(&r) = self.rows.iter().max() {
            if r as usize >= tr {
                // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                return Err(format!("bce_with_logits: selected row {r} out of {tr} target rows"));
            }
        }
        // Per element: max(x,0) - x·t + ln(1 + e^{-|x|}), the last term in
        // [0, ln 2]; the mean over the selected rows stays in that hull
        // unless the sum overflows first.
        let t = AbsVal::from_matrix(&self.targets);
        let per = Interval::new(a.range.lo.max(0.0), a.range.hi.max(0.0))
            .add(a.range.mul(t.range).neg())
            .add(Interval::new(0.0, std::f32::consts::LN_2));
        let count = self.rows.len() * tc;
        let sum = per.sum_of(Dim::Const(count));
        let lo = if sum.lo == f32::NEG_INFINITY { f32::NEG_INFINITY } else { per.lo };
        let hi = if sum.hi == f32::INFINITY { f32::INFINITY } else { per.hi };
        let clean = a.nan_free && a.inf_free && t.nan_free && t.inf_free && count > 0;
        Ok(AbsVal {
            rows: Dim::Const(1),
            cols: Dim::Const(1),
            range: Interval::new(lo, hi),
            nan_free: clean,
            inf_free: clean && sum.is_finite(),
        })
    }
}

impl Tape {
    /// Mean softmax cross-entropy of `logits` (`n x C`) against integer
    /// `labels` (length `n`), restricted to the rows listed in `rows`.
    ///
    /// # Panics
    /// Panics if `rows` is empty, a row is out of bounds, or a selected
    /// label is out of `0..C`.
    pub fn cross_entropy(
        &mut self,
        logits: Tensor,
        labels: &Arc<Vec<u32>>,
        rows: &Arc<Vec<u32>>,
    ) -> Tensor {
        let (n, c) = self.value(logits).shape();
        assert!(!rows.is_empty(), "cross_entropy over an empty row subset");
        assert_eq!(labels.len(), n, "labels must cover every row of the logits");
        assert!(rows.iter().all(|&r| (r as usize) < n), "row index out of bounds"); // lint:allow(lossy-cast) -- u32 index widens losslessly
        assert!(
            rows.iter().all(|&r| (labels[r as usize] as usize) < c), // lint:allow(lossy-cast) -- u32 index widens losslessly
            "label out of range for {c} classes"
        );
        let selected = self.value(logits).gather_rows(rows);
        let probs = softmax_rows_value(&selected);
        let mut loss = 0.0;
        for (k, &r) in rows.iter().enumerate() {
            let p = probs.get(k, labels[r as usize] as usize).max(1e-12); // lint:allow(lossy-cast) -- u32 index widens losslessly
            loss -= p.ln();
        }
        loss /= rows.len() as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
        self.push_op(
            Matrix::scalar(loss),
            Box::new(CrossEntropyOp { labels: Arc::clone(labels), rows: Arc::clone(rows), probs }),
            vec![logits],
        )
    }

    /// Mean binary cross-entropy with logits against a dense 0/1 target
    /// matrix, restricted to the rows listed in `rows`.
    pub fn bce_with_logits(
        &mut self,
        logits: Tensor,
        targets: &Arc<Matrix>,
        rows: &Arc<Vec<u32>>,
    ) -> Tensor {
        let (n, c) = self.value(logits).shape();
        assert!(!rows.is_empty(), "bce_with_logits over an empty row subset");
        assert_eq!(targets.shape(), (n, c), "target shape mismatch");
        assert!(rows.iter().all(|&r| (r as usize) < n), "row index out of bounds"); // lint:allow(lossy-cast) -- u32 index widens losslessly
        let mut loss = 0.0;
        for &r in rows.iter() {
            let r = r as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
            for (&x, &t) in self.value(logits).row(r).iter().zip(targets.row(r)) {
                // Stable formulation: max(x,0) - x t + ln(1 + exp(-|x|)).
                loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            }
        }
        loss /= (rows.len() * c) as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
        self.push_op(
            Matrix::scalar(loss),
            Box::new(BceWithLogitsOp { targets: Arc::clone(targets), rows: Arc::clone(rows) }),
            vec![logits],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::VarStore;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let mut tape = Tape::new(0);
        let logits = tape.constant(Matrix::zeros(4, 3));
        let labels = Arc::new(vec![0u32, 1, 2, 0]);
        let rows = Arc::new(vec![0u32, 1, 2, 3]);
        let loss = tape.cross_entropy(logits, &labels, &rows);
        assert!((tape.value(loss).as_scalar() - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let mut store = VarStore::new();
        let p = store.add("logits", Matrix::zeros(2, 2));
        let labels = Arc::new(vec![1u32, 0]);
        let rows = Arc::new(vec![0u32]);
        let mut tape = Tape::new(0);
        let logits = tape.param(&store, p);
        let loss = tape.cross_entropy(logits, &labels, &rows);
        let g = tape.backward(loss);
        let gm = g.get(p).unwrap();
        // Row 0: probs (0.5, 0.5) minus one-hot(1) => (0.5, -0.5); row 1 untouched.
        assert!((gm.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((gm.get(0, 1) + 0.5).abs() < 1e-6);
        assert_eq!(gm.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let mut tape = Tape::new(0);
        let mut m = Matrix::zeros(1, 3);
        m.set(0, 2, 50.0);
        let logits = tape.constant(m);
        let labels = Arc::new(vec![2u32]);
        let rows = Arc::new(vec![0u32]);
        let loss = tape.cross_entropy(logits, &labels, &rows);
        assert!(tape.value(loss).as_scalar() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn cross_entropy_rejects_bad_label() {
        let mut tape = Tape::new(0);
        let logits = tape.constant(Matrix::zeros(1, 2));
        let labels = Arc::new(vec![5u32]);
        let rows = Arc::new(vec![0u32]);
        let _ = tape.cross_entropy(logits, &labels, &rows);
    }

    #[test]
    fn bce_of_zero_logits_is_ln2() {
        let mut tape = Tape::new(0);
        let logits = tape.constant(Matrix::zeros(2, 4));
        let targets = Arc::new(Matrix::from_fn(2, 4, |r, c| ((r + c) % 2) as f32));
        let rows = Arc::new(vec![0u32, 1]);
        let loss = tape.bce_with_logits(logits, &targets, &rows);
        assert!((tape.value(loss).as_scalar() - 2.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_is_sigmoid_minus_target() {
        let mut store = VarStore::new();
        let p = store.add("logits", Matrix::zeros(1, 2));
        let targets = Arc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let rows = Arc::new(vec![0u32]);
        let mut tape = Tape::new(0);
        let logits = tape.param(&store, p);
        let loss = tape.bce_with_logits(logits, &targets, &rows);
        let g = tape.backward(loss);
        let gm = g.get(p).unwrap();
        // (sigmoid(0) - t) / (rows * cols) = (0.5 - t) / 2
        assert!((gm.get(0, 0) + 0.25).abs() < 1e-6);
        assert!((gm.get(0, 1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let mut tape = Tape::new(0);
        let logits = tape.constant(Matrix::from_vec(1, 2, vec![1e4, -1e4]));
        let targets = Arc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let rows = Arc::new(vec![0u32]);
        let loss = tape.bce_with_logits(logits, &targets, &rows);
        let v = tape.value(loss).as_scalar();
        assert!(v.is_finite() && v < 1e-3);
    }
}
