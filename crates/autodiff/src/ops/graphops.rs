//! Graph-structured tape ops: row gathering, segment reductions and the
//! per-destination edge softmax that powers every attention aggregator.
//!
//! All segment ops assume the edge dimension is grouped: edges into the
//! same destination node occupy a contiguous range described by
//! [`Segments`]. The graph crate produces edge lists in exactly this order.
//!
//! Forward and backward kernels here are partitioned across the shared
//! worker scheme in [`crate::parallel`] — always at *segment* boundaries,
//! so each segment is reduced (or scattered into) whole by one worker
//! running the identical serial inner loop. Outputs are therefore bitwise
//! identical at any thread count, which the determinism tests assert.

use std::ops::Range;
use std::sync::Arc;

use crate::absint::{finite_arith, nan_free_mul, require_compatible, AbsVal, Dim, Interval};
use crate::audit::Arity;
use crate::dataflow::{GradReads, InputReads};
use crate::matrix::Matrix;
use crate::parallel::{parallel_ranges, parallel_ranges_pair, parallel_rows, parallel_rows_pair};
use crate::pool;
use crate::tape::{Op, Tape, Tensor};

type InferredShape = Result<Option<(usize, usize)>, String>;
type Transferred = Result<AbsVal, String>;

/// Segment-boundary invariant shared by every segment transfer: the input's
/// row dim must be compatible with the total segmented length (the segments
/// are sorted and covering by construction of [`Segments`]).
fn require_segment_cover(what: &str, segs: &Segments, rows: Dim) -> Result<(), String> {
    require_compatible(
        &format!("{what}: input rows must cover the segmented elements"),
        rows,
        Dim::Const(segs.total_len()),
    )
}

/// Shortest and longest segment, for interval bounds on segment sums.
fn segment_len_bounds(segs: &Segments) -> (usize, usize) {
    let mut min = usize::MAX;
    let mut max = 0;
    for s in 0..segs.num_segments() {
        let n = segs.len_of(s);
        min = min.min(n);
        max = max.max(n);
    }
    if min == usize::MAX {
        (0, 0)
    } else {
        (min, max)
    }
}

/// Widens an interval outward by a relative margin — used by the fused
/// attention transfers, whose convex-combination bound is exact only in
/// real arithmetic (the kernel's `1/sum` reciprocal and vectorized `exp`
/// can overshoot the hull by a few ulps).
fn dilate(iv: Interval, rel: f32) -> Interval {
    let w = rel * iv.lo.abs().max(iv.hi.abs());
    if w.is_finite() {
        Interval::new(iv.lo - w, iv.hi + w)
    } else {
        iv
    }
}

/// Boundaries of contiguous segments over a length-`n` axis.
///
/// `offsets` has `num_segments + 1` entries; segment `s` covers
/// `offsets[s]..offsets[s + 1]`. Empty segments are allowed.
#[derive(Clone, Debug)]
pub struct Segments {
    offsets: Vec<usize>,
}

impl Segments {
    /// # Panics
    /// Panics if `offsets` is empty or not monotonically non-decreasing.
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "segments need at least one offset");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "segment offsets must be sorted");
        Self { offsets }
    }

    /// Builds segments from per-segment lengths.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lengths.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &l in lengths {
            acc += l;
            offsets.push(acc);
        }
        Self { offsets }
    }

    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of elements covered.
    pub fn total_len(&self) -> usize {
        *self.offsets.last().expect("non-empty by construction") // lint:allow(expect) -- non-empty by construction
    }

    /// The raw offset array (`num_segments + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    #[inline]
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.offsets[s]..self.offsets[s + 1]
    }

    #[inline]
    pub fn len_of(&self, s: usize) -> usize {
        self.offsets[s + 1] - self.offsets[s]
    }
}

/// `balanced_cuts` invariants, asserted at the partition call sites: the
/// offsets handed to [`parallel_ranges`] are the cumulative-weight array
/// the load balancer cuts on, so they must be non-decreasing and their
/// span must cover exactly the rows the kernel is about to process —
/// otherwise a cut could land inside a segment and split one item across
/// two workers.
#[inline]
fn debug_assert_partition(segs: &Segments, covered_rows: usize) {
    debug_assert!(
        segs.offsets().windows(2).all(|w| w[0] <= w[1]),
        "segment offsets must be non-decreasing"
    );
    debug_assert_eq!(
        segs.total_len(),
        covered_rows,
        "segments must cover exactly the partitioned rows"
    );
}

/// Gathers rows of the input according to a fixed index list.
struct GatherRowsOp {
    idx: Arc<Vec<u32>>,
}
impl Op for GatherRowsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        // Scatter-add to arbitrary destination rows: different gather
        // indices may collide on one target row, so this stays serial.
        let mut g = pool::zeros(rows, cols);
        if cols > 0 {
            // The upstream gradient rows stream in order; only the
            // destination rows jump, so walk `grad` as contiguous chunks.
            for (grow, &i) in grad.data().chunks_exact(cols).zip(self.idx.iter()) {
                let target = g.row_mut(i as usize); // lint:allow(lossy-cast) -- u32 index widens losslessly
                for (t, &v) in target.iter_mut().zip(grow) {
                    *t += v;
                }
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "gather_rows"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if let Some(&bad) = self.idx.iter().find(|&&i| i as usize >= rows) {
            // lint:allow(lossy-cast) -- u32 index widens losslessly
            return Err(format!("index {bad} out of bounds for {rows} source rows"));
        }
        Ok(Some((self.idx.len(), cols)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        if let Some(rows) = a.rows.known() {
            if let Some(&bad) = self.idx.iter().find(|&&i| i as usize >= rows) {
                // lint:allow(lossy-cast) -- u32 index widens losslessly
                return Err(format!("gather_rows: index {bad} out of bounds for {rows} rows"));
            }
        }
        // A gather permutes/duplicates rows: values pass through untouched.
        Ok(AbsVal { rows: Dim::Const(self.idx.len()), ..*a })
    }
}

struct SegmentSumOp {
    segs: Arc<Segments>,
}
impl Op for SegmentSumOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        // Scratch, not zeros: the segments partition the rows, so every edge
        // row is written exactly once by the broadcast below.
        let mut g = pool::scratch(rows, cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let grow = grad.row(s);
                for e in segs.range(s) {
                    let r = e - base;
                    chunk[r * cols..(r + 1) * cols].copy_from_slice(grow);
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            rows * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_sum"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_segment_reduce(&self.segs, inputs)
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        require_segment_cover("segment_sum", &self.segs, a.rows)?;
        // A segment of n elements sums into n·[lo, hi]; n·lo and n·hi are
        // monotone in n, so the two extreme lengths bound every segment
        // (length 0 collapses to the zero row the kernel writes).
        let (min_len, max_len) = segment_len_bounds(&self.segs);
        let range = a.range.sum_of(Dim::Const(min_len)).join(a.range.sum_of(Dim::Const(max_len)));
        Ok(AbsVal {
            rows: Dim::Const(self.segs.num_segments()),
            cols: a.cols,
            range,
            nan_free: a.nan_free && a.inf_free,
            inf_free: finite_arith(range, &[a]),
        })
    }
}

struct SegmentMeanOp {
    segs: Arc<Segments>,
}
impl Op for SegmentMeanOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        // Scratch is safe despite the empty-segment `continue`: a segment
        // with no edges owns no rows, so coverage of the buffer is complete.
        let mut g = pool::scratch(rows, cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let n = segs.len_of(s);
                if n == 0 {
                    continue;
                }
                let scale = 1.0 / n as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
                let grow = grad.row(s);
                for e in segs.range(s) {
                    let r = e - base;
                    for (o, &v) in chunk[r * cols..(r + 1) * cols].iter_mut().zip(grow) {
                        *o = v * scale;
                    }
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            rows * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_mean"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_segment_reduce(&self.segs, inputs)
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        require_segment_cover("segment_mean", &self.segs, a.rows)?;
        let (min_len, max_len) = segment_len_bounds(&self.segs);
        // The kernel sums first and scales by 1/n after, so the mean stays
        // in the input hull unless the sum overflows on the way.
        let sum = a.range.sum_of(Dim::Const(max_len));
        let lo = if sum.lo == f32::NEG_INFINITY { f32::NEG_INFINITY } else { a.range.lo };
        let hi = if sum.hi == f32::INFINITY { f32::INFINITY } else { a.range.hi };
        let mut range = Interval::new(lo, hi);
        if min_len == 0 {
            range = range.hull_with_zero();
        }
        Ok(AbsVal {
            rows: Dim::Const(self.segs.num_segments()),
            cols: a.cols,
            range,
            nan_free: a.nan_free && a.inf_free,
            inf_free: a.inf_free && sum.is_finite(),
        })
    }
}

struct SegmentMaxOp {
    segs: Arc<Segments>,
    /// Winning element index per `(segment, column)`, `u32::MAX` for empty segments.
    winners: Arc<Vec<u32>>,
}
impl Op for SegmentMaxOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        let winners = &self.winners;
        let mut g = pool::zeros(rows, cols);
        // A segment's winners all lie inside the segment's own row range,
        // so segment-boundary chunks scatter disjointly.
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                for c in 0..cols {
                    let w = winners[s * cols + c];
                    if w != u32::MAX {
                        chunk[(w as usize - base) * cols + c] += grad.get(s, c);
                        // lint:allow(lossy-cast) -- u32 index widens losslessly
                    }
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            out.rows() * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_max"
    }
    fn grad_reads(&self) -> GradReads {
        // `out.rows()` sizes the partition; inputs[0] only for its shape.
        GradReads { out: true, inputs: InputReads::Only(&[0]) }
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let cols = inputs[0].1;
        if cols == 0 || !self.winners.len().is_multiple_of(cols) {
            return Err(format!(
                "saved {} winner indices for inputs with {cols} columns",
                self.winners.len()
            ));
        }
        Ok(Some((self.winners.len() / cols, cols)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        require_segment_cover("segment_max", &self.segs, a.rows)?;
        let (min_len, _) = segment_len_bounds(&self.segs);
        let mut range = a.range;
        if min_len == 0 {
            // Empty segments produce a zero row, not a -inf max.
            range = range.hull_with_zero();
        }
        Ok(AbsVal {
            rows: Dim::Const(self.segs.num_segments()),
            cols: a.cols,
            range,
            nan_free: a.nan_free,
            inf_free: a.inf_free,
        })
    }
}

/// Softmax within each segment of an `n x 1` score column.
struct SegmentSoftmaxOp {
    segs: Arc<Segments>,
}
impl Op for SegmentSoftmaxOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let segs = &self.segs;
        // Scratch: every edge row of the score column is assigned below.
        let mut g = pool::scratch(out.rows(), 1);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                let dot: f32 = range.clone().map(|e| out.get(e, 0) * grad.get(e, 0)).sum();
                for e in range {
                    let p = out.get(e, 0);
                    chunk[e - base] = p * (grad.get(e, 0) - dot);
                }
            }
        };
        debug_assert_partition(segs, out.rows());
        parallel_ranges(segs.offsets(), &|s| segs.offsets()[s], 3 * out.rows(), g.data_mut(), run);
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_softmax"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if cols != 1 {
            return Err(format!("expects an n x 1 score column, got {:?}", inputs[0]));
        }
        if rows != self.segs.total_len() {
            return Err(format!(
                "scores cover {rows} edges but segments cover {}",
                self.segs.total_len()
            ));
        }
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        require_compatible(
            "segment_softmax: expects an n x 1 score column",
            a.cols,
            Dim::Const(1),
        )?;
        require_segment_cover("segment_softmax", &self.segs, a.rows)?;
        // exp(x - max) ≤ 1 and the nonnegative partial sums dominate every
        // term, so each weight lands in [0, 1] even in f32.
        Ok(AbsVal {
            rows: Dim::Const(self.segs.total_len()),
            cols: Dim::Const(1),
            range: Interval::new(0.0, 1.0),
            nan_free: a.nan_free && a.inf_free,
            inf_free: true,
        })
    }
}

/// Fused attention aggregation over one segment axis: softmax of an
/// `E x 1` score column within each segment, immediately applied as row
/// weights over `E x d` messages. One forward kernel, one backward kernel,
/// no `alpha`/`exp` tensors on the tape.
struct SegmentAttentionOp {
    segs: Arc<Segments>,
    /// Normalised attention weight per edge (`E x 1`), saved by the forward
    /// pass. Op-private state, so the backward pass needs neither the scores
    /// nor the output value — only the messages (declared in `grad_reads`).
    alpha: Matrix,
}
impl Drop for SegmentAttentionOp {
    fn drop(&mut self) {
        // `alpha` is a pooled buffer living inside the op rather than as a
        // node value, so tape teardown cannot see it; hand it back here to
        // keep steady-state training steps allocation-free.
        pool::put(std::mem::replace(&mut self.alpha, Matrix::from_vec(0, 0, Vec::new())));
    }
}
impl Op for SegmentAttentionOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[1].shape();
        let msgs = inputs[1];
        let segs = &self.segs;
        let alpha = self.alpha.data();
        // Scratch, not zeros: the first sweep below assigns every edge's
        // score slot and message row exactly once (empty segments own no
        // rows), so the ~3x-wide memset would be pure memory traffic.
        let mut gs = pool::scratch(rows, 1);
        let mut gm = pool::scratch(rows, cols);
        // Per segment s with upstream row g = grad[s,:]:
        //   d_alpha[e]   = <messages[e,:], g>
        //   d_score[e]   = alpha[e] * (d_alpha[e] - Σ_e alpha[e]·d_alpha[e])
        //   d_message[e] = alpha[e] * g
        // Both gradients scatter only into the segment's own edge rows, so
        // the pair partition at segment boundaries writes disjointly.
        let fl = crate::simd::flavour();
        let run = |srange: Range<usize>, mchunk: &mut [f32], schunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                if range.is_empty() {
                    continue;
                }
                let grow = grad.row(s);
                let sseg = &mut schunk[range.start - base..range.end - base];
                if cols == 0 {
                    // Zero-width messages: every gradient dot is zero.
                    sseg.fill(0.0);
                    continue;
                }
                // One pass over the wide `E x d` rows: d_message is
                // independent of the segment reduction, so only the narrow
                // score column needs the second sweep once dot_s is known.
                let mut dot_s = 0.0f32;
                // Contiguous slabs for the segment's message rows and their
                // gradient rows; `chunks_exact` avoids per-edge `row()` calls.
                let seg_msgs = &msgs.data()[range.start * cols..range.end * cols];
                let seg_gm = &mut mchunk[(range.start - base) * cols..(range.end - base) * cols];
                let aseg_w = &alpha[range];
                for (((mrow_src, mrow_dst), &a), slot) in seg_msgs
                    .chunks_exact(cols)
                    .zip(seg_gm.chunks_exact_mut(cols))
                    .zip(aseg_w)
                    .zip(sseg.iter_mut())
                {
                    let da = fl.dot_scale(mrow_src, grow, a, mrow_dst);
                    *slot = da;
                    dot_s += a * da;
                }
                for (slot, &a) in sseg.iter_mut().zip(aseg_w) {
                    *slot = a * (*slot - dot_s);
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges_pair(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            &|s| segs.offsets()[s],
            rows * (cols + 3),
            gm.data_mut(),
            gs.data_mut(),
            run,
        );
        vec![Some(gs), Some(gm)]
    }
    fn name(&self) -> &'static str {
        "segment_attention"
    }
    fn grad_reads(&self) -> GradReads {
        // Scores and the output are never revisited: the saved alpha column
        // carries everything the softmax backward needs. The planner may
        // free both as soon as the forward pass is done.
        GradReads { out: false, inputs: InputReads::Only(&[1]) }
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (srows, scols) = inputs[0];
        let (mrows, cols) = inputs[1];
        if scols != 1 {
            return Err(format!("expects an n x 1 score column, got {:?}", inputs[0]));
        }
        if srows != self.segs.total_len() || mrows != self.segs.total_len() {
            return Err(format!(
                "scores cover {srows} and messages {mrows} edges but segments cover {}",
                self.segs.total_len()
            ));
        }
        Ok(Some((self.segs.num_segments(), cols)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let (s, m) = (&inputs[0], &inputs[1]);
        require_compatible(
            "segment_attention: expects an n x 1 score column",
            s.cols,
            Dim::Const(1),
        )?;
        require_segment_cover("segment_attention scores", &self.segs, s.rows)?;
        require_segment_cover("segment_attention messages", &self.segs, m.rows)?;
        // Convex combination of message rows (empty segments give zero
        // rows), dilated for the kernel's reciprocal-normalisation rounding.
        let range = dilate(m.range.hull_with_zero(), 1e-4);
        let clean = s.nan_free && s.inf_free && m.nan_free && m.inf_free;
        Ok(AbsVal {
            rows: Dim::Const(self.segs.num_segments()),
            cols: m.cols,
            range,
            nan_free: clean,
            inf_free: clean && range.is_finite(),
        })
    }
}

/// [`SegmentAttentionOp`] with the message gather folded in: messages are
/// rows of a node-level `N x d` tensor addressed through a fixed index
/// list, so the `E x d` gathered plane never materialises — neither
/// forward (rows are read straight from the source) nor backward (weighted
/// gradient rows scatter straight into the `N x d` input gradient).
struct GatherAttentionOp {
    idx: Arc<Vec<u32>>,
    segs: Arc<Segments>,
    /// Normalised attention weight per edge (`E x 1`), saved by the
    /// forward pass; pooled op-private state like [`SegmentAttentionOp`].
    alpha: Matrix,
}
impl Drop for GatherAttentionOp {
    fn drop(&mut self) {
        pool::put(std::mem::replace(&mut self.alpha, Matrix::from_vec(0, 0, Vec::new())));
    }
}
impl Op for GatherAttentionOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let xv = inputs[1];
        let (nrows, cols) = xv.shape();
        let segs = &self.segs;
        let alpha = self.alpha.data();
        let total = segs.total_len();
        // Scores are written exactly once per edge (scratch); the node
        // gradient is a scatter-add over arbitrary destination rows, so it
        // must start from zeros and, like `gather_rows`, stay serial —
        // different edges may collide on one target row.
        let mut gs = pool::scratch(total, 1);
        let mut gx = pool::zeros(nrows, cols);
        let fl = crate::simd::flavour();
        let gs_data = gs.data_mut();
        for s in 0..segs.num_segments() {
            let range = segs.range(s);
            if range.is_empty() {
                continue;
            }
            let grow = grad.row(s);
            let sseg = &mut gs_data[range.clone()];
            if cols == 0 {
                sseg.fill(0.0);
                continue;
            }
            let aseg = &alpha[range.clone()];
            let iseg = &self.idx[range];
            // Same two sweeps as the materialised backward, with the same
            // arithmetic order, so results are bitwise identical to
            // `gather_rows` + `segment_attention`: the dot accumulation
            // matches `dot_scale`, and the scatter adds `alpha * grad` per
            // edge in global edge order (segments partition the edges in
            // order, and the unfused scatter also walks edges in order).
            let mut dot_s = 0.0f32;
            for ((slot, &a), &i) in sseg.iter_mut().zip(aseg).zip(iseg) {
                let da = fl.dot(xv.row(i as usize), grow); // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                *slot = da;
                dot_s += a * da;
            }
            for ((slot, &a), &i) in sseg.iter_mut().zip(aseg).zip(iseg) {
                *slot = a * (*slot - dot_s);
                let target = gx.row_mut(i as usize); // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                for (t, &g) in target.iter_mut().zip(grow) {
                    *t += a * g;
                }
            }
        }
        vec![Some(gs), Some(gx)]
    }
    fn name(&self) -> &'static str {
        "gather_attention"
    }
    fn grad_reads(&self) -> GradReads {
        // Like `segment_attention`, the saved alpha column replaces the
        // scores and the output; only the node features are revisited.
        GradReads { out: false, inputs: InputReads::Only(&[1]) }
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (srows, scols) = inputs[0];
        let (xrows, cols) = inputs[1];
        if scols != 1 {
            return Err(format!("expects an n x 1 score column, got {:?}", inputs[0]));
        }
        if srows != self.segs.total_len() || self.idx.len() != self.segs.total_len() {
            return Err(format!(
                "scores cover {srows} and indices {} edges but segments cover {}",
                self.idx.len(),
                self.segs.total_len()
            ));
        }
        if let Some(&bad) = self.idx.iter().find(|&&i| i as usize >= xrows) {
            // lint:allow(lossy-cast) -- u32 index widens losslessly
            return Err(format!("index {bad} out of bounds for {xrows} source rows"));
        }
        Ok(Some((self.segs.num_segments(), cols)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let (s, x) = (&inputs[0], &inputs[1]);
        require_compatible(
            "gather_attention: expects an n x 1 score column",
            s.cols,
            Dim::Const(1),
        )?;
        require_segment_cover("gather_attention scores", &self.segs, s.rows)?;
        if self.idx.len() != self.segs.total_len() {
            return Err(format!(
                "gather_attention: {} indices but segments cover {} edges",
                self.idx.len(),
                self.segs.total_len()
            ));
        }
        if let Some(xrows) = x.rows.known() {
            if let Some(&bad) = self.idx.iter().find(|&&i| i as usize >= xrows) {
                // lint:allow(lossy-cast) -- u32 index widens losslessly
                return Err(format!(
                    "gather_attention: index {bad} out of bounds for {xrows} rows"
                ));
            }
        }
        // Same convex-combination bound as `segment_attention` — the gather
        // only changes the addressing of the message rows.
        let range = dilate(x.range.hull_with_zero(), 1e-4);
        let clean = s.nan_free && s.inf_free && x.nan_free && x.inf_free;
        Ok(AbsVal {
            rows: Dim::Const(self.segs.num_segments()),
            cols: x.cols,
            range,
            nan_free: clean,
            inf_free: clean && range.is_finite(),
        })
    }
}

/// Scales row `i` of an `n x c` tensor by the scalar `w[i]` of an `n x 1`
/// tensor (attention weighting of gathered neighbor features).
struct MulColBroadcastOp;
impl Op for MulColBroadcastOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let (a, w) = (inputs[0], inputs[1]);
        // Scratch: the row loop assigns every element of both planes.
        let mut ga = pool::scratch(rows, cols);
        let mut gw = pool::scratch(rows, 1);
        let run = |rrange: Range<usize>, ac: &mut [f32], wc: &mut [f32]| {
            let base = rrange.start;
            for r in rrange {
                let wv = w.get(r, 0);
                let arow = a.row(r);
                let grow = grad.row(r);
                let garow = &mut ac[(r - base) * cols..(r - base + 1) * cols];
                let mut acc = 0.0;
                for ((gav, &g), &av) in garow.iter_mut().zip(grow).zip(arow) {
                    *gav = g * wv;
                    acc += g * av;
                }
                wc[r - base] = acc;
            }
        };
        parallel_rows_pair(rows, cols, 1, 2 * rows * cols, ga.data_mut(), gw.data_mut(), run);
        vec![Some(ga), Some(gw)]
    }
    fn name(&self) -> &'static str {
        "mul_col_broadcast"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::INPUTS_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if inputs[1] != (inputs[0].0, 1) {
            return Err(format!(
                "weights must be {} x 1 for a {:?} input, got {:?}",
                inputs[0].0, inputs[0], inputs[1]
            ));
        }
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let (a, w) = (&inputs[0], &inputs[1]);
        require_compatible("mul_col_broadcast: weight rows must match the input", w.rows, a.rows)?;
        require_compatible(
            "mul_col_broadcast: weights must be a single column",
            w.cols,
            Dim::Const(1),
        )?;
        let range = a.range.mul(w.range);
        Ok(AbsVal {
            rows: a.rows.join2(w.rows),
            cols: a.cols,
            range,
            nan_free: nan_free_mul(a, w),
            inf_free: finite_arith(range, &[a, w]),
        })
    }
}

/// Shared shape transfer for segment reductions: the input covers every
/// segmented element, the output has one row per segment.
fn infer_segment_reduce(segs: &Segments, inputs: &[(usize, usize)]) -> InferredShape {
    let (rows, cols) = inputs[0];
    if rows != segs.total_len() {
        return Err(format!("input has {rows} rows but segments cover {}", segs.total_len()));
    }
    Ok(Some((segs.num_segments(), cols)))
}

impl Tape {
    /// Gathers rows of `a` by index (e.g. source-node features per edge).
    pub fn gather_rows(&mut self, a: Tensor, idx: &Arc<Vec<u32>>) -> Tensor {
        let av = self.value_arc(a);
        let rows = av.rows();
        assert!(
            idx.iter().all(|&i| (i as usize) < rows), // lint:allow(lossy-cast) -- u32 index widens losslessly
            "gather_rows index out of bounds (source has {rows} rows)"
        );
        let cols = av.cols();
        // Scratch: every output row is copied from the source (for
        // `cols == 0` the buffer is zero-length, so the guard below is moot).
        let mut out = pool::scratch(idx.len(), cols);
        if cols > 0 {
            let run = |orange: Range<usize>, chunk: &mut [f32]| {
                for (dst, &i) in chunk.chunks_exact_mut(cols).zip(&idx[orange]) {
                    dst.copy_from_slice(av.row(i as usize));
                    // lint:allow(lossy-cast) -- u32 index widens losslessly
                }
            };
            crate::parallel::timed("gather_rows", || {
                parallel_rows(idx.len(), cols, idx.len() * cols, out.data_mut(), run)
            });
        }
        self.push_op(out, Box::new(GatherRowsOp { idx: Arc::clone(idx) }), vec![a])
    }

    fn check_segments(&self, a: Tensor, segs: &Segments, what: &str) {
        assert_eq!(
            self.value(a).rows(),
            segs.total_len(),
            "{what}: tensor has {} rows but segments cover {}",
            self.value(a).rows(),
            segs.total_len()
        );
    }

    /// Per-segment row sums: `total_len x c -> num_segments x c`.
    pub fn segment_sum(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_sum");
        let av = self.value_arc(a);
        let cols = av.cols();
        let mut out = pool::zeros(segs.num_segments(), cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            if cols == 0 {
                return; // zero-width rows: nothing to reduce (and chunks_exact(0) is invalid)
            }
            for (si, s) in srange.enumerate() {
                let orow = &mut chunk[si * cols..(si + 1) * cols];
                let r = segs.range(s);
                // Segment rows are contiguous: stream the slab chunk-wise.
                for erow in av.data()[r.start * cols..r.end * cols].chunks_exact(cols) {
                    crate::simd::add_assign(erow, orow);
                }
            }
        };
        crate::parallel::timed("segment_sum", || {
            parallel_ranges(
                segs.offsets(),
                &|s| s * cols,
                segs.total_len() * cols,
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentSumOp { segs: Arc::clone(segs) }), vec![a])
    }

    /// Per-segment row means (empty segments yield zero rows).
    pub fn segment_mean(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_mean");
        let av = self.value_arc(a);
        let cols = av.cols();
        let mut out = pool::zeros(segs.num_segments(), cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            if cols == 0 {
                return; // zero-width rows: nothing to reduce (and chunks_exact(0) is invalid)
            }
            for (si, s) in srange.enumerate() {
                let n = segs.len_of(s);
                if n == 0 {
                    continue;
                }
                let orow = &mut chunk[si * cols..(si + 1) * cols];
                let r = segs.range(s);
                for erow in av.data()[r.start * cols..r.end * cols].chunks_exact(cols) {
                    crate::simd::add_assign(erow, orow);
                }
                let scale = 1.0 / n as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
                for o in orow {
                    *o *= scale;
                }
            }
        };
        crate::parallel::timed("segment_mean", || {
            parallel_ranges(
                segs.offsets(),
                &|s| s * cols,
                segs.total_len() * cols,
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentMeanOp { segs: Arc::clone(segs) }), vec![a])
    }

    /// Per-segment elementwise max (empty segments yield zero rows).
    pub fn segment_max(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_max");
        let av = self.value_arc(a);
        let cols = av.cols();
        let nseg = segs.num_segments();
        let mut out = pool::zeros(nseg, cols);
        let mut winners = vec![u32::MAX; nseg * cols];
        if cols > 0 {
            let run = |srange: Range<usize>, ochunk: &mut [f32], wchunk: &mut [u32]| {
                for (si, s) in srange.enumerate() {
                    if segs.len_of(s) == 0 {
                        continue;
                    }
                    for c in 0..cols {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_e = u32::MAX;
                        for e in segs.range(s) {
                            let v = av.get(e, c);
                            if v > best {
                                best = v;
                                best_e = e as u32; // lint:allow(lossy-cast) -- edge ids fit the u32 CSR domain
                            }
                        }
                        ochunk[si * cols + c] = best;
                        wchunk[si * cols + c] = best_e;
                    }
                }
            };
            crate::parallel::timed("segment_max", || {
                parallel_ranges_pair(
                    segs.offsets(),
                    &|s| s * cols,
                    &|s| s * cols,
                    segs.total_len() * cols,
                    out.data_mut(),
                    &mut winners,
                    run,
                )
            });
        }
        self.push_op(
            out,
            Box::new(SegmentMaxOp { segs: Arc::clone(segs), winners: Arc::new(winners) }),
            vec![a],
        )
    }

    /// Numerically-stable softmax over each segment of an `n x 1` score
    /// column — the attention normalisation over each node's in-edges.
    pub fn segment_softmax(&mut self, scores: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(scores, segs, "segment_softmax");
        assert_eq!(self.value(scores).cols(), 1, "segment_softmax expects an n x 1 score column");
        let sv = self.value_arc(scores);
        let mut out = pool::clone_of(&sv);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                if range.is_empty() {
                    continue;
                }
                let seg = &mut chunk[range.start - base..range.end - base];
                let max = seg.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                let mut sum = 0.0;
                for v in seg.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in seg {
                    *v /= sum;
                }
            }
        };
        crate::parallel::timed("segment_softmax", || {
            parallel_ranges(
                segs.offsets(),
                &|s| segs.offsets()[s],
                3 * segs.total_len(),
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentSoftmaxOp { segs: Arc::clone(segs) }), vec![scores])
    }

    /// Fused attention aggregation: numerically-stable softmax over each
    /// segment of the `E x 1` `scores` column, applied in the same kernel
    /// as row weights over the `E x d` `messages` —
    /// `out[s,:] = Σ_{e∈s} α[e] · messages[e,:]`.
    ///
    /// Replaces the `segment_softmax` → `mul_col_broadcast` → `segment_sum`
    /// chain with one op: no `alpha`, `exp` or weighted `E x d`
    /// intermediate ever lands on the tape, and the backward pass emits
    /// both gradients in a single sweep. The normalised weights live in
    /// op-private state, so the dataflow planner can retire the scores
    /// right after this op runs (see the op's `GradReads`).
    ///
    /// The forward kernel writes two planes — the `num_segments x d` output
    /// and the per-edge weight column — through the pair partition, which
    /// proves and shadow-audits both write patterns at segment boundaries.
    pub fn segment_attention(
        &mut self,
        scores: Tensor,
        messages: Tensor,
        segs: &Arc<Segments>,
    ) -> Tensor {
        self.check_segments(scores, segs, "segment_attention");
        self.check_segments(messages, segs, "segment_attention");
        assert_eq!(self.value(scores).cols(), 1, "segment_attention expects an n x 1 score column");
        let sv = self.value_arc(scores);
        let mv = self.value_arc(messages);
        let cols = mv.cols();
        // Both planes are scratch: every segment's output row is written
        // below (empty segments explicitly zero-filled), and every edge's
        // alpha slot is assigned by the softmax sweep.
        let mut out = pool::scratch(segs.num_segments(), cols);
        let mut alpha = pool::scratch(segs.total_len(), 1);
        let fl = crate::simd::flavour();
        let run = |srange: Range<usize>, ochunk: &mut [f32], achunk: &mut [f32]| {
            let obase = srange.start;
            let abase = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                if range.is_empty() {
                    ochunk[(s - obase) * cols..(s - obase + 1) * cols].fill(0.0);
                    continue;
                }
                let aseg = &mut achunk[range.start - abase..range.end - abase];
                let seg_scores = &sv.data()[range.clone()];
                let max = seg_scores.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                for (a, &v) in aseg.iter_mut().zip(seg_scores) {
                    *a = v - max;
                }
                fl.exp(aseg);
                let mut sum = 0.0;
                for &a in aseg.iter() {
                    sum += a;
                }
                let inv = 1.0 / sum;
                if cols == 0 {
                    for a in aseg.iter_mut() {
                        *a *= inv;
                    }
                    continue;
                }
                let orow = &mut ochunk[(s - obase) * cols..(s - obase + 1) * cols];
                // The segment's message rows are contiguous, so iterate the
                // slab with `chunks_exact` instead of per-edge `row()` calls
                // — same order, same arithmetic, no per-row index math. The
                // first edge *writes* its weighted row (`out` is scratch, so
                // there is no zero to accumulate onto); the rest accumulate.
                let seg_msgs = &mv.data()[range.start * cols..range.end * cols];
                let mut edges = aseg.iter_mut().zip(seg_msgs.chunks_exact(cols));
                if let Some((a, mrow)) = edges.next() {
                    *a *= inv;
                    crate::simd::scale(*a, mrow, orow);
                }
                for (a, mrow) in edges {
                    *a *= inv;
                    fl.axpy(*a, mrow, orow);
                }
            }
        };
        debug_assert_partition(segs, sv.rows());
        crate::parallel::timed("segment_attention", || {
            parallel_ranges_pair(
                segs.offsets(),
                &|s| s * cols,
                &|s| segs.offsets()[s],
                segs.total_len() * (cols + 3),
                out.data_mut(),
                alpha.data_mut(),
                run,
            )
        });
        self.push_op(
            out,
            Box::new(SegmentAttentionOp { segs: Arc::clone(segs), alpha }),
            vec![scores, messages],
        )
    }

    /// [`Tape::segment_attention`] with the message gather folded in:
    /// `out[s,:] = Σ_{e∈s} α[e] · x[idx[e],:]` where `α` is the per-segment
    /// softmax of `scores`. Equivalent to
    /// `segment_attention(scores, gather_rows(x, idx), segs)` — bitwise, in
    /// both values and gradients — but the `E x d` gathered plane never
    /// exists: the forward pass reads source rows in place, and the
    /// backward pass scatters `α[e] · grad[s,:]` straight into the node
    /// gradient. For edge counts well above the node count this removes
    /// the dominant memory streams of the attention step (the gather write,
    /// its re-read, and the mirrored pair in the backward pass).
    pub fn gather_attention(
        &mut self,
        scores: Tensor,
        x: Tensor,
        idx: &Arc<Vec<u32>>,
        segs: &Arc<Segments>,
    ) -> Tensor {
        self.check_segments(scores, segs, "gather_attention");
        assert_eq!(self.value(scores).cols(), 1, "gather_attention expects an n x 1 score column");
        assert_eq!(
            idx.len(),
            segs.total_len(),
            "gather_attention: {} indices but segments cover {} edges",
            idx.len(),
            segs.total_len()
        );
        let sv = self.value_arc(scores);
        let xv = self.value_arc(x);
        let nrows = xv.rows();
        assert!(
            idx.iter().all(|&i| (i as usize) < nrows), // lint:allow(lossy-cast) -- u32 index widens losslessly
            "gather_attention index out of bounds (source has {nrows} rows)"
        );
        let cols = xv.cols();
        // Same scratch discipline and pair partition as `segment_attention`:
        // every output row and every alpha slot is written below.
        let mut out = pool::scratch(segs.num_segments(), cols);
        let mut alpha = pool::scratch(segs.total_len(), 1);
        let fl = crate::simd::flavour();
        let run = |srange: Range<usize>, ochunk: &mut [f32], achunk: &mut [f32]| {
            let obase = srange.start;
            let abase = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                if range.is_empty() {
                    ochunk[(s - obase) * cols..(s - obase + 1) * cols].fill(0.0);
                    continue;
                }
                let aseg = &mut achunk[range.start - abase..range.end - abase];
                let seg_scores = &sv.data()[range.clone()];
                let max = seg_scores.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                for (a, &v) in aseg.iter_mut().zip(seg_scores) {
                    *a = v - max;
                }
                fl.exp(aseg);
                let mut sum = 0.0;
                for &a in aseg.iter() {
                    sum += a;
                }
                let inv = 1.0 / sum;
                if cols == 0 {
                    for a in aseg.iter_mut() {
                        *a *= inv;
                    }
                    continue;
                }
                let orow = &mut ochunk[(s - obase) * cols..(s - obase + 1) * cols];
                // Message rows are read in place through the index list —
                // same order and arithmetic as the materialised kernel, so
                // the output is bitwise identical to gather + attention.
                let mut edges = aseg.iter_mut().zip(&idx[range]);
                if let Some((a, &i)) = edges.next() {
                    *a *= inv;
                    crate::simd::scale(*a, xv.row(i as usize), orow); // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                }
                for (a, &i) in edges {
                    *a *= inv;
                    fl.axpy(*a, xv.row(i as usize), orow); // lint:allow(lossy-cast) -- u32 row index widens losslessly into usize
                }
            }
        };
        debug_assert_partition(segs, sv.rows());
        crate::parallel::timed("gather_attention", || {
            parallel_ranges_pair(
                segs.offsets(),
                &|s| s * cols,
                &|s| segs.offsets()[s],
                segs.total_len() * (cols + 3),
                out.data_mut(),
                alpha.data_mut(),
                run,
            )
        });
        self.push_op(
            out,
            Box::new(GatherAttentionOp { idx: Arc::clone(idx), segs: Arc::clone(segs), alpha }),
            vec![scores, x],
        )
    }

    /// Row-wise scaling of an `n x c` tensor by an `n x 1` weight column.
    pub fn mul_col_broadcast(&mut self, a: Tensor, w: Tensor) -> Tensor {
        let av = self.value_arc(a);
        let wv = self.value_arc(w);
        let (rows, cols) = av.shape();
        assert_eq!(wv.shape(), (rows, 1), "weights must be {rows} x 1");
        // Scratch: every row is scaled into place (zero-length when cols == 0).
        let mut out = pool::scratch(rows, cols);
        if cols > 0 {
            let run = |rrange: Range<usize>, chunk: &mut [f32]| {
                let base = rrange.start;
                for r in rrange {
                    let orow = &mut chunk[(r - base) * cols..(r - base + 1) * cols];
                    crate::simd::scale(wv.get(r, 0), av.row(r), orow);
                }
            };
            crate::parallel::timed("mul_col_broadcast", || {
                parallel_rows(rows, cols, rows * cols, out.data_mut(), run)
            });
        }
        self.push_op(out, Box::new(MulColBroadcastOp), vec![a, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::VarStore;

    fn segs(lengths: &[usize]) -> Arc<Segments> {
        Arc::new(Segments::from_lengths(lengths))
    }

    #[test]
    fn segments_from_lengths() {
        let s = Segments::from_lengths(&[2, 0, 3]);
        assert_eq!(s.num_segments(), 3);
        assert_eq!(s.total_len(), 5);
        assert_eq!(s.range(0), 0..2);
        assert_eq!(s.range(1), 2..2);
        assert_eq!(s.range(2), 2..5);
        assert_eq!(s.offsets(), &[0, 2, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn segments_reject_unsorted() {
        let _ = Segments::new(vec![0, 3, 1]);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let idx = Arc::new(vec![0u32, 0, 1]);
        let g = tape.gather_rows(ta, &idx);
        assert_eq!(tape.value(g).data(), &[1.0, 1.0, 2.0]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        // Row 0 gathered twice => gradient 2.
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 1.0]);
    }

    #[test]
    fn segment_sum_and_mean_values() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]));
        let s = segs(&[2, 0, 3]);
        let sum = tape.segment_sum(x, &s);
        assert_eq!(tape.value(sum).data(), &[3.0, 0.0, 12.0]);
        let mean = tape.segment_mean(x, &s);
        assert_eq!(tape.value(mean).data(), &[1.5, 0.0, 4.0]);
    }

    #[test]
    fn segment_mean_grad_is_uniform_within_segment() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let s = segs(&[4]);
        let m = tape.segment_mean(ta, &s);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert!(g.get(a).unwrap().data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn segment_max_values_and_grad() {
        let mut store = VarStore::new();
        let a =
            store.add("a", Matrix::from_vec(4, 2, vec![1.0, 9.0, 5.0, 2.0, 0.0, 0.0, -1.0, 3.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let s = segs(&[2, 2]);
        let m = tape.segment_max(ta, &s);
        assert_eq!(tape.value(m).data(), &[5.0, 9.0, 0.0, 3.0]);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(5, 1, vec![10.0, 20.0, -5.0, 0.0, 5.0]));
        let s = segs(&[2, 3]);
        let p = tape.segment_softmax(x, &s);
        let v = tape.value(p);
        assert!((v.get(0, 0) + v.get(1, 0) - 1.0).abs() < 1e-5);
        assert!((v.get(2, 0) + v.get(3, 0) + v.get(4, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn segment_softmax_handles_extreme_scores() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 1, vec![1000.0, -1000.0]));
        let s = segs(&[2]);
        let p = tape.segment_softmax(x, &s);
        assert!(!tape.value(p).has_non_finite());
        assert!((tape.value(p).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_attention_matches_unfused_chain() {
        let mut store = VarStore::new();
        let scores = store.add("s", Matrix::from_vec(5, 1, vec![0.3, -1.2, 0.0, 2.0, 0.7]));
        let msgs = store.add(
            "m",
            Matrix::from_vec(5, 2, vec![1.0, 2.0, -3.0, 0.5, 4.0, -1.0, 0.25, 2.5, -0.5, 1.5]),
        );
        let s = segs(&[2, 0, 3]);

        let mut fused = Tape::new(0);
        let fs = fused.param(&store, scores);
        let fm = fused.param(&store, msgs);
        let fy = fused.segment_attention(fs, fm, &s);
        let floss = fused.sum_all(fy);
        let fg = fused.backward(floss);

        let mut chain = Tape::new(0);
        let cs = chain.param(&store, scores);
        let cm = chain.param(&store, msgs);
        let alpha = chain.segment_softmax(cs, &s);
        let weighted = chain.mul_col_broadcast(cm, alpha);
        let cy = chain.segment_sum(weighted, &s);
        let closs = chain.sum_all(cy);
        let cg = chain.backward(closs);

        let fv = fused.value(fy);
        let cv = chain.value(cy);
        assert_eq!(fv.shape(), (3, 2));
        for (a, b) in fv.data().iter().zip(cv.data()) {
            assert!((a - b).abs() < 1e-5, "forward fused {a} vs chain {b}");
        }
        // Empty segment 1 stays a zero row.
        assert_eq!(&fv.data()[2..4], &[0.0, 0.0]);
        for p in [scores, msgs] {
            let gf = fg.get(p).unwrap();
            let gc = cg.get(p).unwrap();
            for (a, b) in gf.data().iter().zip(gc.data()) {
                assert!((a - b).abs() < 1e-5, "grad fused {a} vs chain {b}");
            }
        }
    }

    /// The gather-fused kernel promises *bitwise* agreement with the
    /// materialised `gather_rows` + `segment_attention` composition, in both
    /// the forward value and every gradient — the two paths run the same
    /// arithmetic in the same order, only the addressing differs.
    #[test]
    fn gather_attention_is_bitwise_equal_to_gather_then_attention() {
        let mut store = VarStore::new();
        let x =
            store.add("x", Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin() * 2.0));
        let sc = store.add("sc", Matrix::from_fn(7, 1, |r, _| ((r as f32) - 2.5) * 0.8));
        // Repeated indices exercise the scatter-add collisions; segment
        // lengths include an empty segment.
        let idx = Arc::new(vec![0u32, 5, 2, 2, 4, 0, 1]);
        let s = segs(&[3, 0, 2, 2]);

        let mut fused = Tape::new(0);
        let fs = fused.param(&store, sc);
        let fx = fused.param(&store, x);
        let fy = fused.gather_attention(fs, fx, &idx, &s);
        let floss = fused.sum_all(fy);
        let fg = fused.backward(floss);

        let mut chain = Tape::new(0);
        let cs = chain.param(&store, sc);
        let cx = chain.param(&store, x);
        let cm = chain.gather_rows(cx, &idx);
        let cy = chain.segment_attention(cs, cm, &s);
        let closs = chain.sum_all(cy);
        let cg = chain.backward(closs);

        assert_eq!(fused.value(fy).data(), chain.value(cy).data(), "forward values diverge");
        for p in [sc, x] {
            assert_eq!(
                fg.get(p).unwrap().data(),
                cg.get(p).unwrap().data(),
                "gradient for {} diverges",
                store.name(p)
            );
        }
    }

    #[test]
    fn segment_attention_weights_are_normalised() {
        // With all-ones messages every output row is exactly the segment's
        // softmax mass, i.e. 1 for non-empty segments.
        let mut tape = Tape::new(0);
        let sc = tape.constant(Matrix::from_vec(4, 1, vec![5.0, -2.0, 0.0, 1.0]));
        let ms = tape.constant(Matrix::full(4, 3, 1.0));
        let s = segs(&[3, 1]);
        let y = tape.segment_attention(sc, ms, &s);
        for &v in tape.value(y).data() {
            assert!((v - 1.0).abs() < 1e-6, "weights must sum to one, got {v}");
        }
    }

    #[test]
    fn segment_attention_handles_extreme_scores() {
        let mut tape = Tape::new(0);
        let sc = tape.constant(Matrix::from_vec(2, 1, vec![1000.0, -1000.0]));
        let ms = tape.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let s = segs(&[2]);
        let y = tape.segment_attention(sc, ms, &s);
        assert!(!tape.value(y).has_non_finite());
        assert!((tape.value(y).get(0, 0) - 1.0).abs() < 1e-5);
        assert!((tape.value(y).get(0, 1) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn mul_col_broadcast_grads() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let w = store.add("w", Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tw = tape.param(&store, w);
        let y = tape.mul_col_broadcast(ta, tw);
        assert_eq!(tape.value(y).data(), &[10.0, 20.0, 60.0, 80.0]);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[10.0, 10.0, 20.0, 20.0]);
        assert_eq!(g.get(w).unwrap().data(), &[3.0, 7.0]);
    }
}
