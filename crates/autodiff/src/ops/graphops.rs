//! Graph-structured tape ops: row gathering, segment reductions and the
//! per-destination edge softmax that powers every attention aggregator.
//!
//! All segment ops assume the edge dimension is grouped: edges into the
//! same destination node occupy a contiguous range described by
//! [`Segments`]. The graph crate produces edge lists in exactly this order.
//!
//! Forward and backward kernels here are partitioned across the shared
//! worker scheme in [`crate::parallel`] — always at *segment* boundaries,
//! so each segment is reduced (or scattered into) whole by one worker
//! running the identical serial inner loop. Outputs are therefore bitwise
//! identical at any thread count, which the determinism tests assert.

use std::ops::Range;
use std::sync::Arc;

use crate::audit::Arity;
use crate::dataflow::{GradReads, InputReads};
use crate::matrix::Matrix;
use crate::parallel::{parallel_ranges, parallel_ranges_pair, parallel_rows, parallel_rows_pair};
use crate::pool;
use crate::tape::{Op, Tape, Tensor};

type InferredShape = Result<Option<(usize, usize)>, String>;

/// Boundaries of contiguous segments over a length-`n` axis.
///
/// `offsets` has `num_segments + 1` entries; segment `s` covers
/// `offsets[s]..offsets[s + 1]`. Empty segments are allowed.
#[derive(Clone, Debug)]
pub struct Segments {
    offsets: Vec<usize>,
}

impl Segments {
    /// # Panics
    /// Panics if `offsets` is empty or not monotonically non-decreasing.
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "segments need at least one offset");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "segment offsets must be sorted");
        Self { offsets }
    }

    /// Builds segments from per-segment lengths.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lengths.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &l in lengths {
            acc += l;
            offsets.push(acc);
        }
        Self { offsets }
    }

    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of elements covered.
    pub fn total_len(&self) -> usize {
        *self.offsets.last().expect("non-empty by construction") // lint:allow(expect)
    }

    /// The raw offset array (`num_segments + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    #[inline]
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.offsets[s]..self.offsets[s + 1]
    }

    #[inline]
    pub fn len_of(&self, s: usize) -> usize {
        self.offsets[s + 1] - self.offsets[s]
    }
}

/// `balanced_cuts` invariants, asserted at the partition call sites: the
/// offsets handed to [`parallel_ranges`] are the cumulative-weight array
/// the load balancer cuts on, so they must be non-decreasing and their
/// span must cover exactly the rows the kernel is about to process —
/// otherwise a cut could land inside a segment and split one item across
/// two workers.
#[inline]
fn debug_assert_partition(segs: &Segments, covered_rows: usize) {
    debug_assert!(
        segs.offsets().windows(2).all(|w| w[0] <= w[1]),
        "segment offsets must be non-decreasing"
    );
    debug_assert_eq!(
        segs.total_len(),
        covered_rows,
        "segments must cover exactly the partitioned rows"
    );
}

/// Gathers rows of the input according to a fixed index list.
struct GatherRowsOp {
    idx: Arc<Vec<u32>>,
}
impl Op for GatherRowsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        // Scatter-add to arbitrary destination rows: different gather
        // indices may collide on one target row, so this stays serial.
        let mut g = pool::zeros(rows, cols);
        for (o, &i) in self.idx.iter().enumerate() {
            let grow = grad.row(o);
            let target = g.row_mut(i as usize); // u32 index widens losslessly // lint:allow(lossy-cast)
            for (t, &v) in target.iter_mut().zip(grow) {
                *t += v;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "gather_rows"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if let Some(&bad) = self.idx.iter().find(|&&i| i as usize >= rows) {
            // u32 index widens losslessly // lint:allow(lossy-cast)
            return Err(format!("index {bad} out of bounds for {rows} source rows"));
        }
        Ok(Some((self.idx.len(), cols)))
    }
}

struct SegmentSumOp {
    segs: Arc<Segments>,
}
impl Op for SegmentSumOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        let mut g = pool::zeros(rows, cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let grow = grad.row(s);
                for e in segs.range(s) {
                    let r = e - base;
                    chunk[r * cols..(r + 1) * cols].copy_from_slice(grow);
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            rows * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_sum"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_segment_reduce(&self.segs, inputs)
    }
}

struct SegmentMeanOp {
    segs: Arc<Segments>,
}
impl Op for SegmentMeanOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        let mut g = pool::zeros(rows, cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let n = segs.len_of(s);
                if n == 0 {
                    continue;
                }
                let scale = 1.0 / n as f32; // count stays far below 2^24 // lint:allow(lossy-cast)
                let grow = grad.row(s);
                for e in segs.range(s) {
                    let r = e - base;
                    for (o, &v) in chunk[r * cols..(r + 1) * cols].iter_mut().zip(grow) {
                        *o = v * scale;
                    }
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            rows * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_mean"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_segment_reduce(&self.segs, inputs)
    }
}

struct SegmentMaxOp {
    segs: Arc<Segments>,
    /// Winning element index per `(segment, column)`, `u32::MAX` for empty segments.
    winners: Arc<Vec<u32>>,
}
impl Op for SegmentMaxOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let segs = &self.segs;
        let winners = &self.winners;
        let mut g = pool::zeros(rows, cols);
        // A segment's winners all lie inside the segment's own row range,
        // so segment-boundary chunks scatter disjointly.
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                for c in 0..cols {
                    let w = winners[s * cols + c];
                    if w != u32::MAX {
                        chunk[(w as usize - base) * cols + c] += grad.get(s, c);
                        // u32 index widens losslessly // lint:allow(lossy-cast)
                    }
                }
            }
        };
        debug_assert_partition(segs, rows);
        parallel_ranges(
            segs.offsets(),
            &|s| segs.offsets()[s] * cols,
            out.rows() * cols,
            g.data_mut(),
            run,
        );
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_max"
    }
    fn grad_reads(&self) -> GradReads {
        // `out.rows()` sizes the partition; inputs[0] only for its shape.
        GradReads { out: true, inputs: InputReads::Only(&[0]) }
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let cols = inputs[0].1;
        if cols == 0 || !self.winners.len().is_multiple_of(cols) {
            return Err(format!(
                "saved {} winner indices for inputs with {cols} columns",
                self.winners.len()
            ));
        }
        Ok(Some((self.winners.len() / cols, cols)))
    }
}

/// Softmax within each segment of an `n x 1` score column.
struct SegmentSoftmaxOp {
    segs: Arc<Segments>,
}
impl Op for SegmentSoftmaxOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let segs = &self.segs;
        let mut g = pool::zeros(out.rows(), 1);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                let dot: f32 = range.clone().map(|e| out.get(e, 0) * grad.get(e, 0)).sum();
                for e in range {
                    let p = out.get(e, 0);
                    chunk[e - base] = p * (grad.get(e, 0) - dot);
                }
            }
        };
        debug_assert_partition(segs, out.rows());
        parallel_ranges(segs.offsets(), &|s| segs.offsets()[s], 3 * out.rows(), g.data_mut(), run);
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "segment_softmax"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if cols != 1 {
            return Err(format!("expects an n x 1 score column, got {:?}", inputs[0]));
        }
        if rows != self.segs.total_len() {
            return Err(format!(
                "scores cover {rows} edges but segments cover {}",
                self.segs.total_len()
            ));
        }
        Ok(Some(inputs[0]))
    }
}

/// Scales row `i` of an `n x c` tensor by the scalar `w[i]` of an `n x 1`
/// tensor (attention weighting of gathered neighbor features).
struct MulColBroadcastOp;
impl Op for MulColBroadcastOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let (a, w) = (inputs[0], inputs[1]);
        let mut ga = pool::zeros(rows, cols);
        let mut gw = pool::zeros(rows, 1);
        let run = |rrange: Range<usize>, ac: &mut [f32], wc: &mut [f32]| {
            let base = rrange.start;
            for r in rrange {
                let wv = w.get(r, 0);
                let arow = a.row(r);
                let grow = grad.row(r);
                let garow = &mut ac[(r - base) * cols..(r - base + 1) * cols];
                let mut acc = 0.0;
                for ((gav, &g), &av) in garow.iter_mut().zip(grow).zip(arow) {
                    *gav = g * wv;
                    acc += g * av;
                }
                wc[r - base] = acc;
            }
        };
        parallel_rows_pair(rows, cols, 1, 2 * rows * cols, ga.data_mut(), gw.data_mut(), run);
        vec![Some(ga), Some(gw)]
    }
    fn name(&self) -> &'static str {
        "mul_col_broadcast"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::INPUTS_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if inputs[1] != (inputs[0].0, 1) {
            return Err(format!(
                "weights must be {} x 1 for a {:?} input, got {:?}",
                inputs[0].0, inputs[0], inputs[1]
            ));
        }
        Ok(Some(inputs[0]))
    }
}

/// Shared shape transfer for segment reductions: the input covers every
/// segmented element, the output has one row per segment.
fn infer_segment_reduce(segs: &Segments, inputs: &[(usize, usize)]) -> InferredShape {
    let (rows, cols) = inputs[0];
    if rows != segs.total_len() {
        return Err(format!("input has {rows} rows but segments cover {}", segs.total_len()));
    }
    Ok(Some((segs.num_segments(), cols)))
}

impl Tape {
    /// Gathers rows of `a` by index (e.g. source-node features per edge).
    pub fn gather_rows(&mut self, a: Tensor, idx: &Arc<Vec<u32>>) -> Tensor {
        let av = self.value_arc(a);
        let rows = av.rows();
        assert!(
            idx.iter().all(|&i| (i as usize) < rows), // u32 index widens losslessly // lint:allow(lossy-cast)
            "gather_rows index out of bounds (source has {rows} rows)"
        );
        let cols = av.cols();
        let mut out = pool::zeros(idx.len(), cols);
        if cols > 0 {
            let run = |orange: Range<usize>, chunk: &mut [f32]| {
                for (ri, o) in orange.enumerate() {
                    chunk[ri * cols..(ri + 1) * cols].copy_from_slice(av.row(idx[o] as usize));
                    // u32 index widens losslessly // lint:allow(lossy-cast)
                }
            };
            crate::parallel::timed("gather_rows", || {
                parallel_rows(idx.len(), cols, idx.len() * cols, out.data_mut(), run)
            });
        }
        self.push_op(out, Box::new(GatherRowsOp { idx: Arc::clone(idx) }), vec![a])
    }

    fn check_segments(&self, a: Tensor, segs: &Segments, what: &str) {
        assert_eq!(
            self.value(a).rows(),
            segs.total_len(),
            "{what}: tensor has {} rows but segments cover {}",
            self.value(a).rows(),
            segs.total_len()
        );
    }

    /// Per-segment row sums: `total_len x c -> num_segments x c`.
    pub fn segment_sum(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_sum");
        let av = self.value_arc(a);
        let cols = av.cols();
        let mut out = pool::zeros(segs.num_segments(), cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            for (si, s) in srange.enumerate() {
                let orow = &mut chunk[si * cols..(si + 1) * cols];
                for e in segs.range(s) {
                    for (o, &v) in orow.iter_mut().zip(av.row(e)) {
                        *o += v;
                    }
                }
            }
        };
        crate::parallel::timed("segment_sum", || {
            parallel_ranges(
                segs.offsets(),
                &|s| s * cols,
                segs.total_len() * cols,
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentSumOp { segs: Arc::clone(segs) }), vec![a])
    }

    /// Per-segment row means (empty segments yield zero rows).
    pub fn segment_mean(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_mean");
        let av = self.value_arc(a);
        let cols = av.cols();
        let mut out = pool::zeros(segs.num_segments(), cols);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            for (si, s) in srange.enumerate() {
                let n = segs.len_of(s);
                if n == 0 {
                    continue;
                }
                let orow = &mut chunk[si * cols..(si + 1) * cols];
                for e in segs.range(s) {
                    for (o, &v) in orow.iter_mut().zip(av.row(e)) {
                        *o += v;
                    }
                }
                let scale = 1.0 / n as f32; // count stays far below 2^24 // lint:allow(lossy-cast)
                for o in orow {
                    *o *= scale;
                }
            }
        };
        crate::parallel::timed("segment_mean", || {
            parallel_ranges(
                segs.offsets(),
                &|s| s * cols,
                segs.total_len() * cols,
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentMeanOp { segs: Arc::clone(segs) }), vec![a])
    }

    /// Per-segment elementwise max (empty segments yield zero rows).
    pub fn segment_max(&mut self, a: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(a, segs, "segment_max");
        let av = self.value_arc(a);
        let cols = av.cols();
        let nseg = segs.num_segments();
        let mut out = pool::zeros(nseg, cols);
        let mut winners = vec![u32::MAX; nseg * cols];
        if cols > 0 {
            let run = |srange: Range<usize>, ochunk: &mut [f32], wchunk: &mut [u32]| {
                for (si, s) in srange.enumerate() {
                    if segs.len_of(s) == 0 {
                        continue;
                    }
                    for c in 0..cols {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_e = u32::MAX;
                        for e in segs.range(s) {
                            let v = av.get(e, c);
                            if v > best {
                                best = v;
                                best_e = e as u32; // edge ids fit the u32 CSR domain // lint:allow(lossy-cast)
                            }
                        }
                        ochunk[si * cols + c] = best;
                        wchunk[si * cols + c] = best_e;
                    }
                }
            };
            crate::parallel::timed("segment_max", || {
                parallel_ranges_pair(
                    segs.offsets(),
                    &|s| s * cols,
                    &|s| s * cols,
                    segs.total_len() * cols,
                    out.data_mut(),
                    &mut winners,
                    run,
                )
            });
        }
        self.push_op(
            out,
            Box::new(SegmentMaxOp { segs: Arc::clone(segs), winners: Arc::new(winners) }),
            vec![a],
        )
    }

    /// Numerically-stable softmax over each segment of an `n x 1` score
    /// column — the attention normalisation over each node's in-edges.
    pub fn segment_softmax(&mut self, scores: Tensor, segs: &Arc<Segments>) -> Tensor {
        self.check_segments(scores, segs, "segment_softmax");
        assert_eq!(self.value(scores).cols(), 1, "segment_softmax expects an n x 1 score column");
        let sv = self.value_arc(scores);
        let mut out = pool::clone_of(&sv);
        let run = |srange: Range<usize>, chunk: &mut [f32]| {
            let base = segs.offsets()[srange.start];
            for s in srange {
                let range = segs.range(s);
                if range.is_empty() {
                    continue;
                }
                let seg = &mut chunk[range.start - base..range.end - base];
                let max = seg.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                let mut sum = 0.0;
                for v in seg.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in seg {
                    *v /= sum;
                }
            }
        };
        crate::parallel::timed("segment_softmax", || {
            parallel_ranges(
                segs.offsets(),
                &|s| segs.offsets()[s],
                3 * segs.total_len(),
                out.data_mut(),
                run,
            )
        });
        self.push_op(out, Box::new(SegmentSoftmaxOp { segs: Arc::clone(segs) }), vec![scores])
    }

    /// Row-wise scaling of an `n x c` tensor by an `n x 1` weight column.
    pub fn mul_col_broadcast(&mut self, a: Tensor, w: Tensor) -> Tensor {
        let av = self.value_arc(a);
        let wv = self.value_arc(w);
        let (rows, cols) = av.shape();
        assert_eq!(wv.shape(), (rows, 1), "weights must be {rows} x 1");
        let mut out = pool::zeros(rows, cols);
        if cols > 0 {
            let run = |rrange: Range<usize>, chunk: &mut [f32]| {
                let base = rrange.start;
                for r in rrange {
                    let scale = wv.get(r, 0);
                    let orow = &mut chunk[(r - base) * cols..(r - base + 1) * cols];
                    for (o, &v) in orow.iter_mut().zip(av.row(r)) {
                        *o = v * scale;
                    }
                }
            };
            crate::parallel::timed("mul_col_broadcast", || {
                parallel_rows(rows, cols, rows * cols, out.data_mut(), run)
            });
        }
        self.push_op(out, Box::new(MulColBroadcastOp), vec![a, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::VarStore;

    fn segs(lengths: &[usize]) -> Arc<Segments> {
        Arc::new(Segments::from_lengths(lengths))
    }

    #[test]
    fn segments_from_lengths() {
        let s = Segments::from_lengths(&[2, 0, 3]);
        assert_eq!(s.num_segments(), 3);
        assert_eq!(s.total_len(), 5);
        assert_eq!(s.range(0), 0..2);
        assert_eq!(s.range(1), 2..2);
        assert_eq!(s.range(2), 2..5);
        assert_eq!(s.offsets(), &[0, 2, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn segments_reject_unsorted() {
        let _ = Segments::new(vec![0, 3, 1]);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let idx = Arc::new(vec![0u32, 0, 1]);
        let g = tape.gather_rows(ta, &idx);
        assert_eq!(tape.value(g).data(), &[1.0, 1.0, 2.0]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        // Row 0 gathered twice => gradient 2.
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 1.0]);
    }

    #[test]
    fn segment_sum_and_mean_values() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]));
        let s = segs(&[2, 0, 3]);
        let sum = tape.segment_sum(x, &s);
        assert_eq!(tape.value(sum).data(), &[3.0, 0.0, 12.0]);
        let mean = tape.segment_mean(x, &s);
        assert_eq!(tape.value(mean).data(), &[1.5, 0.0, 4.0]);
    }

    #[test]
    fn segment_mean_grad_is_uniform_within_segment() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let s = segs(&[4]);
        let m = tape.segment_mean(ta, &s);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert!(g.get(a).unwrap().data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn segment_max_values_and_grad() {
        let mut store = VarStore::new();
        let a =
            store.add("a", Matrix::from_vec(4, 2, vec![1.0, 9.0, 5.0, 2.0, 0.0, 0.0, -1.0, 3.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let s = segs(&[2, 2]);
        let m = tape.segment_max(ta, &s);
        assert_eq!(tape.value(m).data(), &[5.0, 9.0, 0.0, 3.0]);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(5, 1, vec![10.0, 20.0, -5.0, 0.0, 5.0]));
        let s = segs(&[2, 3]);
        let p = tape.segment_softmax(x, &s);
        let v = tape.value(p);
        assert!((v.get(0, 0) + v.get(1, 0) - 1.0).abs() < 1e-5);
        assert!((v.get(2, 0) + v.get(3, 0) + v.get(4, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn segment_softmax_handles_extreme_scores() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 1, vec![1000.0, -1000.0]));
        let s = segs(&[2]);
        let p = tape.segment_softmax(x, &s);
        assert!(!tape.value(p).has_non_finite());
        assert!((tape.value(p).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mul_col_broadcast_grads() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let w = store.add("w", Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tw = tape.param(&store, w);
        let y = tape.mul_col_broadcast(ta, tw);
        assert_eq!(tape.value(y).data(), &[10.0, 20.0, 60.0, 80.0]);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[10.0, 10.0, 20.0, 20.0]);
        assert_eq!(g.get(w).unwrap().data(), &[3.0, 7.0]);
    }
}
