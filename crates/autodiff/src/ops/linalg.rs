//! Linear-algebra tape ops: dense/sparse products, bias, concat/slice,
//! reductions and row-wise softmaxes.

use std::sync::Arc;

use crate::absint::{finite_arith, nan_free_addsub, require_compatible, AbsVal, Dim, Interval};
use crate::audit::Arity;
use crate::dataflow::GradReads;
use crate::matrix::Matrix;
use crate::pool;
use crate::sparse::Csr;
use crate::tape::{Op, Tape, Tensor};

type InferredShape = Result<Option<(usize, usize)>, String>;
type Transferred = Result<AbsVal, String>;

/// Total element count as a [`Dim`]: concrete when both dims are, zero when
/// either provably is.
fn dim_product(r: Dim, c: Dim) -> Dim {
    match (r.known(), c.known()) {
        (Some(a), Some(b)) => Dim::Const(a * b),
        (Some(0), _) | (_, Some(0)) => Dim::Const(0),
        _ => Dim::Any,
    }
}

pub(crate) struct MatMulOp;
impl Op for MatMulOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        // C = A·B  =>  dA = dC·Bᵀ, dB = Aᵀ·dC
        let ga = grad.matmul_a_bt(inputs[1]);
        let gb = inputs[0].matmul_at_b(grad);
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "matmul"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::INPUTS_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let ((m, k1), (k2, n)) = (inputs[0], inputs[1]);
        if k1 != k2 {
            return Err(format!("inner dimensions disagree: {k1} vs {k2}"));
        }
        Ok(Some((m, n)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let (a, b) = (&inputs[0], &inputs[1]);
        require_compatible("matmul: inner dimensions disagree", a.cols, b.rows)?;
        // Each output element is a length-k dot of products from P.
        let range = a.range.mul(b.range).sum_of(a.cols.join2(b.rows));
        // Finite, NaN-free inputs can only overflow to inf (caught by the
        // range); any input inf risks 0·inf or inf−inf inside the dot.
        let nan_free = a.nan_free && b.nan_free && a.inf_free && b.inf_free;
        let inf_free = finite_arith(range, &[a, b]);
        Ok(AbsVal { rows: a.rows, cols: b.cols, range, nan_free, inf_free })
    }
}

struct SpmmOp {
    sparse: Arc<Csr>,
}
impl Op for SpmmOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        // C = S·B  =>  dB = Sᵀ·dC (S is a constant operator).
        vec![Some(self.sparse.t().spmm(grad))]
    }
    fn name(&self) -> &'static str {
        "spmm"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE // the sparse operator is saved in the op
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if rows != self.sparse.cols() {
            return Err(format!(
                "dense operand has {rows} rows but sparse operator has {} columns",
                self.sparse.cols()
            ));
        }
        Ok(Some((self.sparse.rows(), cols)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let b = &inputs[0];
        require_compatible(
            "spmm: dense rows must match sparse operator columns",
            b.rows,
            Dim::Const(self.sparse.cols()),
        )?;
        // The sparse values are saved in the op, so the product interval
        // and the dot length (max row occupancy) are both concrete.
        let vals = self.sparse.values();
        let sv = vals.iter().fold(Interval::point(0.0), |acc, &v| {
            if v.is_nan() {
                Interval::TOP
            } else {
                acc.join(Interval::point(v))
            }
        });
        let sparse_clean = vals.iter().all(|v| v.is_finite());
        let max_nnz = self.sparse.indptr().windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let range = sv.mul(b.range).sum_of(Dim::Const(max_nnz));
        let nan_free = b.nan_free && b.inf_free && sparse_clean;
        let inf_free = b.inf_free && sparse_clean && range.is_finite();
        Ok(AbsVal { rows: Dim::Const(self.sparse.rows()), cols: b.cols, range, nan_free, inf_free })
    }
}

struct AddBiasOp;
impl Op for AddBiasOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        vec![Some(pool::clone_of(grad)), Some(grad.col_sums())]
    }
    fn name(&self) -> &'static str {
        "add_bias"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if inputs[1] != (1, inputs[0].1) {
            return Err(format!(
                "bias must be 1x{} for a {:?} input, got {:?}",
                inputs[0].1, inputs[0], inputs[1]
            ));
        }
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let (a, b) = (&inputs[0], &inputs[1]);
        require_compatible("add_bias: bias must be a single row", b.rows, Dim::Const(1))?;
        require_compatible("add_bias: bias width must match the input", b.cols, a.cols)?;
        let range = a.range.add(b.range);
        Ok(AbsVal {
            rows: a.rows,
            cols: a.cols.join2(b.cols),
            range,
            nan_free: nan_free_addsub(a, b),
            inf_free: finite_arith(range, &[a, b]),
        })
    }
}

struct ConcatColsOp {
    widths: Vec<usize>,
}
impl Op for ConcatColsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let rows = grad.rows();
        let mut grads = Vec::with_capacity(inputs.len());
        let mut offset = 0;
        for &w in &self.widths {
            // Scratch: every row of each slice is copied from the gradient.
            let mut g = pool::scratch(rows, w);
            for r in 0..rows {
                g.row_mut(r).copy_from_slice(&grad.row(r)[offset..offset + w]);
            }
            offset += w;
            grads.push(Some(g));
        }
        grads
    }
    fn name(&self) -> &'static str {
        "concat_cols"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE // the column widths are saved at record time
    }
    fn arity(&self) -> Arity {
        Arity::AtLeast(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if inputs.len() != self.widths.len() {
            return Err(format!("saved {} widths for {} inputs", self.widths.len(), inputs.len()));
        }
        let rows = inputs[0].0;
        for (&(r, c), &w) in inputs.iter().zip(&self.widths) {
            if r != rows {
                return Err(format!("row counts disagree: {rows} vs {r}"));
            }
            if c != w {
                return Err(format!("input has {c} columns but saved width is {w}"));
            }
        }
        Ok(Some((rows, self.widths.iter().sum())))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        if inputs.len() != self.widths.len() {
            return Err(format!("saved {} widths for {} inputs", self.widths.len(), inputs.len()));
        }
        let mut rows = inputs[0].rows;
        let mut range: Option<Interval> = None;
        let mut nan_free = true;
        let mut inf_free = true;
        for (v, &w) in inputs.iter().zip(&self.widths) {
            require_compatible("concat_cols: row counts disagree", v.rows, rows)?;
            require_compatible("concat_cols: saved width mismatch", v.cols, Dim::Const(w))?;
            rows = rows.join2(v.rows);
            // A zero-width operand contributes no elements to the output.
            if w > 0 {
                range = Some(range.map_or(v.range, |r| r.join(v.range)));
                nan_free &= v.nan_free;
                inf_free &= v.inf_free;
            }
        }
        Ok(AbsVal {
            rows,
            cols: Dim::Const(self.widths.iter().sum()),
            range: range.unwrap_or(Interval::point(0.0)),
            nan_free,
            inf_free,
        })
    }
}

struct SliceColsOp {
    start: usize,
    end: usize,
}
impl Op for SliceColsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let mut g = pool::zeros(rows, cols);
        for r in 0..rows {
            g.row_mut(r)[self.start..self.end].copy_from_slice(grad.row(r));
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "slice_cols"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the scatter target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (rows, cols) = inputs[0];
        if self.start >= self.end || self.end > cols {
            return Err(format!("slice {}..{} out of 0..{cols}", self.start, self.end));
        }
        Ok(Some((rows, self.end - self.start)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        if self.start >= self.end {
            return Err(format!("slice {}..{} is empty", self.start, self.end));
        }
        if let Some(c) = a.cols.known() {
            if self.end > c {
                return Err(format!("slice {}..{} out of 0..{c}", self.start, self.end));
            }
        }
        Ok(AbsVal { cols: Dim::Const(self.end - self.start), ..*a })
    }
}

struct RowSumOp;
impl Op for RowSumOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        // Scratch: every row is filled with its broadcast gradient.
        let mut g = pool::scratch(rows, cols);
        for r in 0..rows {
            let gv = grad.get(r, 0);
            g.row_mut(r).fill(gv);
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "row_sum"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the broadcast target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        Ok(Some((inputs[0].0, 1)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        let range = a.range.sum_of(a.cols);
        Ok(AbsVal {
            rows: a.rows,
            cols: Dim::Const(1),
            range,
            nan_free: a.nan_free && a.inf_free,
            inf_free: finite_arith(range, &[a]),
        })
    }
}

struct SumAllOp;
impl Op for SumAllOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        vec![Some(pool::full(rows, cols, grad.as_scalar()))]
    }
    fn name(&self) -> &'static str {
        "sum_all"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the broadcast target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, _: &[(usize, usize)]) -> InferredShape {
        Ok(Some((1, 1)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        let range = a.range.sum_of(dim_product(a.rows, a.cols));
        Ok(AbsVal {
            rows: Dim::Const(1),
            cols: Dim::Const(1),
            range,
            nan_free: a.nan_free && a.inf_free,
            inf_free: finite_arith(range, &[a]),
        })
    }
}

struct MeanAllOp;
impl Op for MeanAllOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let (rows, cols) = inputs[0].shape();
        let n = (rows * cols) as f32; // lint:allow(lossy-cast) -- count stays far below 2^24
        vec![Some(pool::full(rows, cols, grad.as_scalar() / n))]
    }
    fn name(&self) -> &'static str {
        "mean_all"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape of the broadcast target
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, _: &[(usize, usize)]) -> InferredShape {
        Ok(Some((1, 1)))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        let count = dim_product(a.rows, a.cols);
        // The kernel divides the (overflowable) sum by the count: the mean
        // is in the input hull unless the sum escapes to ±inf first, and an
        // empty matrix yields 0/0.
        let sum = a.range.sum_of(count);
        let lo = if sum.lo == f32::NEG_INFINITY { f32::NEG_INFINITY } else { a.range.lo };
        let hi = if sum.hi == f32::INFINITY { f32::INFINITY } else { a.range.hi };
        let range = Interval::new(lo, hi);
        let nonempty = matches!(count.known(), Some(n) if n > 0);
        Ok(AbsVal {
            rows: Dim::Const(1),
            cols: Dim::Const(1),
            range,
            nan_free: a.nan_free && a.inf_free && nonempty,
            inf_free: a.inf_free && sum.is_finite(),
        })
    }
}

struct SoftmaxRowsOp;
impl Op for SoftmaxRowsOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        // dX[r] = P[r] ⊙ (dY[r] - <dY[r], P[r]>)
        // Scratch: the row loop assigns every element.
        let mut g = pool::scratch(out.rows(), out.cols());
        for r in 0..out.rows() {
            let p = out.row(r);
            let dy = grad.row(r);
            let dot: f32 = p.iter().zip(dy).map(|(p, d)| p * d).sum();
            for ((g, &p), &d) in g.row_mut(r).iter_mut().zip(p).zip(dy) {
                *g = p * (d - dot);
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "softmax_rows"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        // Probabilities: exp(x - max)/sum with sum ≥ exp(0) = 1, so the
        // output is in [0, 1] and never infinite; any input inf turns the
        // max shift into inf - inf.
        Ok(a.with_range(Interval::new(0.0, 1.0), a.nan_free && a.inf_free, true))
    }
}

struct LogSoftmaxRowsOp;
impl Op for LogSoftmaxRowsOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        // dX[r] = dY[r] - exp(out[r]) * sum(dY[r])
        // Scratch: the row loop assigns every element.
        let mut g = pool::scratch(out.rows(), out.cols());
        for r in 0..out.rows() {
            let sum: f32 = grad.row(r).iter().sum();
            for ((g, &o), &d) in g.row_mut(r).iter_mut().zip(out.row(r)).zip(grad.row(r)) {
                *g = d - o.exp() * sum;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "log_softmax_rows"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let a = &inputs[0];
        // x - max - ln(sumexp) ≤ 0, but exp underflow makes -inf reachable.
        Ok(a.with_range(Interval::new(f32::NEG_INFINITY, 0.0), a.nan_free && a.inf_free, false))
    }
}

/// Elementwise max over `k` same-shaped tensors; the winner index per
/// element is saved at forward time.
struct MaxStackOp {
    winners: Arc<Vec<u8>>,
}
impl Op for MaxStackOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let shape = inputs[0].shape();
        let mut grads: Vec<Matrix> =
            (0..inputs.len()).map(|_| pool::zeros(shape.0, shape.1)).collect();
        for (i, (&w, &g)) in self.winners.iter().zip(grad.data()).enumerate() {
            grads[w as usize].data_mut()[i] = g; // lint:allow(lossy-cast) -- u32 index widens losslessly
        }
        grads.into_iter().map(Some).collect()
    }
    fn name(&self) -> &'static str {
        "max_stack"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0]) // shape only; winners are saved
    }
    fn arity(&self) -> Arity {
        Arity::AtLeast(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let shape = inputs[0];
        if inputs.iter().any(|&s| s != shape) {
            return Err(format!("all operands must match, got {inputs:?}"));
        }
        if self.winners.len() != shape.0 * shape.1 {
            return Err(format!(
                "saved {} winner indices for a {:?} output",
                self.winners.len(),
                shape
            ));
        }
        Ok(Some(shape))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Transferred {
        let mut rows = inputs[0].rows;
        let mut cols = inputs[0].cols;
        for v in inputs {
            require_compatible("max_stack: operand rows disagree", v.rows, rows)?;
            require_compatible("max_stack: operand cols disagree", v.cols, cols)?;
            rows = rows.join2(v.rows);
            cols = cols.join2(v.cols);
        }
        if let (Some(r), Some(c)) = (rows.known(), cols.known()) {
            if self.winners.len() != r * c {
                return Err(format!(
                    "saved {} winner indices for a {r}x{c} output",
                    self.winners.len()
                ));
            }
        }
        // Elementwise max of k values, one from each operand interval.
        let lo = inputs.iter().map(|v| v.range.lo).fold(f32::NEG_INFINITY, f32::max);
        let hi = inputs.iter().map(|v| v.range.hi).fold(f32::NEG_INFINITY, f32::max);
        Ok(AbsVal {
            rows,
            cols,
            range: Interval::new(lo, hi),
            nan_free: inputs.iter().all(|v| v.nan_free),
            inf_free: inputs.iter().all(|v| v.inf_free),
        })
    }
}

/// Numerically-stable row softmax into a fresh (pooled) matrix.
pub(crate) fn softmax_rows_value(x: &Matrix) -> Matrix {
    let mut out = pool::clone_of(x);
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

impl Tape {
    /// Dense product `a · b`.
    pub fn matmul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let out = self.value(a).matmul(self.value(b));
        self.push_op(out, Box::new(MatMulOp), vec![a, b])
    }

    /// Sparse·dense product with a constant sparse operator (e.g. the
    /// normalised adjacency of GCN).
    pub fn spmm(&mut self, sparse: &Arc<Csr>, b: Tensor) -> Tensor {
        let out = sparse.spmm(self.value(b));
        self.push_op(out, Box::new(SpmmOp { sparse: Arc::clone(sparse) }), vec![b])
    }

    /// Adds a `1 x c` bias row to every row of an `n x c` tensor.
    pub fn add_bias(&mut self, a: Tensor, bias: Tensor) -> Tensor {
        let av = self.value_arc(a);
        let bv = self.value_arc(bias);
        let (rows, cols) = av.shape();
        assert_eq!(bv.shape(), (1, cols), "bias must be 1x{cols}");
        let mut out = pool::clone_of(&av);
        for r in 0..rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bv.row(0)) {
                *o += b;
            }
        }
        self.push_op(out, Box::new(AddBiasOp), vec![a, bias])
    }

    /// Horizontal concatenation of tensors that share a row count.
    pub fn concat_cols(&mut self, parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = self.value(parts[0]).rows();
        let widths: Vec<usize> = parts
            .iter()
            .map(|&t| {
                assert_eq!(self.value(t).rows(), rows, "concat_cols row mismatch");
                self.value(t).cols()
            })
            .collect();
        let total: usize = widths.iter().sum();
        // Scratch: every row is assembled from the parts' rows in full.
        let mut out = pool::scratch(rows, total);
        for r in 0..rows {
            let mut offset = 0;
            for (&t, &w) in parts.iter().zip(&widths) {
                out.row_mut(r)[offset..offset + w].copy_from_slice(self.value(t).row(r));
                offset += w;
            }
        }
        self.push_op(out, Box::new(ConcatColsOp { widths }), parts.to_vec())
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: Tensor, start: usize, end: usize) -> Tensor {
        let (rows, cols) = self.value(a).shape();
        assert!(start < end && end <= cols, "slice_cols {start}..{end} out of 0..{cols}");
        // Scratch: every row is copied from the source slice.
        let mut out = pool::scratch(rows, end - start);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.value(a).row(r)[start..end]);
        }
        self.push_op(out, Box::new(SliceColsOp { start, end }), vec![a])
    }

    /// Row sums: `n x c -> n x 1`.
    pub fn row_sum(&mut self, a: Tensor) -> Tensor {
        let out = self.value(a).row_sums();
        self.push_op(out, Box::new(RowSumOp), vec![a])
    }

    /// Sum of all elements as a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: Tensor) -> Tensor {
        let out = Matrix::scalar(self.value(a).sum());
        self.push_op(out, Box::new(SumAllOp), vec![a])
    }

    /// Mean of all elements as a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: Tensor) -> Tensor {
        let out = Matrix::scalar(self.value(a).mean());
        self.push_op(out, Box::new(MeanAllOp), vec![a])
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Tensor) -> Tensor {
        let out = softmax_rows_value(self.value(a));
        self.push_op(out, Box::new(SoftmaxRowsOp), vec![a])
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        self.push_op(out, Box::new(LogSoftmaxRowsOp), vec![a])
    }

    /// Elementwise maximum over same-shaped tensors (the MAX layer
    /// aggregator of JK-Networks). Ties go to the earliest tensor.
    pub fn max_stack(&mut self, parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "max_stack needs at least one tensor");
        let shape = self.value(parts[0]).shape();
        for &t in parts {
            assert_eq!(self.value(t).shape(), shape, "max_stack shape mismatch");
        }
        assert!(parts.len() <= u8::MAX as usize, "max_stack supports at most 255 tensors"); // lint:allow(lossy-cast) -- constant widens losslessly
        let mut out = pool::clone_of(self.value(parts[0]));
        let mut winners = vec![0u8; out.len()];
        for (k, &t) in parts.iter().enumerate().skip(1) {
            let tv = self.value(t);
            for i in 0..tv.len() {
                let v = tv.data()[i];
                if v > out.data()[i] {
                    out.data_mut()[i] = v;
                    winners[i] = k as u8; // lint:allow(lossy-cast) -- guarded by the 255-tensor assert
                }
            }
        }
        self.push_op(out, Box::new(MaxStackOp { winners: Arc::new(winners) }), parts.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::VarStore;

    #[test]
    fn matmul_grads_match_formula() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = store.add("b", Matrix::from_vec(2, 1, vec![5.0, 6.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tb = tape.param(&store, b);
        let c = tape.matmul(ta, tb);
        let loss = tape.sum_all(c);
        let g = tape.backward(loss);
        // dA = 1·Bᵀ broadcast over rows; dB = Aᵀ·1
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(g.get(b).unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn spmm_grads_use_transpose() {
        let s = Arc::new(Csr::from_coo(2, 3, &[(0, 0, 2.0), (1, 2, 3.0)]));
        let mut store = VarStore::new();
        let b = store.add("b", Matrix::full(3, 1, 1.0));
        let mut tape = Tape::new(0);
        let tb = tape.param(&store, b);
        let c = tape.spmm(&s, tb);
        assert_eq!(tape.value(c).data(), &[2.0, 3.0]);
        let loss = tape.sum_all(c);
        let g = tape.backward(loss);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 0.0, 3.0]);
    }

    #[test]
    fn add_bias_grad_is_col_sum() {
        let mut store = VarStore::new();
        let b = store.add("bias", Matrix::zeros(1, 2));
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::zeros(3, 2));
        let tb = tape.param(&store, b);
        let y = tape.add_bias(x, tb);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(b).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip_grads() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let b = store.add("b", Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tb = tape.param(&store, b);
        let cat = tape.concat_cols(&[ta, tb]);
        assert_eq!(tape.value(cat).row(0), &[1.0, 3.0, 4.0]);
        // Only keep the middle column => gradient reaches b's first column only.
        let mid = tape.slice_cols(cat, 1, 2);
        let loss = tape.sum_all(mid);
        let g = tape.backward(loss);
        assert!(g.get(a).unwrap().data().iter().all(|&v| v == 0.0));
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_is_simplex() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -10.0, 0.0, 10.0]));
        let p = tape.softmax_rows(x);
        for r in 0..2 {
            let sum: f32 = tape.value(p).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(tape.value(p).row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]));
        let ls = tape.log_softmax_rows(x);
        let p = tape.softmax_rows(x);
        for (l, p) in tape.value(ls).data().iter().zip(tape.value(p).data()) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn max_stack_routes_gradient_to_winner() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(1, 2, vec![1.0, 5.0]));
        let b = store.add("b", Matrix::from_vec(1, 2, vec![3.0, 2.0]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tb = tape.param(&store, b);
        let m = tape.max_stack(&[ta, tb]);
        assert_eq!(tape.value(m).data(), &[3.0, 5.0]);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0]);
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn mean_all_grad_is_uniform() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::full(2, 2, 3.0));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let m = tape.mean_all(ta);
        assert_eq!(tape.value(m).as_scalar(), 3.0);
        let g = tape.backward(m);
        assert!(g.get(a).unwrap().data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn row_sum_shapes_and_grad() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(2, 3, vec![1.0; 6]));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let rs = tape.row_sum(ta);
        assert_eq!(tape.value(rs).shape(), (2, 1));
        let loss = tape.sum_all(rs);
        let g = tape.backward(loss);
        assert!(g.get(a).unwrap().data().iter().all(|&v| v == 1.0));
    }
}
