//! Elementwise tape ops: arithmetic, activations, dropout.

use std::sync::Arc;

use rand::Rng;

use crate::absint::{
    binary_elementwise, finite_arith, nan_free_addsub, nan_free_mul, require_compatible, AbsVal,
    Dim, Interval,
};
use crate::audit::Arity;
use crate::dataflow::GradReads;
use crate::matrix::Matrix;
use crate::pool;
use crate::tape::{Op, Tape, Tensor};

type InferredShape = Result<Option<(usize, usize)>, String>;

/// Shape transfer for elementwise binary ops: both operands must match and
/// the output keeps their shape.
fn infer_same_shape_binary(inputs: &[(usize, usize)]) -> InferredShape {
    if inputs[0] != inputs[1] {
        return Err(format!("operands must match: {:?} vs {:?}", inputs[0], inputs[1]));
    }
    Ok(Some(inputs[0]))
}

/// Shape transfer for elementwise unary ops: output keeps the input shape.
fn infer_unary_identity(inputs: &[(usize, usize)]) -> InferredShape {
    Ok(Some(inputs[0]))
}

fn binary_shape_check(tape: &Tape, a: Tensor, b: Tensor, what: &str) {
    assert_eq!(
        tape.value(a).shape(),
        tape.value(b).shape(),
        "{what} shape mismatch: {:?} vs {:?}",
        tape.value(a).shape(),
        tape.value(b).shape()
    );
}

struct AddOp;
impl Op for AddOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        vec![Some(pool::clone_of(grad)), Some(pool::clone_of(grad))]
    }
    fn name(&self) -> &'static str {
        "add"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_same_shape_binary(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let (a, b) = (&inputs[0], &inputs[1]);
        let range = a.range.add(b.range);
        binary_elementwise("add", a, b, range, nan_free_addsub(a, b), finite_arith(range, &[a, b]))
    }
}

struct SubOp;
impl Op for SubOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut neg = pool::clone_of(grad);
        neg.scale_inplace(-1.0);
        vec![Some(pool::clone_of(grad)), Some(neg)]
    }
    fn name(&self) -> &'static str {
        "sub"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_same_shape_binary(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let (a, b) = (&inputs[0], &inputs[1]);
        let range = a.range.sub(b.range);
        binary_elementwise("sub", a, b, range, nan_free_addsub(a, b), finite_arith(range, &[a, b]))
    }
}

struct MulOp;
impl Op for MulOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut ga = pool::clone_of(grad);
        for (g, b) in ga.data_mut().iter_mut().zip(inputs[1].data()) {
            *g *= b;
        }
        let mut gb = pool::clone_of(grad);
        for (g, a) in gb.data_mut().iter_mut().zip(inputs[0].data()) {
            *g *= a;
        }
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "mul"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_same_shape_binary(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::INPUTS_ONLY
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let (a, b) = (&inputs[0], &inputs[1]);
        let range = a.range.mul(b.range);
        binary_elementwise("mul", a, b, range, nan_free_mul(a, b), finite_arith(range, &[a, b]))
    }
}

struct ScaleOp(f32);
impl Op for ScaleOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        g.scale_inplace(self.0);
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "scale"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let range = a.range.scale(self.0);
        let (nan_free, inf_free) = if self.0 == 0.0 {
            // 0 * inf is NaN; the surviving entries are exactly zero.
            (a.nan_free && a.inf_free, true)
        } else {
            (
                a.nan_free && self.0.is_finite(),
                a.inf_free && self.0.is_finite() && range.is_finite(),
            )
        };
        Ok(a.with_range(range, nan_free, inf_free))
    }
}

/// `a + c`; the constant is kept so the abstract transfer can shift the
/// interval (backward never needs it).
struct AddScalarOp(f32);
impl Op for AddScalarOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        vec![Some(pool::clone_of(grad))]
    }
    fn name(&self) -> &'static str {
        "add_scalar"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        if self.0.is_nan() {
            return Ok(AbsVal::top(a.rows, a.cols));
        }
        let range = a.range.add(Interval::point(self.0));
        let nan_free = a.nan_free && (a.inf_free || self.0.is_finite());
        Ok(a.with_range(range, nan_free, a.inf_free && range.is_finite()))
    }
}

/// `a * s` where `s` is a `1 x 1` tensor (differentiable scalar gate).
struct MulScalarTensorOp;
impl Op for MulScalarTensorOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let s = inputs[1].as_scalar();
        let mut ga = pool::clone_of(grad);
        ga.scale_inplace(s);
        let gs: f32 = grad.data().iter().zip(inputs[0].data()).map(|(g, a)| g * a).sum();
        vec![Some(ga), Some(Matrix::scalar(gs))]
    }
    fn name(&self) -> &'static str {
        "mul_scalar_tensor"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::INPUTS_ONLY
    }
    fn arity(&self) -> Arity {
        Arity::Exact(2)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        if inputs[1] != (1, 1) {
            return Err(format!("scale must be 1x1, got {:?}", inputs[1]));
        }
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let (a, s) = (&inputs[0], &inputs[1]);
        require_compatible("mul_scalar_tensor: scale rows", s.rows, Dim::Const(1))?;
        require_compatible("mul_scalar_tensor: scale cols", s.cols, Dim::Const(1))?;
        let range = a.range.mul(s.range);
        Ok(AbsVal {
            rows: a.rows,
            cols: a.cols,
            range,
            nan_free: nan_free_mul(a, s),
            inf_free: finite_arith(range, &[a, s]),
        })
    }
}

struct ReluOp;
impl Op for ReluOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &o) in g.data_mut().iter_mut().zip(out.data()) {
            if o <= 0.0 {
                *g = 0.0;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "relu"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let range = Interval::new(a.range.lo.max(0.0), a.range.hi.max(0.0));
        Ok(a.with_range(range, a.nan_free, a.inf_free))
    }
}

struct LeakyReluOp(f32);
impl Op for LeakyReluOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &x) in g.data_mut().iter_mut().zip(inputs[0].data()) {
            if x <= 0.0 {
                *g *= self.0;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "leaky_relu"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0])
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let slope = self.0;
        if slope.is_nan() || slope < 0.0 {
            // Negative or NaN slope: keep the shape, claim nothing.
            return Ok(AbsVal::top(a.rows, a.cols));
        }
        let pos = Interval::new(a.range.lo.max(0.0), a.range.hi.max(0.0));
        let neg = Interval::new(a.range.lo.min(0.0), a.range.hi.min(0.0)).scale(slope);
        let range = pos.join(neg);
        let nan_free = a.nan_free && (slope != 0.0 || a.inf_free);
        Ok(a.with_range(range, nan_free, a.inf_free))
    }
}

struct EluOp;
impl Op for EluOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        // For x <= 0: out = exp(x) - 1, so d/dx = exp(x) = out + 1.
        let mut g = pool::clone_of(grad);
        for (g, &o) in g.data_mut().iter_mut().zip(out.data()) {
            if o < 0.0 {
                *g *= o + 1.0;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "elu"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let f = |x: f32| if x > 0.0 { x } else { x.exp() - 1.0 };
        // Monotone: the image of [lo, hi] is [f(lo), f(hi)], bounded below
        // by -1; only a +inf input keeps the output unbounded.
        let range = Interval::new(f(a.range.lo), f(a.range.hi));
        let inf_free = a.inf_free || a.range.hi <= 0.0;
        Ok(a.with_range(range, a.nan_free, inf_free))
    }
}

struct TanhOp;
impl Op for TanhOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &o) in g.data_mut().iter_mut().zip(out.data()) {
            *g *= 1.0 - o * o;
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "tanh"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let range = Interval::new(a.range.lo.tanh(), a.range.hi.tanh());
        Ok(a.with_range(range, a.nan_free, true))
    }
}

struct SigmoidOp;
impl Op for SigmoidOp {
    fn backward(&self, out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &o) in g.data_mut().iter_mut().zip(out.data()) {
            *g *= o * (1.0 - o);
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "sigmoid"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::OUT_ONLY
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
        let range = Interval::new(sig(a.range.lo), sig(a.range.hi));
        Ok(a.with_range(range, a.nan_free, true))
    }
}

struct AbsOp;
impl Op for AbsOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &x) in g.data_mut().iter_mut().zip(inputs[0].data()) {
            // Subgradient 0 at x == 0.
            *g *= if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            };
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "abs"
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        infer_unary_identity(inputs)
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::inputs_at(&[0])
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        Ok(a.with_range(a.range.abs(), a.nan_free, a.inf_free))
    }
}

/// Inverted dropout; the mask (with `1/(1-p)` scaling baked in) is saved at
/// forward time.
struct DropoutOp {
    mask: Arc<Vec<f32>>,
}
impl Op for DropoutOp {
    fn backward(&self, _out: &Matrix, grad: &Matrix, _inputs: &[&Matrix]) -> Vec<Option<Matrix>> {
        let mut g = pool::clone_of(grad);
        for (g, &m) in g.data_mut().iter_mut().zip(self.mask.iter()) {
            *g *= m;
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "dropout"
    }
    fn grad_reads(&self) -> GradReads {
        GradReads::NONE // the scaled mask is saved at forward time
    }
    fn arity(&self) -> Arity {
        Arity::Exact(1)
    }
    fn infer_shape(&self, inputs: &[(usize, usize)]) -> InferredShape {
        let (r, c) = inputs[0];
        if self.mask.len() != r * c {
            return Err(format!("saved mask has {} entries for a {r}x{c} input", self.mask.len()));
        }
        Ok(Some(inputs[0]))
    }
    fn transfer(&self, inputs: &[AbsVal]) -> Result<AbsVal, String> {
        let a = &inputs[0];
        if let (Some(r), Some(c)) = (a.rows.known(), a.cols.known()) {
            if self.mask.len() != r * c {
                return Err(format!(
                    "saved mask has {} entries for a {r}x{c} input",
                    self.mask.len()
                ));
            }
        }
        let mask_hi = self.mask.iter().fold(0.0f32, |m, &v| m.max(v));
        let range = a.range.mul(Interval::new(0.0, mask_hi));
        // Dropping an infinite entry is 0 * inf = NaN.
        let nan_free = a.nan_free && a.inf_free;
        Ok(a.with_range(range, nan_free, a.inf_free && range.is_finite()))
    }
}

impl Tape {
    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Tensor, b: Tensor) -> Tensor {
        binary_shape_check(self, a, b, "add");
        let mut out = pool::clone_of(self.value(a));
        out.add_assign(self.value(b));
        self.push_op(out, Box::new(AddOp), vec![a, b])
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Tensor, b: Tensor) -> Tensor {
        binary_shape_check(self, a, b, "sub");
        let mut out = pool::clone_of(self.value(a));
        out.add_scaled_assign(self.value(b), -1.0);
        self.push_op(out, Box::new(SubOp), vec![a, b])
    }

    /// Elementwise (Hadamard) `a * b`.
    pub fn mul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        binary_shape_check(self, a, b, "mul");
        let mut out = pool::clone_of(self.value(a));
        for (o, &bv) in out.data_mut().iter_mut().zip(self.value(b).data()) {
            *o *= bv;
        }
        self.push_op(out, Box::new(MulOp), vec![a, b])
    }

    /// `a * c` for a compile-time constant `c`.
    pub fn scale(&mut self, a: Tensor, c: f32) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.scale_inplace(c);
        self.push_op(out, Box::new(ScaleOp(c)), vec![a])
    }

    /// `a + c` for a constant `c`.
    pub fn add_scalar(&mut self, a: Tensor, c: f32) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(|x| x + c);
        self.push_op(out, Box::new(AddScalarOp(c)), vec![a])
    }

    /// `a * s` where `s` is a differentiable `1 x 1` tensor. This is the
    /// building block of the supernet's softmax-weighted operation mixtures.
    pub fn mul_scalar_tensor(&mut self, a: Tensor, s: Tensor) -> Tensor {
        assert_eq!(self.value(s).shape(), (1, 1), "mul_scalar_tensor needs a 1x1 scale");
        let sv = self.value(s).as_scalar();
        let mut out = pool::clone_of(self.value(a));
        out.scale_inplace(sv);
        self.push_op(out, Box::new(MulScalarTensorOp), vec![a, s])
    }

    pub fn relu(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(|x| x.max(0.0));
        self.push_op(out, Box::new(ReluOp), vec![a])
    }

    pub fn leaky_relu(&mut self, a: Tensor, slope: f32) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(|x| if x > 0.0 { x } else { slope * x });
        self.push_op(out, Box::new(LeakyReluOp(slope)), vec![a])
    }

    pub fn elu(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(|x| if x > 0.0 { x } else { x.exp() - 1.0 });
        self.push_op(out, Box::new(EluOp), vec![a])
    }

    pub fn tanh(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(f32::tanh);
        self.push_op(out, Box::new(TanhOp), vec![a])
    }

    pub fn sigmoid(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(|x| 1.0 / (1.0 + (-x).exp()));
        self.push_op(out, Box::new(SigmoidOp), vec![a])
    }

    pub fn abs(&mut self, a: Tensor) -> Tensor {
        let mut out = pool::clone_of(self.value(a));
        out.map_inplace(f32::abs);
        self.push_op(out, Box::new(AbsOp), vec![a])
    }

    /// Inverted dropout with keep-probability `1 - p`.
    ///
    /// With `p == 0.0` this records nothing and returns `a` unchanged, so
    /// callers can pass their configured rate and use `0.0` for evaluation.
    pub fn dropout(&mut self, a: Tensor, p: f32) -> Tensor {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1), got {p}");
        if p == 0.0 {
            return a;
        }
        let scale = 1.0 / (1.0 - p);
        let n = self.value(a).len();
        let mask: Vec<f32> = {
            let rng = self.rng();
            (0..n).map(|_| if rng.gen::<f32>() < p { 0.0 } else { scale }).collect()
        };
        let mut out = pool::clone_of(self.value(a));
        for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.push_op(out, Box::new(DropoutOp { mask: Arc::new(mask) }), vec![a])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::VarStore;

    /// d/dx of sum over a chain applied to a single scalar param.
    fn scalar_grad(x: f32, f: impl Fn(&mut Tape, Tensor) -> Tensor) -> f32 {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::scalar(x));
        let mut tape = Tape::new(0);
        let t = tape.param(&store, p);
        let y = f(&mut tape, t);
        tape.backward(y).get(p).unwrap().as_scalar()
    }

    #[test]
    fn add_sub_mul_grads() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::scalar(2.0));
        let b = store.add("b", Matrix::scalar(3.0));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tb = tape.param(&store, b);
        let s = tape.add(ta, tb);
        let d = tape.sub(s, tb); // = a
        let m = tape.mul(d, tb); // = a*b
        assert_eq!(tape.value(m).as_scalar(), 6.0);
        let g = tape.backward(m);
        assert_eq!(g.get(a).unwrap().as_scalar(), 3.0);
        assert_eq!(g.get(b).unwrap().as_scalar(), 2.0);
    }

    #[test]
    fn activation_grads_at_points() {
        assert_eq!(scalar_grad(2.0, |t, x| t.relu(x)), 1.0);
        assert_eq!(scalar_grad(-2.0, |t, x| t.relu(x)), 0.0);
        assert_eq!(scalar_grad(-2.0, |t, x| t.leaky_relu(x, 0.1)), 0.1);
        let g = scalar_grad(0.5, |t, x| t.tanh(x));
        assert!((g - (1.0 - 0.5f32.tanh().powi(2))).abs() < 1e-6);
        let g = scalar_grad(0.0, |t, x| t.sigmoid(x));
        assert!((g - 0.25).abs() < 1e-6);
        let g = scalar_grad(-1.0, |t, x| t.elu(x));
        assert!((g - (-1.0f32).exp()).abs() < 1e-6);
        assert_eq!(scalar_grad(-3.0, |t, x| t.abs(x)), -1.0);
    }

    #[test]
    fn mul_scalar_tensor_grads() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let s = store.add("s", Matrix::scalar(3.0));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let ts = tape.param(&store, s);
        let y = tape.mul_scalar_tensor(ta, ts);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[3.0, 3.0]);
        assert_eq!(g.get(s).unwrap().as_scalar(), 3.0); // 1 + 2
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut tape = Tape::new(0);
        let a = tape.constant(Matrix::full(4, 4, 1.0));
        let d = tape.dropout(a, 0.0);
        assert_eq!(a, d);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        let mut tape = Tape::new(42);
        let a = tape.constant(Matrix::full(100, 100, 1.0));
        let d = tape.dropout(a, 0.5);
        let mean = tape.value(d).mean();
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout mean {mean}");
    }

    #[test]
    fn dropout_grad_matches_mask() {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::full(10, 10, 2.0));
        let mut tape = Tape::new(7);
        let t = tape.param(&store, p);
        let d = tape.dropout(t, 0.3);
        let loss = tape.sum_all(d);
        let g = tape.backward(loss);
        // Gradient equals the saved mask: zero where dropped, 1/(1-p) elsewhere.
        for (&g, &o) in g.get(p).unwrap().data().iter().zip(tape.value(d).data()) {
            if o == 0.0 {
                assert_eq!(g, 0.0);
            } else {
                assert!((g - 1.0 / 0.7).abs() < 1e-6);
            }
        }
    }
}
