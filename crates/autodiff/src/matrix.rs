//! Dense row-major `f32` matrix with cache-blocked, multi-threaded kernels.
//!
//! This is the value type flowing through the [`crate::tape`] autodiff engine.
//! Everything in SANE — node features, weights, attention scores — is a 2-D
//! matrix; vectors are `n x 1` or `1 x n` matrices.

use std::fmt;

use crate::parallel::parallel_rows;

/// Row-major dense matrix of `f32`.
///
/// Invariant: `data.len() == rows * cols`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// A `1 x 1` matrix holding `value` (the scalar representation on the tape).
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1 x 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 x 1`.
    pub fn as_scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "as_scalar on a {}x{} matrix", self.rows, self.cols);
        self.data[0]
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32 // lint:allow(lossy-cast) -- count stays far below 2^24
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True if any element is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// `self * other` (dense GEMM).
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        crate::parallel::timed("gemm", || {
            let mut out = crate::pool::zeros(self.rows, other.cols);
            gemm_ikj(&self.data, &other.data, &mut out.data, self.rows, self.cols, other.cols);
            out
        })
    }

    /// `selfᵀ * other` without materialising the transpose.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b dimension mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        crate::parallel::timed("gemm", || self.matmul_at_b_inner(other, k, m, n))
    }

    fn matmul_at_b_inner(&self, other: &Matrix, k: usize, m: usize, n: usize) -> Matrix {
        let mut out = crate::pool::zeros(m, n);
        // kᵗʰ row of A provides a rank-1 update: out[i,:] += A[k,i] * B[k,:].
        // The k loop stays outermost and serial so every out element
        // accumulates its terms in the same fixed order on every run.
        let fl = crate::simd::flavour();
        for kk in 0..k {
            let arow = &self.data[kk * m..(kk + 1) * m];
            let brow = &other.data[kk * n..(kk + 1) * n];
            for i in 0..m {
                let orow = &mut out.data[i * n..(i + 1) * n];
                fl.axpy(arow[i], brow, orow);
            }
        }
        out
    }

    /// `self * otherᵀ` without materialising the transpose.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_a_bt dimension mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        crate::parallel::timed("gemm", || {
            // Scratch: every cell is assigned by the dot below, unlike the
            // accumulating `matmul`/`matmul_at_b` kernels which need zeros.
            let mut out = crate::pool::scratch(m, n);
            let fl = crate::simd::flavour();
            let run = |rows: std::ops::Range<usize>, out_chunk: &mut [f32]| {
                for (ri, i) in rows.enumerate() {
                    let arow = &self.data[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &other.data[j * k..(j + 1) * k];
                        out_chunk[ri * n + j] = fl.dot(arow, brow);
                    }
                }
            };
            parallel_rows(m, n, m * n * k, &mut out.data, run);
            out
        })
    }

    /// Column sums as a `1 x cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Row sums as a `rows x 1` matrix.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copies rows listed in `idx` into a new `idx.len() x cols` matrix.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i as usize)); // lint:allow(lossy-cast) -- u32 index widens losslessly
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let cols = self.cols.min(8);
            let vals: Vec<String> = self.row(r)[..cols].iter().map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", vals.join(", "), ell)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// GEMM with i-k-j loop order: the inner loop streams rows of `b` and `out`.
///
/// Each output row is owned by exactly one worker and accumulates its k
/// terms serially through `simd::axpy`, so the reduction order per element
/// is fixed regardless of thread count. There is deliberately no zero-skip
/// on `av`: the data-dependent branch costs more than the multiplies it
/// saves and blocks the 8-wide `mul_add` unrolling.
fn gemm_ikj(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let fl = crate::simd::flavour();
    let run = |rows: std::ops::Range<usize>, out_chunk: &mut [f32]| {
        for (ri, i) in rows.enumerate() {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out_chunk[ri * n..(ri + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &b[kk * n..(kk + 1) * n];
                fl.axpy(av, brow, orow);
            }
        }
    };
    parallel_rows(m, n, m * n * k, out, run);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    fn rngmat(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = rngmat(5, 5, 1);
        let i = Matrix::eye(5);
        assert_close(&a.matmul(&i), &a, 1e-6);
        assert_close(&i.matmul(&a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "matrix buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 23), (64, 128, 32), (130, 70, 90)] {
            let a = rngmat(m, k, 7);
            let b = rngmat(k, n, 8);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_at_b_matches_transpose() {
        let a = rngmat(11, 6, 2);
        let b = rngmat(11, 9, 3);
        assert_close(&a.matmul_at_b(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_a_bt_matches_transpose() {
        let a = rngmat(12, 7, 4);
        let b = rngmat(10, 7, 5);
        assert_close(&a.matmul_a_bt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn large_parallel_matmul_matches_naive() {
        let a = rngmat(150, 80, 11);
        let b = rngmat(80, 120, 12);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn transpose_involution() {
        let a = rngmat(5, 9, 20);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hcat_shapes_and_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![5.0, 6.0]);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.col_sums().data(), &[4.0, 2.0]);
        assert_eq!(a.row_sums().data(), &[-1.0, 7.0]);
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(Matrix::scalar(2.5).as_scalar(), 2.5);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
