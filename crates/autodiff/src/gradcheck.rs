//! Finite-difference gradient checking.
//!
//! Used by property tests across the workspace to verify that every op's
//! analytic backward pass matches a central-difference estimate.

use crate::tape::{ParamId, Tape, Tensor, VarStore};

/// Result of a gradient check for one parameter.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error across elements.
    pub max_rel_err: f32,
    /// Element index where the worst error occurred.
    pub worst_index: usize,
    /// Analytic gradient at the worst element.
    pub analytic: f32,
    /// Numeric gradient at the worst element.
    pub numeric: f32,
}

/// Compares the analytic gradient of `f`'s scalar output w.r.t. `param`
/// against central finite differences.
///
/// `f` must rebuild the same computation on each call; it receives a fresh
/// tape, a read view of the store (for any *other* parameters it needs)
/// and the tensor of the checked parameter. Keep `f` deterministic —
/// dropout or other stochastic ops would corrupt the numeric estimate.
pub fn check_gradient(
    store: &mut VarStore,
    param: ParamId,
    eps: f32,
    mut f: impl FnMut(&mut Tape, &VarStore, Tensor) -> Tensor,
) -> GradCheckReport {
    // Analytic gradient.
    let analytic = {
        let mut tape = Tape::new(0);
        let x = tape.param(store, param);
        let y = f(&mut tape, store, x);
        let grads = tape.backward(y);
        grads
            .get(param)
            .map(|m| m.data().to_vec())
            .unwrap_or_else(|| vec![0.0; store.value(param).len()])
    };

    let mut report =
        GradCheckReport { max_rel_err: 0.0, worst_index: 0, analytic: 0.0, numeric: 0.0 };
    let n = store.value(param).len();
    for i in 0..n {
        let orig = store.value(param).data()[i];

        store.value_mut(param).data_mut()[i] = orig + eps;
        let plus = eval(store, param, &mut f);
        store.value_mut(param).data_mut()[i] = orig - eps;
        let minus = eval(store, param, &mut f);
        store.value_mut(param).data_mut()[i] = orig;

        let numeric = (plus - minus) / (2.0 * eps);
        let denom = 1.0f32.max(analytic[i].abs()).max(numeric.abs());
        let rel = (analytic[i] - numeric).abs() / denom;
        if rel > report.max_rel_err {
            report = GradCheckReport {
                max_rel_err: rel,
                worst_index: i,
                analytic: analytic[i],
                numeric,
            };
        }
    }
    report
}

fn eval(
    store: &VarStore,
    param: ParamId,
    f: &mut impl FnMut(&mut Tape, &VarStore, Tensor) -> Tensor,
) -> f32 {
    let mut tape = Tape::new(0);
    let x = tape.param(store, param);
    let y = f(&mut tape, store, x);
    tape.value(y).as_scalar()
}

/// Asserts the gradient check passes within `tol`.
///
/// # Panics
/// Panics with a diagnostic message when the analytic and numeric gradients
/// disagree.
pub fn assert_gradients_match(
    store: &mut VarStore,
    param: ParamId,
    tol: f32,
    f: impl FnMut(&mut Tape, &VarStore, Tensor) -> Tensor,
) {
    let report = check_gradient(store, param, 1e-2, f);
    assert!(
        report.max_rel_err <= tol,
        "gradient mismatch at element {}: analytic {} vs numeric {} (rel err {})",
        report.worst_index,
        report.analytic,
        report.numeric,
        report.max_rel_err
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn passes_for_correct_gradient() {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.2]));
        assert_gradients_match(&mut store, p, 1e-2, |tape, _, x| {
            let t = tape.tanh(x);
            let s = tape.mul(t, t);
            tape.sum_all(s)
        });
    }

    #[test]
    fn other_params_are_readable_inside_the_closure() {
        let mut store = VarStore::new();
        let w = store.add("w", Matrix::scalar(3.0));
        let p = store.add("x", Matrix::scalar(0.5));
        assert_gradients_match(&mut store, p, 1e-2, |tape, store, x| {
            // y = w * x, dy/dx = w = 3.
            let wt = tape.param(store, w);
            tape.mul(wt, x)
        });
    }

    #[test]
    fn detects_wrong_gradient() {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::scalar(0.5));
        // The closure switches behaviour under perturbation, which breaks
        // the numeric estimate and must be caught.
        let report = check_gradient(&mut store, p, 1e-2, |tape, _, x| {
            let v = tape.value(x).as_scalar();
            if (v - 0.5).abs() < 1e-6 {
                tape.scale(x, 2.0)
            } else {
                tape.scale(x, 10.0)
            }
        });
        assert!(report.max_rel_err > 0.1);
    }
}
