//! First-order optimizers over a [`VarStore`].
//!
//! Both optimizers fold L2 regularisation into the gradient *before* the
//! moment updates — i.e. classic coupled L2, exactly the semantics of
//! PyTorch's `weight_decay` option that the paper's "L2 Norm"
//! hyper-parameter configures (not AdamW-style decoupled decay).

use crate::matrix::Matrix;
use crate::tape::{Gradients, ParamId, VarStore};

/// Plain SGD with optional weight decay.
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, weight_decay }
    }

    /// Applies one step for every parameter that received a gradient.
    pub fn step(&mut self, store: &mut VarStore, grads: &Gradients) {
        for (id, grad) in grads.iter() {
            let value = store.value_mut(id);
            let wd = self.weight_decay;
            let lr = self.lr;
            for (v, &g) in value.data_mut().iter_mut().zip(grad.data()) {
                *v -= lr * (g + wd * *v);
            }
        }
    }
}

/// Adam ([Kingma & Ba 2015]) with coupled L2 weight decay.
///
/// Moment buffers are allocated lazily per parameter the first time it
/// receives a gradient, so one optimizer can drive a subset of a store
/// (the bi-level setup gives `w` and `α` separate optimizers).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Per-parameter state, indexed by `ParamId`.
    state: Vec<Option<AdamState>>,
}

struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u32,
}

impl Adam {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self::with_betas(lr, weight_decay, 0.9, 0.999, 1e-8)
    }

    pub fn with_betas(lr: f32, weight_decay: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        Self { lr, beta1, beta2, eps, weight_decay, state: Vec::new() }
    }

    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one Adam step for every parameter that received a gradient.
    pub fn step(&mut self, store: &mut VarStore, grads: &Gradients) {
        for (id, grad) in grads.iter() {
            self.step_param(store, id, grad);
        }
    }

    /// Applies one Adam step restricted to `ids` (others are ignored even if
    /// they have gradients) — used for alternating bi-level updates.
    pub fn step_subset(&mut self, store: &mut VarStore, grads: &Gradients, ids: &[ParamId]) {
        for &id in ids {
            if let Some(grad) = grads.get(id) {
                self.step_param(store, id, grad);
            }
        }
    }

    fn step_param(&mut self, store: &mut VarStore, id: ParamId, grad: &Matrix) {
        if self.state.len() <= id.index() {
            self.state.resize_with(id.index() + 1, || None);
        }
        let value = store.value_mut(id);
        let slot = &mut self.state[id.index()];
        let st = slot.get_or_insert_with(|| AdamState {
            m: Matrix::zeros(grad.rows(), grad.cols()),
            v: Matrix::zeros(grad.rows(), grad.cols()),
            t: 0,
        });
        assert_eq!(st.m.shape(), grad.shape(), "gradient shape changed between steps");
        st.t += 1;
        let bc1 = 1.0 - self.beta1.powi(st.t as i32);
        let bc2 = 1.0 - self.beta2.powi(st.t as i32);
        for i in 0..grad.len() {
            let g = grad.data()[i] + self.weight_decay * value.data()[i];
            let m = &mut st.m.data_mut()[i];
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let v = &mut st.v.data_mut()[i];
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Drops all moment state (used when re-initialising a model in place).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises (x - 3)^2 and checks convergence.
    fn quadratic_converges(mut do_step: impl FnMut(&mut VarStore, &Gradients, ParamId)) -> f32 {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::scalar(0.0));
        for _ in 0..400 {
            let mut tape = Tape::new(0);
            let x = tape.param(&store, p);
            let c = tape.scalar(3.0);
            let d = tape.sub(x, c);
            let sq = tape.mul(d, d);
            let grads = tape.backward(sq);
            do_step(&mut store, &grads, p);
        }
        store.value(p).as_scalar()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = quadratic_converges(|s, g, _| opt.step(s, g));
        assert!((x - 3.0).abs() < 1e-3, "sgd converged to {x}");
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut opt = Adam::new(0.05, 0.0);
        let x = quadratic_converges(|s, g, _| opt.step(s, g));
        assert!((x - 3.0).abs() < 1e-2, "adam converged to {x}");
    }

    #[test]
    fn weight_decay_shrinks_stationary_point() {
        // With decay, the optimum of (x-3)^2 + (wd/2)·x² moves below 3.
        let mut opt = Adam::new(0.05, 0.5);
        let x = quadratic_converges(|s, g, _| opt.step(s, g));
        assert!(x < 2.9 && x > 1.0, "decayed optimum {x}");
    }

    #[test]
    fn step_subset_ignores_other_params() {
        let mut store = VarStore::new();
        let a = store.add("a", Matrix::scalar(1.0));
        let b = store.add("b", Matrix::scalar(1.0));
        let mut tape = Tape::new(0);
        let ta = tape.param(&store, a);
        let tb = tape.param(&store, b);
        let sum = tape.add(ta, tb);
        let grads = tape.backward(sum);
        let mut opt = Adam::new(0.1, 0.0);
        opt.step_subset(&mut store, &grads, &[a]);
        assert!(store.value(a).as_scalar() < 1.0);
        assert_eq!(store.value(b).as_scalar(), 1.0);
    }

    #[test]
    fn sgd_matches_hand_computed_update() {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::scalar(2.0));
        let mut tape = Tape::new(0);
        let x = tape.param(&store, p);
        let y = tape.scale(x, 4.0); // dy/dx = 4
        let grads = tape.backward(y);
        Sgd::new(0.5, 0.0).step(&mut store, &grads);
        assert_eq!(store.value(p).as_scalar(), 0.0); // 2 - 0.5*4
    }
}
