//! Static analysis of recorded tapes.
//!
//! A [`Tape`] is a Wengert list: a flat, already-scheduled dataflow graph
//! with eagerly computed forward values. That makes it cheap to *audit*
//! without running backward — every op declares its input arity and a
//! shape-transfer function ([`Op::arity`] / [`Op::infer_shape`]), and the
//! auditor replays those declarations against what was actually recorded.
//!
//! [`Tape::audit`] runs five passes and collects everything it finds into a
//! [`TapeReport`]:
//!
//! 1. **Arity check** — each node's recorded input count matches its op's
//!    declared [`Arity`].
//! 2. **Shape consistency** — each node's recorded output shape matches the
//!    shape its op infers from its recorded input shapes, and the input
//!    shapes themselves satisfy the op's contract (e.g. `matmul` inner
//!    dimensions agree).
//! 3. **Reachability** — a reverse walk from the loss node flags recorded
//!    compute that can never receive gradient (dead compute) and parameter
//!    leaves the loss does not depend on (dead parameters, the classic
//!    silently-frozen-weight bug).
//! 4. **Fan accounting** — counts fan-out per node; nodes consumed more than
//!    once are gradient *accumulation points* (their backward contributions
//!    are summed), which is where reordering or missed contributions would
//!    bite. Summary statistics land in [`FanStats`].
//! 5. **Non-finite scan** — forward values are scanned for `NaN`/`±inf`;
//!    only *origins* (non-finite nodes whose inputs are all finite) are
//!    reported, with op-name provenance, so one overflow does not drown the
//!    report in downstream noise. [`Tape::audit_with_gradients`] extends the
//!    scan to a [`Gradients`] set, naming offending parameters via the
//!    [`VarStore`].
//!
//! The report is `Display`-able and is what the training and search loops
//! emit behind their `audit_every` debug flags.
//!
//! [`Op::arity`]: crate::tape::Op::arity
//! [`Op::infer_shape`]: crate::tape::Op::infer_shape

use crate::absint::{AbsReport, AbsSummary};
use crate::dataflow::{MemPlan, MemSummary};
use crate::tape::{Gradients, Tape, Tensor, VarStore};

/// Declared number of inputs an op consumes from the tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` inputs.
    Exact(usize),
    /// `n` or more inputs (variadic ops such as `concat_cols`).
    AtLeast(usize),
}

impl Arity {
    /// Whether a recorded input count satisfies this declaration.
    pub fn accepts(self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }
}

impl std::fmt::Display for Arity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arity::Exact(k) => write!(f, "exactly {k}"),
            Arity::AtLeast(k) => write!(f, "at least {k}"),
        }
    }
}

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (dead compute, dead parameters).
    Warning,
    /// The tape violates an op contract or carries non-finite numbers.
    Error,
}

/// What kind of defect a finding describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A node's recorded input count contradicts its op's declared arity.
    ArityMismatch,
    /// A node's recorded shapes contradict its op's shape-transfer function.
    ShapeMismatch,
    /// A non-leaf op declined to infer its output shape (dynamic output
    /// arity), so the shape pass could not check this node. Earlier
    /// versions silently dropped the node, hiding the coverage gap.
    ShapeUnknown,
    /// The abstract interpreter found a node whose transfer function
    /// rejected its inputs (see [`crate::absint`]).
    AbsintViolation,
    /// A non-leaf node the loss does not depend on: wasted forward compute.
    DeadCompute,
    /// A parameter leaf the loss does not depend on: it will never train.
    DeadParam,
    /// A forward value where `NaN`/`±inf` first appears.
    NonFiniteValue,
    /// A parameter gradient containing `NaN`/`±inf`.
    NonFiniteGradient,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FindingKind::ArityMismatch => "arity-mismatch",
            FindingKind::ShapeMismatch => "shape-mismatch",
            FindingKind::ShapeUnknown => "shape-unknown",
            FindingKind::AbsintViolation => "absint-violation",
            FindingKind::DeadCompute => "dead-compute",
            FindingKind::DeadParam => "dead-param",
            FindingKind::NonFiniteValue => "non-finite-value",
            FindingKind::NonFiniteGradient => "non-finite-gradient",
        };
        f.write_str(s)
    }
}

/// One defect the auditor found, with provenance.
#[derive(Clone, Debug)]
pub struct Finding {
    pub kind: FindingKind,
    pub severity: Severity,
    /// Index of the offending node on the tape, when the finding is about a
    /// node (gradient findings are about parameters instead).
    pub node: Option<usize>,
    /// Name of the offending op, when known.
    pub op: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{sev}] {}", self.kind)?;
        if let Some(n) = self.node {
            write!(f, " @ node {n}")?;
        }
        if let Some(op) = self.op {
            write!(f, " ({op})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Fan-in / fan-out accounting over the tape.
#[derive(Clone, Debug, Default)]
pub struct FanStats {
    /// Nodes consumed by more than one downstream op — their gradients are
    /// accumulated (summed) during backward.
    pub accumulation_points: usize,
    /// Largest number of consumers of any single node.
    pub max_fan_out: usize,
    /// Node achieving `max_fan_out`, if any node has consumers.
    pub max_fan_out_node: Option<usize>,
    /// Largest number of inputs of any single node.
    pub max_fan_in: usize,
    /// Node achieving `max_fan_in`, if any node has inputs.
    pub max_fan_in_node: Option<usize>,
}

/// Result of auditing one recorded tape.
#[derive(Clone, Debug)]
pub struct TapeReport {
    /// Everything the auditor flagged, in pass order.
    pub findings: Vec<Finding>,
    /// Total recorded nodes.
    pub num_nodes: usize,
    /// Nodes the loss depends on (including leaves).
    pub reachable_nodes: usize,
    /// Parameter leaves recorded on the tape.
    pub num_param_nodes: usize,
    /// Fan-in / fan-out summary.
    pub fan: FanStats,
    /// Buffer-pool activity attributable to *this tape* (counters since
    /// the tape was created; `buffers`/`floats` describe the pool's
    /// current contents). In steady-state training the per-tape hit rate
    /// approaches 1.0 and `misses` stays at zero — per-step heap growth
    /// from tape buffers is zero. Earlier versions reported
    /// process-lifetime counters here, which accumulated across epochs
    /// and hid late-run regressions.
    pub pool: crate::pool::PoolStats,
    /// Planned-vs-baseline peak residency from the dataflow memory plan;
    /// `None` unless the report came from [`Tape::audit_with_memplan`].
    pub mem: Option<MemSummary>,
    /// Abstract-interpretation summary (shape/interval/NaN analysis);
    /// `None` unless the report came from [`Tape::audit_with_absint`].
    pub absint: Option<AbsSummary>,
}

impl TapeReport {
    /// True when the auditor found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when at least one finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Findings of one kind (convenience for tests and callers).
    pub fn of_kind(&self, kind: FindingKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }
}

impl std::fmt::Display for TapeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tape audit: {} nodes ({} reachable from loss, {} params), \
             {} accumulation points (max fan-out {}{})",
            self.num_nodes,
            self.reachable_nodes,
            self.num_param_nodes,
            self.fan.accumulation_points,
            self.fan.max_fan_out,
            match self.fan.max_fan_out_node {
                Some(n) => format!(" at node {n}"),
                None => String::new(),
            },
        )?;
        writeln!(f, "  buffer pool: {}", self.pool)?;
        if let Some(mem) = &self.mem {
            writeln!(f, "  memory plan: {mem}")?;
        }
        if let Some(absint) = &self.absint {
            writeln!(f, "  abstract interpretation: {absint}")?;
        }
        if self.findings.is_empty() {
            write!(f, "  clean: no findings")
        } else {
            write!(f, "  {} finding(s):", self.findings.len())?;
            for finding in &self.findings {
                write!(f, "\n  {finding}")?;
            }
            Ok(())
        }
    }
}

impl Tape {
    /// Audits the tape as a computation ending at `output` (the loss node).
    ///
    /// Runs all static passes: arity, shape consistency, reachability /
    /// dead compute / dead parameters, fan accounting and the non-finite
    /// scan of forward values. Does not execute any backward computation.
    ///
    /// Pass the [`VarStore`] used to record parameters so dead-parameter
    /// findings can name the offending parameter.
    pub fn audit(&self, output: Tensor, store: Option<&VarStore>) -> TapeReport {
        let n = self.len();
        assert!(output.0 < n, "audit output node {} out of range", output.0);
        let mut findings = Vec::new();

        // Pass 1 + 2: declared arity and shape transfer vs recorded reality.
        for i in 0..n {
            let node = self.node(i);
            let op_name = node.op.name();
            let shapes: Vec<(usize, usize)> =
                node.inputs.iter().map(|t| self.value(*t).shape()).collect();

            let arity = node.op.arity();
            if !arity.accepts(shapes.len()) {
                findings.push(Finding {
                    kind: FindingKind::ArityMismatch,
                    severity: Severity::Error,
                    node: Some(i),
                    op: Some(op_name),
                    message: format!(
                        "recorded with {} input(s) but declares {arity}",
                        shapes.len()
                    ),
                });
                // Shape inference over a malformed input list is meaningless.
                continue;
            }

            match node.op.infer_shape(&shapes) {
                Err(msg) => findings.push(Finding {
                    kind: FindingKind::ShapeMismatch,
                    severity: Severity::Error,
                    node: Some(i),
                    op: Some(op_name),
                    message: format!("inconsistent input shapes {shapes:?}: {msg}"),
                }),
                Ok(Some(expected)) => {
                    let actual = node.value.shape();
                    if actual != expected {
                        findings.push(Finding {
                            kind: FindingKind::ShapeMismatch,
                            severity: Severity::Error,
                            node: Some(i),
                            op: Some(op_name),
                            message: format!(
                                "inputs {shapes:?} infer output {expected:?} \
                                 but recorded value is {actual:?}"
                            ),
                        });
                    }
                }
                // Leaves legitimately decline (they have no inputs to infer
                // from); a non-leaf declining means the shape pass has a
                // blind spot, which must be visible, not silently skipped.
                Ok(None) => {
                    if !shapes.is_empty() {
                        findings.push(Finding {
                            kind: FindingKind::ShapeUnknown,
                            severity: Severity::Warning,
                            node: Some(i),
                            op: Some(op_name),
                            message: format!(
                                "op declined to infer an output shape from inputs \
                                 {shapes:?}; this node is unchecked by the shape pass"
                            ),
                        });
                    }
                }
            }
        }

        // Fan accounting.
        let mut fan_out = vec![0usize; n];
        let mut fan = FanStats::default();
        for i in 0..n {
            let node = self.node(i);
            for t in &node.inputs {
                fan_out[t.0] += 1;
            }
            if node.inputs.len() > fan.max_fan_in {
                fan.max_fan_in = node.inputs.len();
                fan.max_fan_in_node = Some(i);
            }
        }
        for (i, &fo) in fan_out.iter().enumerate() {
            if fo > 1 {
                fan.accumulation_points += 1;
            }
            if fo > fan.max_fan_out {
                fan.max_fan_out = fo;
                fan.max_fan_out_node = Some(i);
            }
        }

        // Pass 3: reachability from the loss. This is the dataflow
        // module's reachability — one implementation shared with the
        // memory planner, so the dead-compute findings below and a
        // [`MemPlan`]'s dead list cannot disagree.
        let reachable = self.op_graph(Some(output)).reachable();
        let reachable_nodes = reachable.iter().filter(|&&r| r).count();

        let mut num_param_nodes = 0;
        for i in 0..n {
            let node = self.node(i);
            if let Some(pid) = node.param {
                num_param_nodes += 1;
                if !reachable[i] {
                    let name = store
                        .map(|s| format!("`{}`", s.name(pid)))
                        .unwrap_or_else(|| format!("#{}", pid.index()));
                    findings.push(Finding {
                        kind: FindingKind::DeadParam,
                        severity: Severity::Warning,
                        node: Some(i),
                        op: Some(node.op.name()),
                        message: format!(
                            "parameter {name} is recorded but the loss does \
                             not depend on it; it will receive no gradient"
                        ),
                    });
                }
            } else if !reachable[i] && !node.inputs.is_empty() {
                findings.push(Finding {
                    kind: FindingKind::DeadCompute,
                    severity: Severity::Warning,
                    node: Some(i),
                    op: Some(node.op.name()),
                    message: "computed but the loss does not depend on it \
                              (wasted forward work)"
                        .to_string(),
                });
            }
        }

        // Pass 5: non-finite origins in forward values. A node is an origin
        // when its value is non-finite but all its inputs are finite, so the
        // report names where the overflow *started*, not everything it
        // poisoned downstream.
        let non_finite: Vec<bool> = (0..n).map(|i| self.node(i).value.has_non_finite()).collect();
        for i in 0..n {
            if non_finite[i] && self.node(i).inputs.iter().all(|t| !non_finite[t.0]) {
                findings.push(Finding {
                    kind: FindingKind::NonFiniteValue,
                    severity: Severity::Error,
                    node: Some(i),
                    op: Some(self.node(i).op.name()),
                    message: "forward value contains NaN/inf and all inputs \
                              are finite (non-finite origin)"
                        .to_string(),
                });
            }
        }

        TapeReport {
            findings,
            num_nodes: n,
            reachable_nodes,
            num_param_nodes,
            fan,
            pool: self.pool_activity(),
            mem: None,
            absint: None,
        }
    }

    /// [`Tape::audit`], extended with a verified dataflow memory plan:
    /// the report gains planned-vs-baseline peak residency in
    /// [`TapeReport::mem`] and the plan is returned for execution via
    /// [`Tape::backward_measured`].
    ///
    /// # Panics
    /// Panics if the generated plan fails [`crate::dataflow::check_memplan`]
    /// (see [`Tape::memplan`]).
    pub fn audit_with_memplan(
        &self,
        output: Tensor,
        store: Option<&VarStore>,
    ) -> (TapeReport, MemPlan) {
        let mut report = self.audit(output, store);
        let plan = self.memplan(output);
        report.mem = Some(plan.summary());
        (report, plan)
    }

    /// [`Tape::audit`], extended with the abstract interpreter: every
    /// transfer-function violation becomes an [`FindingKind::AbsintViolation`]
    /// error and the analysis summary lands in [`TapeReport::absint`]. The
    /// full [`AbsReport`] is returned for callers that want per-value
    /// domains (e.g. the graph-audit exporter).
    pub fn audit_with_absint(
        &self,
        output: Tensor,
        store: Option<&VarStore>,
    ) -> (TapeReport, AbsReport) {
        let mut report = self.audit(output, store);
        let abs = self.absint();
        for v in &abs.violations {
            report.findings.push(Finding {
                kind: FindingKind::AbsintViolation,
                severity: Severity::Error,
                node: Some(v.node),
                op: Some(v.op),
                message: v.message.clone(),
            });
        }
        report.absint = Some(abs.summary());
        (report, abs)
    }

    /// [`Tape::audit`], extended with a non-finite scan over a gradient set
    /// produced by this tape's backward sweep.
    pub fn audit_with_gradients(
        &self,
        output: Tensor,
        store: Option<&VarStore>,
        grads: &Gradients,
    ) -> TapeReport {
        let mut report = self.audit(output, store);
        for (pid, g) in grads.iter() {
            if g.has_non_finite() {
                let name = store
                    .map(|s| format!("`{}`", s.name(pid)))
                    .unwrap_or_else(|| format!("#{}", pid.index()));
                report.findings.push(Finding {
                    kind: FindingKind::NonFiniteGradient,
                    severity: Severity::Error,
                    node: None,
                    op: None,
                    message: format!("gradient of parameter {name} contains NaN/inf"),
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Op;

    fn small_loss_tape() -> (Tape, VarStore, Tensor) {
        let mut store = VarStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]));
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let wt = tape.param(&store, w);
        let h = tape.matmul(x, wt);
        let a = tape.relu(h);
        let loss = tape.mean_all(a);
        (tape, store, loss)
    }

    #[test]
    fn clean_tape_audits_clean() {
        let (tape, store, loss) = small_loss_tape();
        let report = tape.audit(loss, Some(&store));
        assert!(report.is_clean(), "unexpected findings:\n{report}");
        assert_eq!(report.num_nodes, 5);
        assert_eq!(report.reachable_nodes, 5);
        assert_eq!(report.num_param_nodes, 1);
    }

    #[test]
    fn fan_out_counts_accumulation_points() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        // x is consumed twice: gradient w.r.t. x accumulates.
        let y = tape.mul(x, x);
        let loss = tape.sum_all(y);
        let report = tape.audit(loss, None);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.fan.accumulation_points, 1);
        assert_eq!(report.fan.max_fan_out, 2);
        assert_eq!(report.fan.max_fan_out_node, Some(x.index()));
    }

    /// Mutation test: an op whose recorded output contradicts its declared
    /// shape-transfer function must produce a `ShapeMismatch` error.
    #[test]
    fn wrong_shape_op_is_flagged() {
        struct BrokenTransposeOp;
        impl Op for BrokenTransposeOp {
            fn backward(&self, _: &Matrix, grad: &Matrix, _: &[&Matrix]) -> Vec<Option<Matrix>> {
                vec![Some(grad.clone())]
            }
            fn name(&self) -> &'static str {
                "broken_transpose"
            }
            fn arity(&self) -> Arity {
                Arity::Exact(1)
            }
            fn infer_shape(
                &self,
                inputs: &[(usize, usize)],
            ) -> Result<Option<(usize, usize)>, String> {
                // Declares a transpose...
                Ok(Some((inputs[0].1, inputs[0].0)))
            }
        }

        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 3, vec![1.0; 6]));
        // ...but records the identity: (2, 3) instead of the declared (3, 2).
        let bad = tape.push_op(
            Matrix::from_vec(2, 3, vec![1.0; 6]),
            Box::new(BrokenTransposeOp),
            vec![x],
        );
        let loss = tape.sum_all(bad);
        let report = tape.audit(loss, None);
        let f: Vec<_> = report.of_kind(FindingKind::ShapeMismatch).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert_eq!(f[0].node, Some(bad.index()));
        assert_eq!(f[0].op, Some("broken_transpose"));
        assert!(report.has_errors());
    }

    /// Mutation test: a non-leaf op that declines to infer its output shape
    /// must surface as a `shape-unknown` warning — earlier versions silently
    /// dropped the node from the shape pass.
    #[test]
    fn dynamic_arity_op_is_reported_not_skipped() {
        struct OpaqueOp;
        impl Op for OpaqueOp {
            fn backward(&self, _: &Matrix, grad: &Matrix, _: &[&Matrix]) -> Vec<Option<Matrix>> {
                vec![Some(grad.clone())]
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn arity(&self) -> Arity {
                Arity::Exact(1)
            }
            fn infer_shape(
                &self,
                _inputs: &[(usize, usize)],
            ) -> Result<Option<(usize, usize)>, String> {
                // Dynamic output arity: refuses to commit to a shape.
                Ok(None)
            }
        }

        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 3, vec![1.0; 6]));
        let y = tape.push_op(Matrix::from_vec(4, 1, vec![1.0; 4]), Box::new(OpaqueOp), vec![x]);
        let loss = tape.sum_all(y);
        let report = tape.audit(loss, None);
        let f: Vec<_> = report.of_kind(FindingKind::ShapeUnknown).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert_eq!(f[0].node, Some(y.index()));
        assert_eq!(f[0].op, Some("opaque"));
        assert_eq!(f[0].severity, Severity::Warning);
        // A warning, not an error: the tape is suspect but not provably broken.
        assert!(!report.has_errors(), "{report}");
        // Leaves (constants here) also return `Ok(None)` but must stay silent.
        assert!(!report.findings.iter().any(|f| f.node == Some(x.index())));
    }

    /// `audit_with_absint` folds interpreter violations into the report as
    /// errors and records the analysis summary.
    #[test]
    fn audit_with_absint_reports_transfer_violations() {
        // Clean tape: summary present, no violations.
        let (tape, store, loss) = small_loss_tape();
        let (report, abs) = tape.audit_with_absint(loss, Some(&store));
        assert!(report.is_clean(), "{report}");
        assert!(abs.is_clean());
        let summary = report.absint.expect("summary must be recorded");
        assert_eq!(summary.analyzed, tape.len());
        assert_eq!(summary.violations, 0);

        // Corrupted tape: a matmul recorded with incompatible inner dims
        // trips the transfer contract and must surface as an error finding.
        let mut tape = Tape::new(0);
        let a = tape.constant(Matrix::from_vec(2, 3, vec![1.0; 6]));
        let b = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let bad = tape.push_op(
            Matrix::from_vec(2, 2, vec![0.0; 4]),
            Box::new(crate::ops::linalg::MatMulOp),
            vec![a, b],
        );
        let loss = tape.sum_all(bad);
        let (report, abs) = tape.audit_with_absint(loss, None);
        assert!(!abs.is_clean());
        let f: Vec<_> = report.of_kind(FindingKind::AbsintViolation).collect();
        assert!(!f.is_empty(), "{report}");
        assert_eq!(f[0].node, Some(bad.index()));
        assert!(report.has_errors());
        assert_eq!(report.absint.expect("summary").violations, abs.violations.len());
    }

    /// Mutation test: an op recorded with the wrong number of inputs must
    /// produce an `ArityMismatch` error.
    #[test]
    fn wrong_arity_is_flagged() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let y = tape.constant(Matrix::from_vec(2, 2, vec![2.0; 4]));
        // matmul declares exactly 2 inputs; wire it with 3.
        let bad = tape.push_op(
            Matrix::from_vec(2, 2, vec![0.0; 4]),
            Box::new(crate::ops::linalg::MatMulOp),
            vec![x, y, x],
        );
        let loss = tape.sum_all(bad);
        let report = tape.audit(loss, None);
        let f: Vec<_> = report.of_kind(FindingKind::ArityMismatch).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert_eq!(f[0].op, Some("matmul"));
    }

    /// Mutation test: a parameter the loss does not depend on must produce a
    /// `DeadParam` warning naming the parameter.
    #[test]
    fn dead_parameter_is_flagged() {
        let mut store = VarStore::new();
        let used = store.add("w_used", Matrix::scalar(1.0));
        let unused = store.add("w_frozen", Matrix::scalar(2.0));
        let mut tape = Tape::new(0);
        let a = tape.param(&store, used);
        let _b = tape.param(&store, unused);
        let loss = tape.mul(a, a);
        let report = tape.audit(loss, Some(&store));
        let f: Vec<_> = report.of_kind(FindingKind::DeadParam).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert!(f[0].message.contains("w_frozen"), "{}", f[0].message);
        assert!(!report.has_errors(), "dead params are warnings, not errors");
    }

    /// The audit's dead-compute findings and the memory plan's dead list
    /// come from one shared reachability pass; this fixture pins them to
    /// each other so the two reports can never disagree.
    #[test]
    fn dead_compute_report_matches_memplan_dead_list() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let w1 = tape.relu(x);
        let _w2 = tape.add_scalar(w1, 1.0); // dead chain of two ops
        let loss = tape.sum_all(x);
        let (report, plan) = tape.audit_with_memplan(loss, None);
        let audit_dead: Vec<usize> = report
            .of_kind(FindingKind::DeadCompute)
            .map(|f| f.node.expect("dead-compute findings name a node")) // lint:allow(expect) -- dead-compute findings name a node
            .collect();
        assert_eq!(audit_dead, plan.dead, "{report}");
        let mem = report.mem.expect("memplan audit fills the summary"); // lint:allow(expect) -- memplan audit fills the summary
        assert_eq!(mem.dead_ops, 2);
        assert!(format!("{report}").contains("memory plan:"), "{report}");
    }

    #[test]
    fn dead_compute_is_flagged() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0; 4]));
        let _wasted = tape.relu(x); // never feeds the loss
        let loss = tape.sum_all(x);
        let report = tape.audit(loss, None);
        let f: Vec<_> = report.of_kind(FindingKind::DeadCompute).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert_eq!(f[0].op, Some("relu"));
    }

    /// Mutation test: injected NaN must be flagged at its origin only, not
    /// at every downstream node it poisons.
    #[test]
    fn nan_injection_is_flagged_at_origin() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0, f32::NAN, 3.0, 4.0]));
        let h = tape.relu(x); // poisoned downstream
        let loss = tape.sum_all(h);
        let report = tape.audit(loss, None);
        let f: Vec<_> = report.of_kind(FindingKind::NonFiniteValue).collect();
        assert_eq!(f.len(), 1, "origin only, got:\n{report}");
        assert_eq!(f[0].node, Some(x.index()));
        assert_eq!(f[0].op, Some("input"));
    }

    #[test]
    fn non_finite_gradient_is_flagged() {
        let mut store = VarStore::new();
        let w = store.add("w", Matrix::scalar(1e20));
        let mut tape = Tape::new(0);
        let a = tape.param(&store, w);
        let b = tape.mul(a, a); // 1e40 overflows f32 -> inf
        let loss = tape.mul(b, b);
        let grads = tape.backward(loss);
        let report = tape.audit_with_gradients(loss, Some(&store), &grads);
        let f: Vec<_> = report.of_kind(FindingKind::NonFiniteGradient).collect();
        assert_eq!(f.len(), 1, "{report}");
        assert!(f[0].message.contains('w'), "{}", f[0].message);
    }

    /// The report's pool stats must cover this tape only — not accumulate
    /// across every tape the thread ever built (the old behaviour, which
    /// made per-epoch audit output useless after the first epoch).
    #[test]
    fn pool_stats_are_per_tape_not_cumulative() {
        crate::pool::reset();
        // Warm the pool with a first step's worth of buffers.
        {
            let (tape, store, loss) = small_loss_tape();
            tape.backward(loss).recycle();
            let _ = (store, tape);
        }
        let warmed = crate::pool::stats();
        assert!(warmed.misses > 0, "first step must have allocated");
        // A second, identical step audits with only its own activity.
        let (tape, store, loss) = small_loss_tape();
        let report = tape.audit(loss, Some(&store));
        assert!(
            report.pool.misses < warmed.misses,
            "report must not accumulate earlier tapes' misses \
             (report {} vs process {})",
            report.pool.misses,
            warmed.misses
        );
        drop(tape);
        crate::pool::reset();
    }

    #[test]
    fn report_display_is_readable() {
        let (tape, store, loss) = small_loss_tape();
        let report = tape.audit(loss, Some(&store));
        let text = format!("{report}");
        assert!(text.contains("clean"), "{text}");
        assert!(text.contains("5 nodes"), "{text}");
    }
}
