//! # sane-autodiff
//!
//! Dense `f32` tensors and tape-based reverse-mode automatic differentiation,
//! built from scratch as the numerical substrate for the SANE reproduction
//! (Zhao, Yao & Tu, *Search to Aggregate NEighborhood for Graph Neural
//! Network*, ICDE 2021).
//!
//! The engine is deliberately small and auditable:
//!
//! * [`Matrix`] — row-major dense matrix with parallel blocked GEMM.
//! * [`Csr`] — sparse operator for neighborhood aggregation (`A_norm · H`).
//! * [`Tape`] / [`VarStore`] — define-by-run Wengert list; every op computes
//!   its value eagerly and stores whatever its backward pass needs.
//! * Graph-specific ops — [`Tape::gather_rows`], segment reductions and
//!   [`Tape::segment_softmax`] implement message passing and graph attention
//!   without ever materialising dense `N x N` matrices.
//! * [`optim`] — SGD and Adam with decoupled weight decay.
//! * [`gradcheck`] — finite-difference verification used by the test suite.
//! * [`audit`] — static tape analysis: shape/arity checking against each
//!   op's declared metadata, dead-compute and dead-parameter detection,
//!   gradient-accumulation accounting and NaN/inf provenance.
//! * [`absint`] — abstract interpretation over recorded tapes: per-value
//!   shape (symbolic dims included), interval, sign and NaN/Inf-freedom
//!   via per-op transfer functions ([`Tape::absint`]).
//! * [`rewrite`] — graph-rewrite soundness: registered rewrites are
//!   statically checked against their abstract obligations and must pass
//!   a bitwise golden-equivalence harness at 1/2/4 worker threads.
//! * [`dataflow`] — liveness/interference analysis over the recorded tape
//!   and a verified memory-reuse plan ([`Tape::memplan`] /
//!   [`Tape::backward_measured`]): every op declares what its backward
//!   pass reads, the planner frees everything else as early as possible,
//!   and an independent checker proves the plan before any executor
//!   consumes it.
//! * [`parallel`] — the one threading policy every dense/sparse/segment
//!   kernel partitions through (`SANE_NUM_THREADS` to override).
//! * [`simd`] — pinned-reduction-order vectorized inner loops (8 fixed
//!   `mul_add` lanes, fixed combine tree) with scalar reference paths
//!   (`SANE_FORCE_SCALAR=1` or [`simd::with_scalar`] to select them).
//! * [`pool`] — thread-local buffer pool; tape values and gradients are
//!   recycled across steps so steady-state training allocates nothing.
//!
//! ## Example
//!
//! ```
//! use sane_autodiff::{Matrix, Tape, VarStore, optim::Adam};
//!
//! let mut store = VarStore::new();
//! let w = store.add("w", Matrix::scalar(0.0));
//! let mut opt = Adam::new(0.1, 0.0);
//! for _ in 0..100 {
//!     let mut tape = Tape::new(0);
//!     let x = tape.param(&store, w);
//!     let target = tape.scalar(2.0);
//!     let diff = tape.sub(x, target);
//!     let loss = tape.mul(diff, diff);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! assert!((store.value(w).as_scalar() - 2.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

mod matrix;
mod sparse;
mod tape;

pub mod absint;
pub mod analysis;
pub mod audit;
pub mod dataflow;
pub mod gradcheck;
pub mod metrics;
pub mod optim;
pub mod parallel;
pub mod pool;
pub mod rewrite;
pub mod simd;

/// Differentiable operations recorded on a [`Tape`].
pub mod ops {
    pub(crate) mod elementwise;
    pub(crate) mod graphops;
    pub(crate) mod linalg;
    pub(crate) mod loss;

    pub use graphops::Segments;
}

pub use absint::{AbsReport, AbsSummary, AbsVal, AbsViolation, Dim, Interval, Sign};
pub use analysis::{PartitionPlan, PlanError, ShadowFinding, ShadowLog, WriteRange};
pub use audit::{Arity, FanStats, Finding, FindingKind, Severity, TapeReport};
pub use dataflow::{GradReads, InputReads, MemPlan, MemPlanError, MemSummary, OpGraph};
pub use matrix::Matrix;
pub use ops::Segments;
pub use pool::PoolStats;
pub use rewrite::{
    builtin_rewrites, check_rewrite, golden_equivalence, Equivalence, Rewrite, RewriteCheck,
    RewriteError,
};
pub use sparse::Csr;
pub use tape::{glorot_init, uniform_init, ExecStats, Gradients, ParamId, Tape, Tensor, VarStore};
