//! CSR sparse matrices used for neighborhood aggregation (`A_norm · H`).
//!
//! Aggregators such as GCN multiply a fixed sparse operator (the normalised
//! adjacency) into a dense feature matrix every layer. The operator never
//! changes during training, so [`Csr`] caches its transpose — the backward
//! pass of `S·B` needs `Sᵀ·dC` — but builds it lazily on first use:
//! eval-only graphs and bench data generators never pay for it.
//!
//! `spmm` is row-partitioned across the shared worker scheme in
//! [`crate::parallel`]: each output row is produced whole by one worker
//! running the identical serial inner loop, so the result is bitwise
//! independent of the thread count.

use std::sync::OnceLock;

use crate::matrix::Matrix;
use crate::parallel::parallel_ranges;
use crate::pool;

/// Compressed-sparse-row `f32` matrix.
#[derive(Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Transpose, built at most once on first [`Csr::t`] call and cached
    /// for every later backward pass.
    transpose: OnceLock<Box<Csr>>,
}

impl Clone for Csr {
    fn clone(&self) -> Self {
        let transpose = OnceLock::new();
        if let Some(t) = self.transpose.get() {
            // Already paid for — carry it over rather than rebuilding lazily.
            let _ = transpose.set(t.clone());
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
            transpose,
        }
    }
}

impl Csr {
    /// Builds a CSR matrix from COO triplets. Duplicate entries are summed.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols, // lint:allow(lossy-cast) -- u32 index widens losslessly
                "coo entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // lint:allow(lossy-cast) -- u32 index widens losslessly
                // Merge duplicates within the current row. `indptr[r+1] > 0`
                // is what stops a duplicate column straddling a row boundary
                // from merging into the previous row: the first entry of row
                // `r` still sees `indptr[r+1] == 0`.
                if indptr[r as usize + 1] == indices.len() && last_c == c {
                    // lint:allow(lossy-cast) -- u32 index widens losslessly
                    *values.last_mut().expect("values parallel to indices") += v; // lint:allow(expect) -- values parallel to indices
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len(); // lint:allow(lossy-cast) -- u32 index widens losslessly
        }
        // Rows with no entries inherit the previous offset.
        for r in 1..=rows {
            if indptr[r] == 0 {
                indptr[r] = indptr[r - 1];
            }
        }
        Self { rows, cols, indptr, indices, values, transpose: OnceLock::new() }
    }

    /// Builds directly from CSR arrays (used by the transpose constructor and
    /// by graph code that already holds CSR adjacency).
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn from_csr_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr terminator");
        assert!(indices.iter().all(|&c| (c as usize) < cols), "column index out of bounds"); // lint:allow(lossy-cast) -- u32 index widens losslessly
        Self { rows, cols, indptr, indices, values, transpose: OnceLock::new() }
    }

    fn build_transpose(&self) -> Csr {
        let nnz = self.values.len();
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1; // lint:allow(lossy-cast) -- u32 index widens losslessly
        }
        for i in 1..=self.cols {
            indptr[i] += indptr[i - 1];
        }
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = indptr.clone();
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
                let pos = cursor[c];
                indices[pos] = r as u32; // lint:allow(lossy-cast) -- row count fits the u32 CSR domain
                values[pos] = self.values[k];
                cursor[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
            transpose: OnceLock::new(),
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// `(column indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// The transpose, built on first call and cached for all later calls.
    pub fn t(&self) -> &Csr {
        self.transpose.get_or_init(|| Box::new(self.build_transpose()))
    }

    /// Whether the cached transpose has been built yet.
    pub fn has_transpose(&self) -> bool {
        self.transpose.get().is_some()
    }

    /// Sparse·dense product `self · dense`.
    ///
    /// Output rows are partitioned across workers at row boundaries with
    /// nnz-weighted load balancing; each row is computed whole by one
    /// worker, so the result is bitwise identical at any thread count.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        crate::parallel::timed("spmm", || self.spmm_inner(dense))
    }

    fn spmm_inner(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm dimension mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let n = dense.cols();
        let mut out = pool::zeros(self.rows, n);
        let fl = crate::simd::flavour();
        let run = |rows: std::ops::Range<usize>, chunk: &mut [f32]| {
            let base = rows.start;
            for r in rows {
                let orow = &mut chunk[(r - base) * n..(r - base + 1) * n];
                for k in self.indptr[r]..self.indptr[r + 1] {
                    let c = self.indices[k] as usize; // lint:allow(lossy-cast) -- u32 index widens losslessly
                    let v = self.values[k];
                    fl.axpy(v, dense.row(c), orow);
                }
            }
        };
        // `balanced_cuts` invariants at the call site: indptr is the
        // cumulative-weight array, so it must be monotone and span every
        // row, or the partitioner would cut inside a row's nonzeros.
        debug_assert_eq!(self.indptr.len(), self.rows + 1, "indptr must have rows + 1 entries");
        debug_assert!(
            self.indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        parallel_ranges(&self.indptr, &|r| r * n, self.nnz() * n, out.data_mut(), run);
        out
    }

    /// Dense representation (tests / tiny graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(r, c as usize, out.get(r, c as usize) + v); // lint:allow(lossy-cast) -- u32 index widens losslessly
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::from_coo(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn from_coo_layout() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.indptr(), &[0, 2, 2, 4]);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(m.row(1).0.len(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = Csr::from_coo(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).1, &[3.5]);
    }

    #[test]
    fn duplicate_merge_stops_at_row_boundaries() {
        // Row 0 ends with column 1; row 1 *starts* with column 1. The merge
        // condition must not fold the first entry of row 1 into row 0.
        let m = Csr::from_coo(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 4.0), (1, 1, 8.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.indptr(), &[0, 2, 3, 3]);
        assert_eq!(m.row(0), (&[0u32, 1][..], &[1.0f32, 2.0][..]));
        // The within-row duplicate as the row's first entry still merges.
        assert_eq!(m.row(1), (&[1u32][..], &[12.0f32][..]));
    }

    #[test]
    fn duplicate_as_first_entry_after_empty_row_merges_within_its_row() {
        // Row 1 is empty, row 2's first two triplets are duplicates of each
        // other and share the column that closed row 0.
        let m = Csr::from_coo(3, 3, &[(0, 2, 1.0), (2, 2, 2.0), (2, 2, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.indptr(), &[0, 1, 1, 2]);
        assert_eq!(m.row(0), (&[2u32][..], &[1.0f32][..]));
        assert_eq!(m.row(2), (&[2u32][..], &[5.0f32][..]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        let _ = Csr::from_coo(2, 2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.t().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn transpose_is_lazy_and_cached() {
        let m = sample();
        assert!(!m.has_transpose(), "transpose must not be built at construction");
        let first = m.t() as *const Csr;
        assert!(m.has_transpose());
        assert_eq!(first, m.t() as *const Csr, "t() must return the same cached instance");
    }

    #[test]
    fn clone_preserves_a_built_transpose() {
        let fresh = sample().clone();
        assert!(!fresh.has_transpose(), "cloning an unbuilt transpose stays lazy");
        let m = sample();
        let _ = m.t();
        let cloned = m.clone();
        assert!(cloned.has_transpose(), "a paid-for transpose is carried by clone");
        assert_eq!(cloned.t().to_dense(), m.t().to_dense());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let d = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.spmm(&d), m.to_dense().matmul(&d));
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_coo(4, 4, &[(3, 3, 1.0)]);
        let d = Matrix::full(4, 1, 2.0);
        let out = m.spmm(&d);
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn from_csr_parts_roundtrip() {
        let m = sample();
        let m2 = Csr::from_csr_parts(
            m.rows(),
            m.cols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        );
        assert_eq!(m2.to_dense(), m.to_dense());
    }

    #[test]
    fn parallel_spmm_is_bitwise_equal_to_serial() {
        use crate::parallel::with_threads;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (rows, cols, feat) = (64, 48, 7);
        let triplets: Vec<(u32, u32, f32)> = (0..600)
            .map(|_| {
                (
                    rng.gen_range(0..rows as u32),
                    rng.gen_range(0..cols as u32),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let m = Csr::from_coo(rows, cols, &triplets);
        let d = Matrix::from_fn(cols, feat, |_, _| rng.gen_range(-1.0..1.0));
        let serial = with_threads(1, || m.spmm(&d));
        for threads in [2, 3, 4] {
            let par = with_threads(threads, || m.spmm(&d));
            assert_eq!(par, serial, "spmm must be bitwise identical at {threads} threads");
        }
    }
}
