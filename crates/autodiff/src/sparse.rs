//! CSR sparse matrices used for neighborhood aggregation (`A_norm · H`).
//!
//! Aggregators such as GCN multiply a fixed sparse operator (the normalised
//! adjacency) into a dense feature matrix every layer. The operator never
//! changes during training, so [`Csr`] eagerly caches its transpose — the
//! backward pass of `S·B` needs `Sᵀ·dC`.

use crate::matrix::Matrix;

/// Compressed-sparse-row `f32` matrix.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Transposed copy, built once at construction for backward passes.
    /// `None` only while the transpose itself is being constructed.
    transpose: Option<Box<Csr>>,
}

impl Csr {
    /// Builds a CSR matrix from COO triplets. Duplicate entries are summed.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "coo entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Merge duplicates within the current row.
                if indptr[r as usize + 1] == indices.len() && last_c == c {
                    *values.last_mut().expect("values parallel to indices") += v; // lint:allow(expect)
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Rows with no entries inherit the previous offset.
        for r in 1..=rows {
            if indptr[r] == 0 {
                indptr[r] = indptr[r - 1];
            }
        }
        let mut me = Self { rows, cols, indptr, indices, values, transpose: None };
        me.transpose = Some(Box::new(me.build_transpose()));
        me
    }

    /// Builds directly from CSR arrays (used by the transpose constructor and
    /// by graph code that already holds CSR adjacency).
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn from_csr_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr terminator");
        assert!(indices.iter().all(|&c| (c as usize) < cols), "column index out of bounds");
        let mut me = Self { rows, cols, indptr, indices, values, transpose: None };
        me.transpose = Some(Box::new(me.build_transpose()));
        me
    }

    fn build_transpose(&self) -> Csr {
        let nnz = self.values.len();
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            indptr[i] += indptr[i - 1];
        }
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = indptr.clone();
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let pos = cursor[c];
                indices[pos] = r as u32;
                values[pos] = self.values[k];
                cursor[c] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values, transpose: None }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// `(column indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// The cached transpose.
    pub fn t(&self) -> &Csr {
        self.transpose.as_deref().expect("transpose is built at construction") // lint:allow(expect)
    }

    /// Sparse·dense product `self · dense`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm dimension mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let v = self.values[k];
                let drow = dense.row(c);
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
        out
    }

    /// Dense representation (tests / tiny graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(r, c as usize, out.get(r, c as usize) + v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::from_coo(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn from_coo_layout() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.indptr(), &[0, 2, 2, 4]);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(m.row(1).0.len(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = Csr::from_coo(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).1, &[3.5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        let _ = Csr::from_coo(2, 2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.t().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let d = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.spmm(&d), m.to_dense().matmul(&d));
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_coo(4, 4, &[(3, 3, 1.0)]);
        let d = Matrix::full(4, 1, 2.0);
        let out = m.spmm(&d);
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn from_csr_parts_roundtrip() {
        let m = sample();
        let m2 = Csr::from_csr_parts(
            m.rows(),
            m.cols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        );
        assert_eq!(m2.to_dense(), m.to_dense());
    }
}
