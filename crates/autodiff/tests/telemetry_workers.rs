//! Cross-thread telemetry proofs that need real OS threads.
//!
//! The telemetry crate's own tests exercise attach/detach on a single
//! thread (the raw-thread audit confines `std::thread` to
//! `sane_autodiff::parallel`), so the genuinely concurrent contracts are
//! proven here through [`sane_autodiff::parallel::run_workers`]:
//!
//! * four workers writing spans/events into one trace interleave without
//!   breaking the strict validator (monotone `t_ns`, balanced spans, no
//!   orphan parents), and
//! * histogram bucket counts for a fixed fixture are bitwise identical
//!   whether 1, 2 or 4 workers recorded it — the merge is
//!   order-independent even when a racing work queue scrambles which
//!   worker sees which sample.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use sane_autodiff::parallel::run_workers;
use sane_telemetry::diff::{self, NoiseModel};
use sane_telemetry::{trace, MemoryBuffer, Recorder, Value};

#[test]
fn four_attached_workers_interleave_into_one_valid_trace() {
    let buf = MemoryBuffer::default();
    let guard = Recorder::new("workers-interleaved")
        .with_memory(buf.clone())
        .with_kernel_timing(true)
        .install();
    let root = sane_telemetry::span("test.root");
    let handle = sane_telemetry::handle().expect("recorder is installed");

    // All four workers hold their span open at the barrier, so the trace
    // must contain four simultaneously-open worker spans.
    let barrier = Barrier::new(4);
    run_workers(4, |w| {
        let _scope = handle.attach(format!("w{w}"));
        let span = sane_telemetry::span("test.worker");
        sane_telemetry::info("test.worker.step", &[("idx", Value::UInt(w as u64))]);
        sane_telemetry::record_latency("test.latency.ns", (w as f64 + 1.0) * 100.0);
        barrier.wait();
        drop(span);
    });

    drop(root);
    drop(guard);
    let text = buf.borrow().clone();
    let summary = trace::summarize(&text).expect("interleaved trace must validate strictly");

    let mut threads = summary.threads.clone();
    threads.sort();
    assert_eq!(threads, ["w0", "w1", "w2", "w3"]);

    let worker_spans =
        summary.spans.iter().find(|s| s.name == "test.worker").expect("worker spans recorded");
    assert_eq!(worker_spans.count, 4);

    let hist = summary.hists.get("test.latency.ns").expect("merged worker latencies");
    assert_eq!(hist.count, 4);
    assert_eq!(hist.dropped, 0);
    assert!(hist.max >= 400.0, "largest worker sample survives the merge");

    // Concurrency proof from the file order itself: every worker span
    // opens before any of them closes (the barrier guarantees it), and
    // each one parents to the owner's root span.
    let mut open_before_first_close = 0usize;
    let mut root_id = None;
    for line in text.lines() {
        if line.contains("\"kind\":\"span_open\"") && line.contains("\"name\":\"test.root\"") {
            let rest = line.split("\"id\":").nth(1).expect("span_open has an id");
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            root_id = Some(digits);
        }
        if line.contains("\"name\":\"test.worker\"") {
            if line.contains("\"kind\":\"span_close\"") {
                break;
            }
            if line.contains("\"kind\":\"span_open\"") {
                open_before_first_close += 1;
                let root_id = root_id.as_deref().expect("root opens before workers");
                assert!(
                    line.contains(&format!("\"parent\":{root_id}")),
                    "worker span must parent to the owner's span: {line}"
                );
            }
        }
    }
    assert_eq!(open_before_first_close, 4, "all worker spans open before the first closes");
}

#[test]
fn histogram_buckets_are_identical_across_1_2_4_workers() {
    // Deterministic fixture: a fixed multiset of "latencies" spread over
    // several octaves. Workers race over an atomic queue, so *which*
    // worker records a value is nondeterministic — the merged buckets
    // must not care.
    let fixture: Vec<f64> =
        (0..10_000u64).map(|i| (i.wrapping_mul(2_654_435_761) % 5_000_000) as f64).collect();

    let mut runs: Vec<BTreeMap<u16, u64>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let guard = Recorder::new("bucket-determinism").install();
        let handle = sane_telemetry::handle().expect("recorder is installed");
        let next = AtomicUsize::new(0);
        run_workers(workers, |w| {
            let _scope = handle.attach(format!("w{w}"));
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(v) = fixture.get(i) else { break };
                sane_telemetry::record_latency("fixture.ns", *v);
            }
        });
        let merged = handle.merged_metrics();
        let hist = merged.hists().get("fixture.ns").expect("fixture stream recorded");
        assert_eq!(hist.count(), fixture.len() as u64);
        assert_eq!(hist.dropped(), 0);
        runs.push(hist.buckets().clone());
        drop(guard);
    }

    assert_eq!(runs[0], runs[1], "1-worker and 2-worker bucket counts diverged");
    assert_eq!(runs[0], runs[2], "1-worker and 4-worker bucket counts diverged");
}

/// Records one span-free trace: `workers` attached threads race over an
/// atomic queue of integer kernel stamps, each booking its share with
/// [`sane_telemetry::kernel_sample`]. Only the merged metrics carry
/// timing, so the resulting profile is a pure function of the stamp
/// multiset — no wall-clock anywhere.
fn record_kernel_trace(workers: usize, stamps: &[u64]) -> String {
    let buf = MemoryBuffer::default();
    let guard =
        Recorder::new("kernels").with_memory(buf.clone()).with_kernel_timing(true).install();
    let handle = sane_telemetry::handle().expect("recorder is installed");
    let next = AtomicUsize::new(0);
    run_workers(workers, |w| {
        let _scope = handle.attach(format!("w{w}"));
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(ns) = stamps.get(i) else { break };
            sane_telemetry::kernel_sample("spmm", *ns);
        }
    });
    sane_telemetry::flush_metrics();
    drop(guard);
    let text = buf.borrow().clone();
    text
}

#[test]
fn attribution_is_bitwise_identical_across_1_2_4_worker_traces() {
    // Fixed stamp multisets: the candidate's kernel runs exactly 2× the
    // baseline's. Which worker books which stamp is racy by design — the
    // diff and the attribution built from it must not care.
    let base_stamps: Vec<u64> = (0..512u64).map(|i| 40_000 + (i * 977) % 30_000).collect();
    let cand_stamps: Vec<u64> = base_stamps.iter().map(|ns| ns * 2).collect();

    let base_prof = sane_telemetry::profile::profile(&record_kernel_trace(1, &base_stamps))
        .expect("baseline trace profiles");
    let noise = NoiseModel::from_window(&[2.0, 2.02, 1.98, 2.0, 2.0], 0.05);

    let mut rendered: Vec<String> = Vec::new();
    for workers in [1usize, 2, 4] {
        let cand_prof =
            sane_telemetry::profile::profile(&record_kernel_trace(workers, &cand_stamps))
                .expect("candidate trace profiles");
        let d = diff::diff(&base_prof, &cand_prof);
        let attr = diff::attribute(&d, "spmm_forward.ms_1t", (2.0, 1.0), noise, 8);

        let top = attr.top().expect("the 2× kernel is a suspect");
        assert_eq!(top.stack.last().map(String::as_str), Some("kernel:spmm"));
        assert!(top.significant, "a 2× step dwarfs the fixture noise window");
        let expected_ms = base_stamps.iter().sum::<u64>() as f64 / 1e6;
        assert!(
            (top.delta_ms - expected_ms).abs() < 1e-9,
            "kernel delta is the injected slowdown: {} vs {expected_ms}",
            top.delta_ms
        );
        rendered.push(attr.to_json().to_json());
    }

    assert_eq!(rendered[0], rendered[1], "1-worker and 2-worker attributions diverged");
    assert_eq!(rendered[0], rendered[2], "1-worker and 4-worker attributions diverged");
}
