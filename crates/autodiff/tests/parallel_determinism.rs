//! Bitwise determinism of the parallel kernels.
//!
//! Every parallel kernel partitions work at item boundaries (output rows,
//! CSR rows, segments) and runs the identical serial inner loop inside each
//! chunk, so the result must be *bitwise* equal for any worker count. These
//! tests pin that contract at 1, 2, 3 and 4 threads, forcing the parallel
//! path even though the matrices are far below the work threshold.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sane_autodiff::parallel::with_threads;
use sane_autodiff::{pool, uniform_init, Csr, Matrix, Segments, Tape, VarStore};

const THREADS: [usize; 4] = [1, 2, 3, 4];

fn seeded(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    uniform_init(rows, cols, 1.0, &mut rng)
}

fn random_csr(seed: u64, rows: usize, cols: usize, nnz: usize) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let triplets: Vec<(u32, u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows as u32),
                rng.gen_range(0..cols as u32),
                rng.gen_range(-1.0f32..1.0),
            )
        })
        .collect();
    Csr::from_coo(rows, cols, &triplets)
}

/// Two sparse hops + dense matmul, forward and backward: exercises the
/// parallel `spmm`, its transpose path, and `gemm` under one tape.
fn spmm_pipeline(threads: usize) -> (Vec<f32>, Vec<f32>) {
    with_threads(threads, || {
        let mut store = VarStore::new();
        let p = store.add("x", seeded(7, 40, 9));
        let w = store.add("w", seeded(8, 9, 5));
        let a = Arc::new(random_csr(11, 40, 40, 320));
        let mut tape = Tape::new(0);
        let x = tape.param(&store, p);
        let wt = tape.param(&store, w);
        let h = tape.spmm(&a, x);
        let h2 = tape.spmm(&a, h);
        let out = tape.matmul(h2, wt);
        let fwd = tape.value(out).data().to_vec();
        let loss = tape.sum_all(out);
        let grads = tape.backward(loss);
        let mut g = grads.get(p).unwrap().data().to_vec();
        g.extend_from_slice(grads.get(w).unwrap().data());
        (fwd, g)
    })
}

/// The full attention-style segment pipeline (gather, sum, mean, max,
/// softmax, column broadcast) with ragged segments including empty ones.
fn segment_pipeline(threads: usize) -> (Vec<f32>, Vec<f32>) {
    with_threads(threads, || {
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = 30usize;
        let d = 6usize;
        let lengths: Vec<usize> = (0..nodes).map(|_| rng.gen_range(0..6)).collect();
        let total: usize = lengths.iter().sum();
        let idx =
            Arc::new((0..total).map(|_| rng.gen_range(0..nodes as u32)).collect::<Vec<u32>>());
        let segs = Arc::new(Segments::from_lengths(&lengths));

        let mut store = VarStore::new();
        let p = store.add("x", seeded(5, nodes, d));
        let ps = store.add("scores", seeded(9, nodes, 1));
        let mut tape = Tape::new(0);
        let x = tape.param(&store, p);
        let sc = tape.param(&store, ps);
        let msgs = tape.gather_rows(x, &idx);
        let ssum = tape.segment_sum(msgs, &segs);
        let smean = tape.segment_mean(msgs, &segs);
        let smax = tape.segment_max(msgs, &segs);
        let scores = tape.gather_rows(sc, &idx);
        let alpha = tape.segment_softmax(scores, &segs);
        let weighted = tape.mul_col_broadcast(msgs, alpha);
        let satt = tape.segment_sum(weighted, &segs);
        let scores2 = tape.gather_rows(sc, &idx);
        let fused = tape.segment_attention(scores2, msgs, &segs);
        let scores3 = tape.gather_rows(sc, &idx);
        let gfused = tape.gather_attention(scores3, x, &idx, &segs);
        let t1 = tape.add(ssum, smean);
        let t2 = tape.add(smax, satt);
        let t3 = tape.add(t2, fused);
        let t4 = tape.add(t3, gfused);
        let out = tape.add(t1, t4);
        let fwd = tape.value(out).data().to_vec();
        let loss = tape.sum_all(out);
        let grads = tape.backward(loss);
        let mut g = grads.get(p).unwrap().data().to_vec();
        g.extend_from_slice(grads.get(ps).unwrap().data());
        (fwd, g)
    })
}

fn assert_bitwise_eq(label: &str, serial: &[f32], parallel: &[f32], threads: usize) {
    assert_eq!(serial.len(), parallel.len(), "{label}: length mismatch at {threads} threads");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: element {i} differs at {threads} threads: {a} vs {b}"
        );
    }
}

#[test]
fn spmm_forward_and_backward_are_bitwise_equal_across_thread_counts() {
    let (fwd1, grad1) = spmm_pipeline(1);
    for threads in THREADS {
        let (fwd, grad) = spmm_pipeline(threads);
        assert_bitwise_eq("spmm forward", &fwd1, &fwd, threads);
        assert_bitwise_eq("spmm backward", &grad1, &grad, threads);
    }
}

#[test]
fn segment_kernels_are_bitwise_equal_across_thread_counts() {
    let (fwd1, grad1) = segment_pipeline(1);
    for threads in THREADS {
        let (fwd, grad) = segment_pipeline(threads);
        assert_bitwise_eq("segment forward", &fwd1, &fwd, threads);
        assert_bitwise_eq("segment backward", &grad1, &grad, threads);
    }
}

/// The fused attention op and the SIMD-backed dense kernels, forward and
/// backward, at every thread count — in both the vectorized and the
/// scalar-reference mode. Each mode must be bitwise self-consistent across
/// thread counts; the two modes are *not* compared to each other (their
/// reduction orders legitimately differ — see the `simd-lane-drift`
/// determinism case).
#[test]
fn fused_attention_and_simd_kernels_are_bitwise_equal_across_thread_counts() {
    let pipeline = |threads: usize| {
        with_threads(threads, || {
            let segs = Arc::new(Segments::from_lengths(&[3, 0, 5, 2, 4, 1]));
            let total = segs.total_len();
            let mut store = VarStore::new();
            let pm = store.add("m", seeded(41, total, 9));
            let ps = store.add("s", seeded(42, total, 1));
            let pw = store.add("w", seeded(43, 9, 6));
            let mut tape = Tape::new(0);
            let m = tape.param(&store, pm);
            let s = tape.param(&store, ps);
            let w = tape.param(&store, pw);
            let att = tape.segment_attention(s, m, &segs);
            let out = tape.matmul(att, w); // gemm fwd, at_b/a_bt in backward
            let fwd = tape.value(out).data().to_vec();
            let loss = tape.sum_all(out);
            let grads = tape.backward(loss);
            let mut g = grads.get(pm).unwrap().data().to_vec();
            g.extend_from_slice(grads.get(ps).unwrap().data());
            g.extend_from_slice(grads.get(pw).unwrap().data());
            (fwd, g)
        })
    };
    for scalar in [false, true] {
        let mode = if scalar { "scalar" } else { "vectorized" };
        let run = |threads: usize| {
            if scalar {
                sane_autodiff::simd::with_scalar(|| pipeline(threads))
            } else {
                pipeline(threads)
            }
        };
        let (fwd1, grad1) = run(1);
        for threads in THREADS {
            let (fwd, grad) = run(threads);
            assert_bitwise_eq(&format!("fused attention fwd ({mode})"), &fwd1, &fwd, threads);
            assert_bitwise_eq(&format!("fused attention bwd ({mode})"), &grad1, &grad, threads);
        }
    }
}

#[test]
fn transpose_spmm_is_bitwise_equal_across_thread_counts() {
    let a = random_csr(17, 33, 21, 240);
    let x = seeded(19, 33, 7);
    let serial = with_threads(1, || a.t().spmm(&x));
    for threads in THREADS {
        let out = with_threads(threads, || a.t().spmm(&x));
        assert_bitwise_eq("csr.t().spmm", serial.data(), out.data(), threads);
    }
}

/// Steady-state training steps must be served entirely from the buffer
/// pool: after a warm-up, pool misses stop growing (i.e. no per-step heap
/// growth from tape values or gradients).
#[test]
fn pool_reaches_steady_state_across_training_steps() {
    pool::reset();
    let a = Arc::new(random_csr(21, 24, 24, 140));
    let mut store = VarStore::new();
    let p = store.add("w", seeded(2, 24, 4));
    let step = |store: &VarStore| {
        let mut tape = Tape::new(0);
        let x = tape.param(store, p);
        let h = tape.spmm(&a, x);
        let r = tape.relu(h);
        let loss = tape.mean_all(r);
        let grads = tape.backward(loss);
        grads.recycle();
    };
    for _ in 0..8 {
        step(&store);
    }
    let before = pool::stats();
    for _ in 0..32 {
        step(&store);
    }
    let after = pool::stats();
    assert_eq!(
        after.misses, before.misses,
        "steady-state steps must allocate nothing: {before} -> {after}"
    );
    assert!(after.hits > before.hits, "steady-state steps should reuse pooled buffers");
}
