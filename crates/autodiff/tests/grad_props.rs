//! Property-based gradient verification: every differentiable op's
//! analytic backward pass is checked against central finite differences on
//! random shapes and values.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::gradcheck::check_gradient;
use sane_autodiff::parallel::with_threads;
use sane_autodiff::{uniform_init, Csr, Matrix, Segments, Tape, Tensor, VarStore};

const TOL: f32 = 0.02;

fn input(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    uniform_init(rows, cols, 0.9, &mut rng)
}

/// Runs a gradient check on a fresh store holding a single `rows x cols`
/// parameter fed through `f`.
fn check(
    seed: u64,
    rows: usize,
    cols: usize,
    f: impl FnMut(&mut Tape, &VarStore, Tensor) -> Tensor,
) -> f32 {
    let mut store = VarStore::new();
    let p = store.add("x", input(seed, rows, cols));
    check_gradient(&mut store, p, 1e-2, f).max_rel_err
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn elementwise_chain_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..6) {
        let err = check(seed, rows, cols, |t, _, x| {
            let a = t.tanh(x);
            let b = t.sigmoid(a);
            let c = t.mul(a, b);
            let d = t.scale(c, 1.5);
            let e = t.add_scalar(d, 0.3);
            t.mean_all(e)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn smooth_activations_grads(seed in 0u64..10_000, n in 1usize..8) {
        // elu/tanh/sigmoid are smooth; relu/leaky/abs have kinks that the
        // random draw avoids with high probability at |x| >= 0.05.
        let err = check(seed, 2, n, |t, _, x| {
            let shifted = t.add_scalar(x, 2.0); // keep relu away from the kink
            let a = t.relu(shifted);
            let b = t.elu(a);
            let c = t.leaky_relu(b, 0.2);
            t.sum_all(c)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn matmul_grads(seed in 0u64..10_000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let other = input(seed ^ 1, k, n);
        let err = check(seed, m, k, move |t, _, x| {
            let b = t.constant(other.clone());
            let c = t.matmul(x, b);
            t.mean_all(c)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn matmul_rhs_grads(seed in 0u64..10_000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let other = input(seed ^ 2, m, k);
        let err = check(seed, k, n, move |t, _, x| {
            let a = t.constant(other.clone());
            let c = t.matmul(a, x);
            t.mean_all(c)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn spmm_grads(seed in 0u64..10_000, n in 2usize..6, d in 1usize..4) {
        let sparse = Arc::new(Csr::from_coo(
            n,
            n,
            &(0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 0.5 + i as f32 * 0.1)).collect::<Vec<_>>(),
        ));
        let err = check(seed, n, d, move |t, _, x| {
            let c = t.spmm(&sparse, x);
            t.sum_all(c)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn softmax_rows_grads(seed in 0u64..10_000, rows in 1usize..4, cols in 2usize..6) {
        let probe = input(seed ^ 3, rows, cols);
        let err = check(seed, rows, cols, move |t, _, x| {
            let p = t.softmax_rows(x);
            // Weighted probe makes the gradient non-degenerate.
            let w = t.constant(probe.clone());
            let m = t.mul(p, w);
            t.sum_all(m)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn log_softmax_grads(seed in 0u64..10_000, cols in 2usize..6) {
        let probe = input(seed ^ 4, 2, cols);
        let err = check(seed, 2, cols, move |t, _, x| {
            let p = t.log_softmax_rows(x);
            let w = t.constant(probe.clone());
            let m = t.mul(p, w);
            t.mean_all(m)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn concat_slice_grads(seed in 0u64..10_000, rows in 1usize..4, a in 1usize..4, b in 1usize..4) {
        let right = input(seed ^ 5, rows, b);
        let err = check(seed, rows, a, move |t, _, x| {
            let r = t.constant(right.clone());
            let cat = t.concat_cols(&[x, r]);
            let sl = t.slice_cols(cat, 0, a + b.min(1));
            t.sum_all(sl)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn gather_segment_grads(seed in 0u64..10_000, d in 1usize..4) {
        // 3 nodes, messages: [0,1 -> seg0], [1,2,0 -> seg1], [2 -> seg2]
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2]);
        let segs = Arc::new(Segments::from_lengths(&[2, 3, 1]));
        let err = check(seed, 3, d, move |t, _, x| {
            let g = t.gather_rows(x, &idx);
            let s = t.segment_sum(g, &segs);
            let m = t.segment_mean(g, &segs);
            let combined = t.add(s, m);
            t.mean_all(combined)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn segment_softmax_attention_grads(seed in 0u64..10_000) {
        // Full attention pattern: scores -> segment softmax -> weighted sum.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0]);
        let segs = Arc::new(Segments::from_lengths(&[2, 2, 1]));
        let feats = input(seed ^ 6, 3, 3);
        let err = check(seed, 3, 1, move |t, _, x| {
            let scores = t.gather_rows(x, &idx);
            let alpha = t.segment_softmax(scores, &segs);
            let f = t.constant(feats.clone());
            let msgs = t.gather_rows(f, &idx);
            let weighted = t.mul_col_broadcast(msgs, alpha);
            let out = t.segment_sum(weighted, &segs);
            t.mean_all(out)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn mul_col_broadcast_weight_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..4) {
        let feats = input(seed ^ 7, rows, cols);
        let err = check(seed, rows, 1, move |t, _, x| {
            let f = t.constant(feats.clone());
            let w = t.mul_col_broadcast(f, x);
            t.sum_all(w)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn cross_entropy_grads(seed in 0u64..10_000, n in 2usize..5, c in 2usize..5) {
        let labels = Arc::new((0..n as u32).map(|i| i % c as u32).collect::<Vec<_>>());
        let rows = Arc::new((0..n as u32).collect::<Vec<_>>());
        let err = check(seed, n, c, move |t, _, x| t.cross_entropy(x, &labels, &rows));
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn bce_grads(seed in 0u64..10_000, n in 1usize..4, c in 1usize..5) {
        let targets = Arc::new(Matrix::from_fn(n, c, |r, cc| ((r + cc) % 2) as f32));
        let rows = Arc::new((0..n as u32).collect::<Vec<_>>());
        let err = check(seed, n, c, move |t, _, x| t.bce_with_logits(x, &targets, &rows));
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn add_bias_and_scalar_tensor_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..4) {
        let base = input(seed ^ 8, rows, cols);
        // Gradient w.r.t. the bias row.
        let err = check(seed, 1, cols, move |t, _, x| {
            let b = t.constant(base.clone());
            let y = t.add_bias(b, x);
            t.mean_all(y)
        });
        prop_assert!(err < TOL, "rel err {err}");
        // Gradient w.r.t. a 1x1 gate.
        let base2 = input(seed ^ 9, rows, cols);
        let err = check(seed ^ 10, 1, 1, move |t, _, x| {
            let b = t.constant(base2.clone());
            let y = t.mul_scalar_tensor(b, x);
            t.sum_all(y)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn sub_and_abs_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..4) {
        let other = input(seed ^ 11, rows, cols);
        // abs has a kink at 0: inputs are in (-1.8, 1.8), so shifting by
        // +/-3 keeps every element at least 1.2 away from it.
        let err = check(seed, rows, cols, move |t, _, x| {
            let o = t.constant(other.clone());
            let d = t.sub(x, o);
            let pos_in = t.add_scalar(d, 3.0);
            let pos = t.abs(pos_in);
            let neg_in = t.add_scalar(d, -3.0);
            let neg_full = t.abs(neg_in);
            // Weight one branch so +1/-1 gradients do not cancel to zero.
            let neg = t.scale(neg_full, 0.5);
            let s = t.add(pos, neg);
            t.mean_all(s)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn row_sum_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..4) {
        let probe = input(seed ^ 12, rows, cols);
        let err = check(seed, rows, cols, move |t, _, x| {
            let w = t.constant(probe.clone());
            let m = t.mul(x, w);
            let rs = t.row_sum(m);
            t.sum_all(rs)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn dropout_grads(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..4) {
        // check_gradient rebuilds every evaluation on `Tape::new(0)`, so
        // the dropout mask is identical across the analytic pass and both
        // finite-difference probes; the check is exact despite the op
        // being stochastic across differently seeded tapes.
        let probe = input(seed ^ 13, rows, cols);
        let err = check(seed, rows, cols, move |t, _, x| {
            let d = t.dropout(x, 0.4);
            let w = t.constant(probe.clone());
            let m = t.mul(d, w);
            t.sum_all(m)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn lstm_cell_composite_grads(seed in 0u64..10_000) {
        // The LSTM layer aggregator's cell, rebuilt from primitive ops:
        // two timesteps, gradient checked w.r.t. the input projection.
        let d = 2usize;
        let n = 3usize;
        let x0 = input(seed ^ 14, n, d);
        let x1 = input(seed ^ 15, n, d);
        let wh = input(seed ^ 16, d, 4 * d);
        let bias = input(seed ^ 17, 1, 4 * d);
        let err = check(seed, d, 4 * d, move |t, _, wx| {
            let wh_t = t.constant(wh.clone());
            let b = t.constant(bias.clone());
            let mut h = t.constant(Matrix::zeros(n, d));
            let mut c = t.constant(Matrix::zeros(n, d));
            for xm in [&x0, &x1] {
                let xt = t.constant((*xm).clone());
                let zx = t.matmul(xt, wx);
                let zh = t.matmul(h, wh_t);
                let zsum = t.add(zx, zh);
                let z = t.add_bias(zsum, b);
                let iz = t.slice_cols(z, 0, d);
                let i = t.sigmoid(iz);
                let fz = t.slice_cols(z, d, 2 * d);
                let f = t.sigmoid(fz);
                let oz = t.slice_cols(z, 2 * d, 3 * d);
                let o = t.sigmoid(oz);
                let gz = t.slice_cols(z, 3 * d, 4 * d);
                let g = t.tanh(gz);
                let keep = t.mul(f, c);
                let write = t.mul(i, g);
                c = t.add(keep, write);
                let ca = t.tanh(c);
                h = t.mul(o, ca);
            }
            t.mean_all(h)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }

    #[test]
    fn spmm_grads_parallel(seed in 0u64..10_000, n in 2usize..6, d in 1usize..4) {
        // Same op chain as `spmm_grads`, but with the parallel kernel path
        // forced at 2 and 4 workers: the analytic backward must stay within
        // finite-difference tolerance regardless of thread count.
        let sparse = Arc::new(Csr::from_coo(
            n,
            n,
            &(0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 0.5 + i as f32 * 0.1)).collect::<Vec<_>>(),
        ));
        for threads in [2usize, 4] {
            let sparse = Arc::clone(&sparse);
            let err = with_threads(threads, || check(seed, n, d, move |t, _, x| {
                let c = t.spmm(&sparse, x);
                t.sum_all(c)
            }));
            prop_assert!(err < TOL, "rel err {err} at {threads} threads");
        }
    }

    #[test]
    fn segment_attention_grads_parallel(seed in 0u64..10_000) {
        // The attention pipeline of `segment_softmax_attention_grads` plus
        // sum/mean/max heads, gradient-checked under forced 2- and 4-way
        // parallel segment kernels.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2]);
        let segs = Arc::new(Segments::from_lengths(&[2, 3, 1]));
        let feats = input(seed ^ 20, 3, 3);
        for threads in [2usize, 4] {
            let idx = Arc::clone(&idx);
            let segs = Arc::clone(&segs);
            let feats = feats.clone();
            let err = with_threads(threads, || check(seed, 3, 1, move |t, _, x| {
                let scores = t.gather_rows(x, &idx);
                let alpha = t.segment_softmax(scores, &segs);
                let f = t.constant(feats.clone());
                let msgs = t.gather_rows(f, &idx);
                let weighted = t.mul_col_broadcast(msgs, alpha);
                let s = t.segment_sum(weighted, &segs);
                let m = t.segment_mean(weighted, &segs);
                let combined = t.add(s, m);
                t.mean_all(combined)
            }));
            prop_assert!(err < TOL, "rel err {err} at {threads} threads");
        }
    }

    #[test]
    fn segment_attention_fused_score_grads(seed in 0u64..10_000, d in 1usize..4) {
        // Fused softmax + weighted aggregation, gradient-checked w.r.t. the
        // scores — the path through the op-private alpha column — on both
        // the vectorized and the scalar reference kernels.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0]);
        let segs = Arc::new(Segments::from_lengths(&[2, 0, 2, 1]));
        let feats = input(seed ^ 21, 3, d);
        let case = move |t: &mut Tape, _: &VarStore, x: Tensor| {
            let scores = t.gather_rows(x, &idx);
            let f = t.constant(feats.clone());
            let msgs = t.gather_rows(f, &idx);
            let out = t.segment_attention(scores, msgs, &segs);
            t.mean_all(out)
        };
        let err = check(seed, 3, 1, case.clone());
        prop_assert!(err < TOL, "rel err {err} (vectorized)");
        let err = sane_autodiff::simd::with_scalar(|| check(seed, 3, 1, case));
        prop_assert!(err < TOL, "rel err {err} (scalar reference)");
    }

    #[test]
    fn segment_attention_fused_message_grads(seed in 0u64..10_000, d in 1usize..4) {
        // Same op, gradient-checked w.r.t. the message features.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2]);
        let segs = Arc::new(Segments::from_lengths(&[2, 3, 1]));
        let scores = input(seed ^ 22, 6, 1);
        let case = move |t: &mut Tape, _: &VarStore, x: Tensor| {
            let s = t.constant(scores.clone());
            let msgs = t.gather_rows(x, &idx);
            let out = t.segment_attention(s, msgs, &segs);
            t.mean_all(out)
        };
        let err = check(seed, 3, d, case.clone());
        prop_assert!(err < TOL, "rel err {err} (vectorized)");
        let err = sane_autodiff::simd::with_scalar(|| check(seed, 3, d, case));
        prop_assert!(err < TOL, "rel err {err} (scalar reference)");
    }

    #[test]
    fn segment_attention_fused_grads_parallel(seed in 0u64..10_000, d in 1usize..4) {
        // The fused op under forced 2- and 4-way parallel segment kernels.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2]);
        let segs = Arc::new(Segments::from_lengths(&[2, 3, 1]));
        let feats = input(seed ^ 23, 3, d);
        for threads in [2usize, 4] {
            let idx = Arc::clone(&idx);
            let segs = Arc::clone(&segs);
            let feats = feats.clone();
            let err = with_threads(threads, || check(seed, 3, 1, move |t, _, x| {
                let scores = t.gather_rows(x, &idx);
                let f = t.constant(feats.clone());
                let msgs = t.gather_rows(f, &idx);
                let out = t.segment_attention(scores, msgs, &segs);
                t.mean_all(out)
            }));
            prop_assert!(err < TOL, "rel err {err} at {threads} threads");
        }
    }

    #[test]
    fn gather_attention_grads(seed in 0u64..10_000, d in 1usize..4) {
        // The gather-fused attention op, gradient-checked w.r.t. the node
        // features (the path through both the in-place row reads of the
        // forward pass and the direct scatter of the backward pass), on the
        // vectorized and scalar reference kernels. Repeated indices
        // exercise scatter collisions.
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2]);
        let segs = Arc::new(Segments::from_lengths(&[2, 3, 1]));
        let scores = input(seed ^ 24, 6, 1);
        let case = move |t: &mut Tape, _: &VarStore, x: Tensor| {
            let s = t.constant(scores.clone());
            let out = t.gather_attention(s, x, &idx, &segs);
            t.mean_all(out)
        };
        let err = check(seed, 3, d, case.clone());
        prop_assert!(err < TOL, "rel err {err} (vectorized)");
        let err = sane_autodiff::simd::with_scalar(|| check(seed, 3, d, case));
        prop_assert!(err < TOL, "rel err {err} (scalar reference)");
    }

    #[test]
    fn gather_attention_score_grads_parallel(seed in 0u64..10_000, d in 1usize..4) {
        // Same op, gradient-checked w.r.t. the scores under forced 2- and
        // 4-way parallel forward kernels (the backward scatter is serial).
        let idx = Arc::new(vec![0u32, 1, 1, 2, 0]);
        let segs = Arc::new(Segments::from_lengths(&[2, 0, 2, 1]));
        let feats = input(seed ^ 25, 3, d);
        for threads in [2usize, 4] {
            let idx = Arc::clone(&idx);
            let segs = Arc::clone(&segs);
            let feats = feats.clone();
            let err = with_threads(threads, || check(seed, 3, 1, move |t, _, x| {
                let scores = t.gather_rows(x, &idx);
                let f = t.constant(feats.clone());
                let out = t.gather_attention(scores, f, &idx, &segs);
                t.mean_all(out)
            }));
            prop_assert!(err < TOL, "rel err {err} at {threads} threads");
        }
    }

    #[test]
    fn max_stack_and_segment_max_grads(seed in 0u64..10_000, cols in 1usize..4) {
        // Kinked ops: pick inputs with distinct values so perturbation
        // does not flip the argmax.
        // Spaced by 10 and straddling the input range, so some positions
        // are won by the parameter and none flip under ±0.01 perturbation.
        let other = Matrix::from_fn(3, cols, |r, c| (r * cols + c) as f32 * 10.0 - 15.0);
        let err = check(seed, 3, cols, move |t, _, x| {
            let o = t.constant(other.clone());
            let m = t.max_stack(&[x, o]);
            let idx = Arc::new(vec![0u32, 1, 2, 0]);
            let segs = Arc::new(Segments::from_lengths(&[2, 2]));
            let g = t.gather_rows(m, &idx);
            let s = t.segment_max(g, &segs);
            t.sum_all(s)
        });
        prop_assert!(err < TOL, "rel err {err}");
    }
}

/// Pins the vectorized kernels against the scalar reference paths: the
/// 8-lane `mul_add` tree is allowed to round differently (that drift is
/// what the `simd-lane-drift` determinism case observes), but it must stay
/// within a tight relative bound of the scalar left-fold on every kernel
/// the `simd` module backs — forward and backward.
#[test]
fn simd_kernels_stay_within_tolerance_of_scalar_reference() {
    let idx = Arc::new(vec![0u32, 1, 1, 2, 0, 2, 3, 3]);
    let segs = Arc::new(Segments::from_lengths(&[2, 3, 0, 3]));
    let sparse = Arc::new(Csr::from_coo(
        4,
        4,
        &[(0, 1, 0.7), (1, 0, -0.3), (1, 2, 1.1), (2, 3, 0.5), (3, 3, -0.9)],
    ));
    let feats = input(31, 4, 9); // odd width exercises the unroll tail
    let weights = input(32, 9, 5);
    let scores = input(33, 8, 1);

    let run = |scalar: bool| {
        let go = || {
            let mut store = VarStore::new();
            let p = store.add("w", weights.clone());
            let mut t = Tape::new(0);
            let x = t.constant(feats.clone());
            let w = t.param(&store, p);
            let h = t.matmul(x, w); // gemm_ikj; backward: matmul_at_b / matmul_a_bt
            let prop = t.spmm(&sparse, h);
            let msgs = t.gather_rows(prop, &idx);
            let sc = t.constant(scores.clone());
            let att = t.segment_attention(sc, msgs, &segs);
            let pooled = t.segment_sum(msgs, &segs);
            let combined = t.add(att, pooled);
            let loss = t.mean_all(combined);
            let grads = t.backward(loss);
            let mut flat: Vec<f32> = t.value(combined).data().to_vec();
            flat.extend_from_slice(grads.get(p).expect("param grad").data());
            flat
        };
        if scalar {
            sane_autodiff::simd::with_scalar(go)
        } else {
            go()
        }
    };

    let vectorized = run(false);
    let scalar = run(true);
    assert_eq!(vectorized.len(), scalar.len());
    for (i, (v, s)) in vectorized.iter().zip(&scalar).enumerate() {
        let bound = 1e-4 * 1.0f32.max(s.abs());
        assert!(
            (v - s).abs() <= bound,
            "element {i}: vectorized {v} drifted past tolerance from scalar reference {s}"
        );
    }
}

/// The leaf ops, pinned exactly rather than by finite differences:
/// `param` is the one node that receives gradients, and `input` records a
/// constant that must stay gradient-free while still feeding the graph.
/// For `loss = sum(w ⊙ c)` the analytic gradient dloss/dw is exactly `c`.
#[test]
fn leaf_ops_input_and_param_route_gradients() {
    let mut store = VarStore::new();
    let p = store.add("w", input(7, 2, 3));
    let constant = input(8, 2, 3);

    let mut t = Tape::new(0);
    let w = t.param(&store, p);
    let c = t.input(Arc::new(constant.clone()));
    let prod = t.mul(w, c);
    let loss = t.sum_all(prod);
    let grads = t.backward(loss);

    let g = grads.get(p).expect("param leaf must receive a gradient");
    assert_eq!(g.data(), constant.data(), "d sum(w*c)/dw must equal c bitwise");
    assert_eq!(grads.iter().count(), 1, "the input constant must not appear among the gradients");
}
