//! Search algorithms: the SANE differentiable search and every NAS
//! baseline the paper compares against.

pub mod darts;
pub mod determinism;
pub mod evolution;
pub mod graphnas;
pub mod oracle;
pub mod preflight;
pub mod random;
pub mod reinforce;
pub mod tpe;
pub mod trace;
pub mod ws;

pub use darts::{sane_search, SaneSearchConfig, SaneSearchOutput};
pub use determinism::{search_step_fingerprint, StepFingerprint};
pub use evolution::{evolution_search, EvolutionConfig};
pub use graphnas::{train_graphnas_spec, GraphNasModel, GraphNasSharedPool};
pub use oracle::GenomeOracle;
pub use preflight::{check_genome, preflight_tape, PreflightError, SanePreflight};
pub use random::{random_search, RandomSearchConfig};
pub use reinforce::{reinforce_search, Controller, ReinforceConfig};
pub use tpe::{tpe_search, TpeConfig};
pub use trace::{SearchTrace, TracePoint};
pub use ws::WsEvaluator;
