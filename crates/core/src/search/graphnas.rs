//! GraphNAS-style models: per-layer `(aggregator, activation, hidden)`
//! choices (Table IX's "own search space" of GraphNAS / Auto-GNN).
//!
//! Two evaluation backends exist:
//!
//! * [`GraphNasModel`] — a discrete model trained from scratch (the plain
//!   GraphNAS trial-and-error evaluator);
//! * [`GraphNasSharedPool`] — an ENAS-style shared-weight pool where every
//!   `(layer, aggregator)` pair is instantiated once at the maximum width
//!   and sampled widths are realised by column slicing + zero padding
//!   (the GraphNAS-WS evaluator).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::optim::Adam;
use sane_autodiff::{Matrix, Tape, Tensor, VarStore};
use sane_gnn::{build_aggregator, GraphContext, Linear, NodeAggregator};

use crate::search::ws::ws_train_steps;
use crate::space::{GraphNasSpec, GRAPHNAS_AGGS, GRAPHNAS_HIDDEN};
use crate::train::{NodeModel, Task, TrainOutcome};

/// Dropout used by GraphNAS-style models (fixed; the space already mixes
/// in enough hyper-parameters).
const GRAPHNAS_DROPOUT: f32 = 0.5;

/// A discrete GraphNAS architecture, built layer by layer with per-layer
/// hidden widths and activations.
pub struct GraphNasModel {
    layers: Vec<(Box<dyn NodeAggregator>, sane_gnn::Activation)>,
    classifier: Linear,
}

impl GraphNasModel {
    /// Builds the model for `spec`, registering parameters in `store`.
    pub fn new(
        spec: &GraphNasSpec,
        in_dim: usize,
        num_outputs: usize,
        store: &mut VarStore,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!spec.layers.is_empty(), "GraphNAS spec needs at least one layer");
        let mut layers = Vec::with_capacity(spec.layers.len());
        let mut prev = in_dim;
        for l in &spec.layers {
            let agg = build_aggregator(l.agg, store, rng, prev, l.hidden, 1);
            layers.push((agg, l.act));
            prev = l.hidden;
        }
        let classifier = Linear::new(store, rng, "graphnas.classifier", prev, num_outputs);
        Self { layers, classifier }
    }
}

impl NodeModel for GraphNasModel {
    fn forward(
        &self,
        tape: &mut Tape,
        store: &VarStore,
        ctx: &GraphContext,
        features: Tensor,
        training: bool,
    ) -> Tensor {
        let dropout = if training { GRAPHNAS_DROPOUT } else { 0.0 };
        let mut h = features;
        for (agg, act) in &self.layers {
            h = tape.dropout(h, dropout);
            h = agg.forward(tape, store, ctx, h);
            h = act.apply(tape, h);
        }
        self.classifier.forward(tape, store, h)
    }
}

/// Trains a GraphNAS spec from scratch (the non-WS evaluator).
pub fn train_graphnas_spec(
    task: &Task,
    spec: &GraphNasSpec,
    cfg: &crate::train::TrainConfig,
) -> TrainOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let model =
        GraphNasModel::new(spec, task.feature_dim(), task.num_outputs(), &mut store, &mut rng);
    crate::train::train_model(task, &model, &mut store, cfg)
}

/// The maximum width used by the shared pool (the largest hidden size in
/// the GraphNAS space).
fn max_width() -> usize {
    *GRAPHNAS_HIDDEN.iter().max().expect("non-empty") // lint:allow(expect) -- non-empty
}

/// ENAS-style shared-weight pool over the GraphNAS space.
///
/// Every `(layer, aggregator kind)` pair is built once at `max_width`;
/// evaluating a spec slices each layer's output down to the sampled width
/// and zero-pads it back so the next layer's shared weights always see the
/// same input dimensionality.
pub struct GraphNasSharedPool {
    task: Task,
    aggs: Vec<Vec<Box<dyn NodeAggregator>>>,
    classifier: Linear,
    store: VarStore,
    opt: Adam,
    /// Optimisation steps per candidate evaluation.
    pub steps_per_eval: usize,
    seed: u64,
    evals: u64,
}

/// A view of the pool restricted to one spec (implements [`NodeModel`]).
/// Borrows only the shared-op fields so the store and optimizer stay free
/// for mutation during training steps.
struct PoolView<'a> {
    aggs: &'a [Vec<Box<dyn NodeAggregator>>],
    classifier: &'a Linear,
    spec: &'a GraphNasSpec,
}

impl NodeModel for PoolView<'_> {
    fn forward(
        &self,
        tape: &mut Tape,
        store: &VarStore,
        ctx: &GraphContext,
        features: Tensor,
        training: bool,
    ) -> Tensor {
        let dropout = if training { GRAPHNAS_DROPOUT } else { 0.0 };
        let wmax = max_width();
        let n = tape.value(features).rows();
        let mut h = features;
        for (l, layer) in self.spec.layers.iter().enumerate() {
            let agg_idx = GRAPHNAS_AGGS
                .iter()
                .position(|&k| k == layer.agg)
                .expect("spec aggregator belongs to the GraphNAS space"); // lint:allow(expect) -- spec aggregator belongs to the GraphNAS space
            let h_in = tape.dropout(h, dropout);
            let full = self.aggs[l][agg_idx].forward(tape, store, ctx, h_in);
            let act_input =
                if layer.hidden < wmax { tape.slice_cols(full, 0, layer.hidden) } else { full };
            let activated = layer.act.apply(tape, act_input);
            h = if layer.hidden < wmax {
                let pad = tape.constant(Matrix::zeros(n, wmax - layer.hidden));
                tape.concat_cols(&[activated, pad])
            } else {
                activated
            };
        }
        self.classifier.forward(tape, store, h)
    }
}

impl GraphNasSharedPool {
    /// Builds the pool for a `k`-layer GraphNAS space on `task`.
    pub fn new(
        task: Task,
        k: usize,
        lr: f32,
        weight_decay: f32,
        steps_per_eval: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = VarStore::new();
        let wmax = max_width();
        let mut aggs = Vec::with_capacity(k);
        for l in 0..k {
            let layer_in = if l == 0 { task.feature_dim() } else { wmax };
            aggs.push(
                GRAPHNAS_AGGS
                    .iter()
                    .map(|&kind| build_aggregator(kind, &mut store, &mut rng, layer_in, wmax, 1))
                    .collect::<Vec<_>>(),
            );
        }
        let classifier =
            Linear::new(&mut store, &mut rng, "pool.classifier", wmax, task.num_outputs());
        Self {
            task,
            aggs,
            classifier,
            store,
            opt: Adam::new(lr, weight_decay),
            steps_per_eval,
            seed,
            evals: 0,
        }
    }

    /// Weight-sharing evaluation of one spec.
    pub fn evaluate(&mut self, spec: &GraphNasSpec) -> TrainOutcome {
        assert_eq!(spec.layers.len(), self.aggs.len(), "spec depth mismatch");
        self.evals += 1;
        let seed = self.seed.wrapping_mul(131).wrapping_add(self.evals);
        let view = PoolView { aggs: &self.aggs, classifier: &self.classifier, spec };
        ws_train_steps(
            &self.task,
            &view,
            &mut self.store,
            &mut self.opt,
            self.steps_per_eval,
            seed,
        );
        let (val, test) = super::ws::eval_metrics(&self.task, &view, &self.store);
        TrainOutcome { val_metric: val, test_metric: test, epochs_run: self.steps_per_eval }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GraphNasLayer, GraphNasSpace};
    use crate::train::TrainConfig;
    use sane_data::CitationConfig;
    use sane_gnn::{Activation, NodeAggKind};

    fn tiny_task() -> Task {
        Task::node(CitationConfig::cora().scaled(0.02).generate())
    }

    fn spec() -> GraphNasSpec {
        GraphNasSpec {
            layers: vec![
                GraphNasLayer { agg: NodeAggKind::Gcn, act: Activation::Relu, hidden: 16 },
                GraphNasLayer { agg: NodeAggKind::Gat, act: Activation::Elu, hidden: 8 },
            ],
        }
    }

    #[test]
    fn discrete_model_trains() {
        let task = tiny_task();
        let cfg = TrainConfig { epochs: 25, patience: 0, ..TrainConfig::default() };
        let out = train_graphnas_spec(&task, &spec(), &cfg);
        assert!(out.val_metric > 0.25, "val {}", out.val_metric);
    }

    #[test]
    fn decode_and_train_random_specs() {
        let task = tiny_task();
        let space = GraphNasSpace { k: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
        for _ in 0..3 {
            let genome = space.space().sample(&mut rng);
            let spec = space.decode(&genome);
            let out = train_graphnas_spec(&task, &spec, &cfg);
            assert!((0.0..=1.0).contains(&out.val_metric));
        }
    }

    #[test]
    fn shared_pool_evaluates_varied_widths() {
        let task = tiny_task();
        let mut pool = GraphNasSharedPool::new(task, 2, 5e-3, 1e-4, 2, 0);
        for hidden in [8usize, 32, 64] {
            let s = GraphNasSpec {
                layers: vec![
                    GraphNasLayer { agg: NodeAggKind::SageMean, act: Activation::Relu, hidden },
                    GraphNasLayer { agg: NodeAggKind::Gcn, act: Activation::Tanh, hidden: 16 },
                ],
            };
            let out = pool.evaluate(&s);
            assert!((0.0..=1.0).contains(&out.val_metric), "hidden {hidden}");
        }
    }

    #[test]
    fn shared_pool_improves_with_repeated_training() {
        let task = tiny_task();
        let mut pool = GraphNasSharedPool::new(task, 2, 5e-3, 1e-4, 4, 1);
        let s = spec();
        let first = pool.evaluate(&s).val_metric;
        for _ in 0..10 {
            pool.evaluate(&s);
        }
        let later = pool.evaluate(&s).val_metric;
        assert!(later >= first, "{first} -> {later}");
    }
}
