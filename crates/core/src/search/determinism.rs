//! Bitwise fingerprint of one SANE search step — the probe behind the
//! cross-thread determinism gate (`xtask determinism`).
//!
//! The whole reproduction stack rests on one claim: the parallel kernels
//! in `sane-autodiff` are *bitwise* deterministic at any worker count,
//! because work is only ever cut at item boundaries and each item runs the
//! identical serial inner loop (see `sane_autodiff::analysis` for the
//! machine-checked partition contract). A DARTS-style search amplifies any
//! violation — a single last-bit difference in one gradient changes the
//! Adam trajectory and, eventually, which architecture wins — so the gate
//! does not compare a kernel in isolation. It runs a **full search step**
//! (fully-mixed supernet forward, backward, α Adam update on the
//! validation loss, then w Adam update on the training loss — exactly
//! Algorithm 1's epoch body in first-order mode) and fingerprints every
//! observable: the loss scalar, every gradient matrix, every parameter
//! after the updates, and the softmaxed α rows.
//!
//! Fingerprints store `f32` *bit patterns* (`u32`), not floats: the gate
//! must distinguish `0.0` from `-0.0` and compare NaNs by representation,
//! which `==` on floats cannot do.
//!
//! The `determinism` bench binary runs this probe under
//! `sane_autodiff::parallel::with_threads` at 1/2/4/`hardware_threads()`
//! and fails CI on the first mismatching label — attributing divergence to
//! a kernel via the telemetry kernel samples recorded during each run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::optim::Adam;
use sane_autodiff::VarStore;

use super::darts::{mixed_grads, mixed_loss_tape, SaneSearchConfig, Split};
use crate::supernet::Supernet;
use crate::train::Task;

/// Bit-exact snapshot of everything one search step produces.
///
/// Entries are `(label, f32-bit-patterns)` pairs sorted by label, so two
/// fingerprints from the same config are comparable entry-by-entry and a
/// mismatch names the exact tensor that diverged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepFingerprint {
    /// Bit pattern of the weight-step training loss.
    pub loss: u32,
    /// Post-clip weight-step gradients, keyed by parameter name.
    pub grads: Vec<(String, Vec<u32>)>,
    /// Every parameter value after the α and w Adam updates.
    pub params: Vec<(String, Vec<u32>)>,
    /// Softmaxed α rows (`node[i]`, `skip[i]`, `layer`).
    pub alphas: Vec<(String, Vec<u32>)>,
}

impl StepFingerprint {
    /// Labels of every section that differs between two fingerprints, in
    /// a fixed order (`loss`, then `grad:*`, `param:*`, `alpha:*`). Empty
    /// means bitwise identical.
    pub fn diff(&self, other: &StepFingerprint) -> Vec<String> {
        let mut out = Vec::new();
        if self.loss != other.loss {
            out.push("loss".to_string());
        }
        for (prefix, a, b) in [
            ("grad", &self.grads, &other.grads),
            ("param", &self.params, &other.params),
            ("alpha", &self.alphas, &other.alphas),
        ] {
            if a.len() != b.len() {
                out.push(format!("{prefix}:<section length {} vs {}>", a.len(), b.len()));
                continue;
            }
            for ((la, va), (lb, vb)) in a.iter().zip(b) {
                if la != lb {
                    out.push(format!("{prefix}:<label {la} vs {lb}>"));
                } else if va != vb {
                    out.push(format!("{prefix}:{la}"));
                }
            }
        }
        out
    }

    /// Total number of diffable sections: the loss plus one per gradient,
    /// parameter, and α tensor — the denominator for drift reports.
    pub fn num_sections(&self) -> usize {
        1 + self.grads.len() + self.params.len() + self.alphas.len()
    }

    /// Total number of fingerprinted scalars (gate report sizing).
    pub fn num_scalars(&self) -> usize {
        1 + [&self.grads, &self.params, &self.alphas]
            .iter()
            .flat_map(|sec| sec.iter().map(|(_, v)| v.len()))
            .sum::<usize>()
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Runs one full SANE search step (epoch 0 of Algorithm 1, first-order,
/// no ε-explore) from a fresh seeded supernet and fingerprints it.
///
/// Identical `task` + `cfg` must yield identical fingerprints regardless
/// of the active worker count — that is the property the determinism gate
/// asserts by calling this under `with_threads(1 | 2 | 4 | n)`.
pub fn search_step_fingerprint(task: &Task, cfg: &SaneSearchConfig) -> StepFingerprint {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let net = Supernet::new(
        cfg.supernet.clone(),
        task.feature_dim(),
        task.num_outputs(),
        &mut store,
        &mut rng,
    );
    let mut opt_w = Adam::new(cfg.lr_w, cfg.wd_w);
    let mut opt_alpha = Adam::new(cfg.lr_alpha, cfg.wd_alpha);

    // Lines 2–3 of Algorithm 1: α Adam step on the validation loss.
    let alpha_grads = mixed_grads(task, &net, &store, Split::Val, cfg.seed, 0);
    opt_alpha.step_subset(&mut store, &alpha_grads, net.alpha_params());
    alpha_grads.recycle();

    // Lines 4–5: w Adam step on the training loss.
    let (tape, loss) = mixed_loss_tape(task, &net, &store, Split::Train, cfg.seed, 0);
    let loss_bits = tape.value(loss).as_scalar().to_bits();
    let mut grads = tape.backward(loss);
    grads.clip_global_norm(5.0);

    let mut grad_bits: Vec<(String, Vec<u32>)> =
        grads.iter().map(|(id, m)| (store.name(id).to_string(), bits(m.data()))).collect();
    grad_bits.sort_by(|a, b| a.0.cmp(&b.0));

    opt_w.step_subset(&mut store, &grads, net.weight_params());
    grads.recycle();

    let mut param_bits: Vec<(String, Vec<u32>)> =
        store.ids().map(|id| (store.name(id).to_string(), bits(store.value(id).data()))).collect();
    param_bits.sort_by(|a, b| a.0.cmp(&b.0));

    let snap = net.alpha_snapshot(&store);
    let mut alphas = Vec::new();
    for (i, row) in snap.node.iter().enumerate() {
        alphas.push((format!("node[{i}]"), bits(row)));
    }
    for (i, row) in snap.skip.iter().enumerate() {
        alphas.push((format!("skip[{i}]"), bits(row)));
    }
    if !snap.layer.is_empty() {
        alphas.push(("layer".to_string(), bits(&snap.layer)));
    }

    StepFingerprint { loss: loss_bits, grads: grad_bits, params: param_bits, alphas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernet::SupernetConfig;
    use sane_autodiff::parallel::with_threads;
    use sane_data::CitationConfig;
    use sane_gnn::Activation;

    fn tiny_task() -> Task {
        Task::node(CitationConfig::cora().scaled(0.025).generate())
    }

    fn tiny_cfg() -> SaneSearchConfig {
        SaneSearchConfig {
            supernet: SupernetConfig {
                k: 2,
                hidden: 8,
                dropout: 0.2,
                activation: Activation::Relu,
                use_layer_agg: true,
            },
            epochs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn fingerprint_is_reproducible() {
        let task = tiny_task();
        let cfg = tiny_cfg();
        let a = search_step_fingerprint(&task, &cfg);
        let b = search_step_fingerprint(&task, &cfg);
        assert_eq!(a.diff(&b), Vec::<String>::new());
        assert!(!a.grads.is_empty() && !a.params.is_empty() && !a.alphas.is_empty());
        assert!(a.num_scalars() > 100, "fingerprint too small to be a real step");
    }

    #[test]
    fn fingerprint_is_bitwise_identical_across_thread_counts() {
        let task = tiny_task();
        let cfg = tiny_cfg();
        let reference = with_threads(1, || search_step_fingerprint(&task, &cfg));
        for threads in [2usize, 4] {
            let probe = with_threads(threads, || search_step_fingerprint(&task, &cfg));
            let diff = reference.diff(&probe);
            assert!(diff.is_empty(), "{threads} threads diverged from serial: {diff:?}");
        }
    }

    #[test]
    fn fingerprint_detects_a_changed_seed() {
        let task = tiny_task();
        let cfg = tiny_cfg();
        let mut other_cfg = tiny_cfg();
        other_cfg.seed = cfg.seed ^ 0x5EED;
        let a = search_step_fingerprint(&task, &cfg);
        let b = search_step_fingerprint(&task, &other_cfg);
        assert!(!a.diff(&b).is_empty(), "different seeds must not collide bitwise");
    }
}
