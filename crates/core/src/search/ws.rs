//! Weight-sharing evaluation: the "-WS" in GraphNAS-WS.
//!
//! Instead of training every sampled architecture from scratch, a single
//! persistent parameter store is shared by all candidates; evaluating a
//! candidate means (a) a few optimisation steps restricted to its path and
//! (b) a validation measurement with the inherited weights. This is the
//! ENAS-style evaluator the paper's GraphNAS-WS baseline uses.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::metrics::accuracy;
use sane_autodiff::optim::Adam;
use sane_autodiff::{Tape, VarStore};

use crate::space::SaneSpace;
use crate::supernet::{SampledPath, SampledView, Supernet, SupernetConfig};
use crate::train::{eval_inductive, NodeModel, Task, TrainOutcome};

/// `(validation, test)` metrics of a model under the current shared weights.
pub(crate) fn eval_metrics(task: &Task, model: &dyn NodeModel, store: &VarStore) -> (f64, f64) {
    match task {
        Task::Node(t) => {
            let mut tape = Tape::new(0);
            let x = tape.input(Arc::clone(&t.data.features));
            let logits = model.forward(&mut tape, store, &t.ctx, x, false);
            let lv = tape.value(logits);
            (accuracy(lv, &t.data.labels, &t.data.val), accuracy(lv, &t.data.labels, &t.data.test))
        }
        Task::Multi(t) => (
            eval_inductive(t, model, store, &t.data.val_graphs),
            eval_inductive(t, model, store, &t.data.test_graphs),
        ),
    }
}

/// Runs `steps` optimisation steps of `model` on the task's training data.
pub(crate) fn ws_train_steps(
    task: &Task,
    model: &dyn NodeModel,
    store: &mut VarStore,
    opt: &mut Adam,
    steps: usize,
    seed: u64,
) {
    for step in 0..steps {
        let mut grads = match task {
            Task::Node(t) => {
                let mut tape = Tape::new(seed.wrapping_add(step as u64));
                let x = tape.input(Arc::clone(&t.data.features));
                let logits = model.forward(&mut tape, store, &t.ctx, x, true);
                let loss = tape.cross_entropy(logits, &t.data.labels, &t.data.train);
                tape.backward(loss)
            }
            Task::Multi(t) => {
                // Offset by the call's seed so successive evaluations cover
                // different training graphs instead of always the first
                // `steps` of the list.
                let graphs = &t.data.train_graphs;
                let gi = graphs[(step.wrapping_add(seed as usize)) % graphs.len()];
                let g = &t.data.graphs[gi];
                let mut tape = Tape::new(seed.wrapping_add(step as u64));
                let x = tape.input(Arc::clone(&g.features));
                let logits = model.forward(&mut tape, store, &t.ctxs[gi], x, true);
                let rows = g.all_nodes();
                let loss = tape.bce_with_logits(logits, &g.targets, &rows);
                tape.backward(loss)
            }
        };
        grads.clip_global_norm(5.0);
        opt.step(store, &grads);
        grads.recycle();
    }
}

/// Weight-sharing evaluator over the SANE space, backed by the supernet in
/// sampled-path mode.
pub struct WsEvaluator {
    task: Task,
    net: Supernet,
    store: VarStore,
    opt: Adam,
    space: SaneSpace,
    /// Optimisation steps spent per candidate evaluation.
    pub steps_per_eval: usize,
    seed: u64,
    evals: u64,
}

impl WsEvaluator {
    /// Builds the shared supernet for `task`.
    pub fn new(
        task: Task,
        supernet: SupernetConfig,
        lr: f32,
        weight_decay: f32,
        steps_per_eval: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = VarStore::new();
        let space = SaneSpace { k: supernet.k };
        let net =
            Supernet::new(supernet, task.feature_dim(), task.num_outputs(), &mut store, &mut rng);
        Self {
            task,
            net,
            store,
            opt: Adam::new(lr, weight_decay),
            space,
            steps_per_eval,
            seed,
            evals: 0,
        }
    }

    /// Converts a SANE-space genome to a supernet path.
    pub fn genome_to_path(&self, genome: &[usize]) -> SampledPath {
        let k = self.space.k;
        self.space.space().check(genome);
        SampledPath {
            node: genome[..k].to_vec(),
            skip: genome[k..2 * k].to_vec(),
            layer: genome[2 * k],
        }
    }

    /// Weight-sharing evaluation of one genome: a few shared-weight steps
    /// on the sampled path, then a validation/test measurement.
    pub fn evaluate(&mut self, genome: &[usize]) -> TrainOutcome {
        self.evals += 1;
        let path = self.genome_to_path(genome);
        let view = SampledView { net: &self.net, path };
        ws_train_steps(
            &self.task,
            &view,
            &mut self.store,
            &mut self.opt,
            self.steps_per_eval,
            self.seed.wrapping_mul(31).wrapping_add(self.evals),
        );
        let (val, test) = eval_metrics(&self.task, &view, &self.store);
        sane_telemetry::debug(
            "ws.eval",
            &[
                ("eval", self.evals.into()),
                ("genome", format!("{genome:?}").into()),
                ("val_metric", val.into()),
                ("test_metric", test.into()),
            ],
        );
        TrainOutcome { val_metric: val, test_metric: test, epochs_run: self.steps_per_eval }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sane_data::CitationConfig;
    use sane_gnn::Activation;

    fn evaluator() -> WsEvaluator {
        let task = Task::node(CitationConfig::cora().scaled(0.02).generate());
        let cfg = SupernetConfig {
            k: 2,
            hidden: 8,
            dropout: 0.0,
            activation: Activation::Relu,
            use_layer_agg: true,
        };
        WsEvaluator::new(task, cfg, 5e-3, 1e-4, 3, 0)
    }

    #[test]
    fn genome_path_layout() {
        let ev = evaluator();
        let path = ev.genome_to_path(&[1, 2, 0, 1, 2]);
        assert_eq!(path.node, vec![1, 2]);
        assert_eq!(path.skip, vec![0, 1]);
        assert_eq!(path.layer, 2);
    }

    #[test]
    fn shared_weights_improve_across_evaluations() {
        let mut ev = evaluator();
        let genome = [3usize, 3, 0, 0, 0];
        let first = ev.evaluate(&genome).val_metric;
        for _ in 0..12 {
            ev.evaluate(&genome);
        }
        let later = ev.evaluate(&genome).val_metric;
        assert!(
            later >= first,
            "weight sharing should not degrade a repeatedly-trained path: {first} -> {later}"
        );
    }

    #[test]
    fn evaluation_returns_sane_metrics() {
        let mut ev = evaluator();
        let out = ev.evaluate(&[0, 1, 1, 0, 1]);
        assert!((0.0..=1.0).contains(&out.val_metric));
        assert!((0.0..=1.0).contains(&out.test_metric));
    }
}
