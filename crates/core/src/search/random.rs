//! Random search (Bergstra & Bengio 2012) — the simplest NAS baseline in
//! the paper's Table VI.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::search::oracle::GenomeOracle;
use crate::space::CategoricalSpace;

/// Random-search settings.
#[derive(Clone, Debug)]
pub struct RandomSearchConfig {
    /// Number of architectures to sample (paper: 200).
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        Self { samples: 200, seed: 0 }
    }
}

/// Uniformly samples `samples` genomes and evaluates each through the
/// oracle. Duplicate samples are re-drawn (up to a bound) so the budget is
/// spent on distinct candidates.
pub fn random_search(
    space: &CategoricalSpace,
    oracle: &mut GenomeOracle<'_>,
    cfg: &RandomSearchConfig,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..cfg.samples {
        let mut genome = space.sample(&mut rng);
        for _ in 0..20 {
            if seen.insert(genome.clone()) {
                break;
            }
            genome = space.sample(&mut rng);
        }
        oracle.evaluate(&genome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainOutcome;

    #[test]
    fn random_search_explores_distinct_genomes() {
        let space = CategoricalSpace::new(vec![11, 11, 2, 2, 3]);
        let mut seen = std::collections::HashSet::new();
        {
            let mut oracle = GenomeOracle::new(|g: &[usize]| {
                seen.insert(g.to_vec());
                TrainOutcome { val_metric: g[0] as f64, test_metric: 0.0, epochs_run: 1 }
            });
            random_search(&space, &mut oracle, &RandomSearchConfig { samples: 30, seed: 1 });
            assert_eq!(oracle.evaluations(), 30);
            let (best, _) = oracle.best().unwrap();
            assert_eq!(best[0], 10, "best genome should maximise the score dim");
        }
        assert_eq!(seen.len(), 30, "all evaluated genomes distinct");
    }

    #[test]
    fn random_search_is_deterministic() {
        let space = CategoricalSpace::new(vec![5, 5]);
        let run = |seed| {
            let mut order = Vec::new();
            let mut oracle = GenomeOracle::new(|g: &[usize]| {
                order.push(g.to_vec());
                TrainOutcome { val_metric: 0.0, test_metric: 0.0, epochs_run: 1 }
            });
            random_search(&space, &mut oracle, &RandomSearchConfig { samples: 10, seed });
            drop(oracle);
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
