//! Search-progress traces: the (time, best-so-far) curves behind the
//! paper's Figure 3.

use serde::{Deserialize, Serialize};

/// One point on a search trajectory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TracePoint {
    /// Wall-clock seconds since the search started.
    pub seconds: f64,
    /// Candidate evaluations performed so far.
    pub evaluations: usize,
    /// Best validation metric so far.
    pub best_val: f64,
    /// Test metric of the best-validation candidate so far.
    pub test_at_best: f64,
}

/// A full search trajectory.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Points in chronological order.
    pub points: Vec<TracePoint>,
}

impl SearchTrace {
    /// Appends a point; keeps `best_val` monotone by construction of the
    /// callers (asserted in debug builds).
    pub fn push(&mut self, point: TracePoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(point.best_val >= last.best_val - 1e-12, "best_val must be monotone");
            debug_assert!(point.seconds >= last.seconds - 1e-9, "time must be monotone");
        }
        self.points.push(point);
    }

    /// The final best validation metric.
    pub fn final_best_val(&self) -> f64 {
        self.points.last().map(|p| p.best_val).unwrap_or(f64::NEG_INFINITY)
    }

    /// The test metric associated with the final best candidate.
    pub fn final_test(&self) -> f64 {
        self.points.last().map(|p| p.test_at_best).unwrap_or(0.0)
    }

    /// Total search wall-clock.
    pub fn total_seconds(&self) -> f64 {
        self.points.last().map(|p| p.seconds).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates_and_reports() {
        let mut t = SearchTrace::default();
        t.push(TracePoint { seconds: 1.0, evaluations: 1, best_val: 0.5, test_at_best: 0.4 });
        t.push(TracePoint { seconds: 2.0, evaluations: 2, best_val: 0.7, test_at_best: 0.65 });
        assert_eq!(t.final_best_val(), 0.7);
        assert_eq!(t.final_test(), 0.65);
        assert_eq!(t.total_seconds(), 2.0);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = SearchTrace::default();
        assert_eq!(t.final_test(), 0.0);
        assert!(t.final_best_val().is_infinite());
    }
}
