//! Static pre-flight validation of search candidates.
//!
//! Training a candidate architecture costs seconds to minutes; statically
//! checking that its tape is well-formed costs microseconds. The pre-flight
//! validator builds the candidate's model over a tiny probe graph, records
//! one forward pass, and runs the combined audit + abstract interpretation
//! (`Tape::audit_with_absint`) over it. A genome whose tape has any
//! error-severity finding — arity/shape contradictions, transfer-function
//! violations, non-finite values — is rejected before any training budget
//! is spent, and the rejection is counted in telemetry
//! (`search.preflight.checked` / `search.preflight.rejected`).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::{Matrix, Tape, Tensor, VarStore};
use sane_gnn::{GnnModel, GraphContext, ModelHyper};
use sane_graph::Graph;

use crate::space::{CategoricalSpace, SaneSpace};

/// Why a candidate was rejected before training.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreflightError {
    /// The genome has the wrong number of decisions for the space.
    GenomeLength {
        /// Decisions the space declares.
        expected: usize,
        /// Decisions the genome carries.
        actual: usize,
    },
    /// A decision index is outside its cardinality.
    GenomeValue {
        /// Which decision.
        index: usize,
        /// The out-of-range value.
        value: usize,
        /// The decision's cardinality.
        cardinality: usize,
    },
    /// The candidate's probe tape failed the static analysis.
    StaticViolations {
        /// Error-severity findings, one rendered line each.
        findings: Vec<String>,
    },
}

impl std::fmt::Display for PreflightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GenomeLength { expected, actual } => {
                write!(f, "genome has {actual} decision(s), space declares {expected}")
            }
            Self::GenomeValue { index, value, cardinality } => {
                write!(f, "genome[{index}] = {value} out of range 0..{cardinality}")
            }
            Self::StaticViolations { findings } => {
                write!(f, "probe tape failed static analysis: {}", findings.join("; "))
            }
        }
    }
}

impl std::error::Error for PreflightError {}

/// Non-panicking genome well-formedness check — the searcher-facing twin
/// of [`CategoricalSpace::check`], which panics (appropriate for internal
/// invariants, not for candidates arriving from an external proposer).
pub fn check_genome(space: &CategoricalSpace, genome: &[usize]) -> Result<(), PreflightError> {
    if genome.len() != space.dims.len() {
        return Err(PreflightError::GenomeLength {
            expected: space.dims.len(),
            actual: genome.len(),
        });
    }
    for (index, (&value, &cardinality)) in genome.iter().zip(&space.dims).enumerate() {
        if value >= cardinality {
            return Err(PreflightError::GenomeValue { index, value, cardinality });
        }
    }
    Ok(())
}

/// Runs the combined audit + abstract interpretation over a recorded probe
/// tape and rejects on any error-severity finding.
pub fn preflight_tape(
    tape: &Tape,
    loss: Tensor,
    store: Option<&VarStore>,
) -> Result<(), PreflightError> {
    let (report, _abs) = tape.audit_with_absint(loss, store);
    if report.has_errors() {
        let findings = report
            .findings
            .iter()
            .filter(|f| f.severity == sane_autodiff::Severity::Error)
            .map(|f| f.to_string())
            .collect();
        return Err(PreflightError::StaticViolations { findings });
    }
    Ok(())
}

/// Pre-flight validator for the SANE space: decodes a genome, instantiates
/// the model over a fixed tiny probe graph, and statically analyses one
/// forward + loss tape.
///
/// The probe fixture is deliberately small (6 nodes, 5 features, 3
/// classes) — the static properties being checked (op wiring, shape
/// transfer, interval/NaN contracts) do not depend on graph scale.
pub struct SanePreflight {
    space: SaneSpace,
    cat: CategoricalSpace,
    ctx: GraphContext,
    features: Arc<Matrix>,
    labels: Arc<Vec<u32>>,
    train_rows: Arc<Vec<u32>>,
    hyper: ModelHyper,
}

impl SanePreflight {
    /// Builds the probe fixture for `space`.
    pub fn new(space: SaneSpace) -> Self {
        // A triangle with a pendant chain: degrees 1..3 keep every
        // aggregator's segment shapes irregular.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]);
        let ctx = GraphContext::new(&g);
        let mut rng = StdRng::seed_from_u64(0x5a9e);
        let features = Arc::new(sane_autodiff::uniform_init(6, 5, 0.5, &mut rng));
        let labels = Arc::new(vec![0u32, 1, 2, 0, 1, 2]);
        let train_rows = Arc::new(vec![0u32, 2, 4]);
        let cat = space.space();
        // Small but GAT-compatible: hidden divisible by heads.
        let hyper = ModelHyper { hidden: 8, heads: 2, dropout: 0.0, ..ModelHyper::default() };
        Self { space, cat, ctx, features, labels, train_rows, hyper }
    }

    /// The categorical encoding this validator checks genomes against.
    pub fn space(&self) -> &CategoricalSpace {
        &self.cat
    }

    /// Validates one genome: well-formedness, then static tape analysis of
    /// the decoded candidate.
    pub fn check(&self, genome: &[usize]) -> Result<(), PreflightError> {
        check_genome(&self.cat, genome)?;
        let arch = self.space.decode(genome);
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = VarStore::new();
        let model = GnnModel::new(arch, 5, 3, self.hyper.clone(), &mut store, &mut rng);
        let mut tape = Tape::new(0);
        let x = tape.input(Arc::clone(&self.features));
        let logits = model.forward(&mut tape, &store, &self.ctx, x, false);
        let loss = tape.cross_entropy(logits, &self.labels, &self.train_rows);
        preflight_tape(&tape, loss, Some(&store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_genomes_pass_check() {
        let cat = CategoricalSpace::new(vec![3, 2, 4]);
        assert!(check_genome(&cat, &[2, 1, 3]).is_ok());
        assert_eq!(
            check_genome(&cat, &[0, 1]),
            Err(PreflightError::GenomeLength { expected: 3, actual: 2 })
        );
        assert_eq!(
            check_genome(&cat, &[0, 2, 0]),
            Err(PreflightError::GenomeValue { index: 1, value: 2, cardinality: 2 })
        );
    }

    #[test]
    fn every_sane_genome_corner_passes_preflight() {
        // All-minimum and all-maximum genomes exercise both extremes of
        // every decision; the validator must accept them all — the SANE
        // space contains no statically-invalid architecture by design.
        let pf = SanePreflight::new(SaneSpace::paper());
        let dims = pf.space().dims.clone();
        let lo: Vec<usize> = dims.iter().map(|_| 0).collect();
        let hi: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
        assert_eq!(pf.check(&lo), Ok(()));
        assert_eq!(pf.check(&hi), Ok(()));
    }

    /// Acceptance pin: an injected statically-invalid candidate is rejected
    /// before training. The corrupted tape carries a NaN constant into the
    /// loss — the class of poisoned-weights / broken-initialiser bug the
    /// static analysis catches without spending a training step. (Invalid
    /// *wiring* — e.g. non-covering segments — is asserted at record time
    /// by the tape builders and pinned inside `sane-autodiff`.)
    #[test]
    fn injected_invalid_candidate_is_rejected_statically() {
        let mut tape = Tape::new(0);
        let x = tape.constant(Matrix::from_vec(2, 2, vec![1.0, f32::NAN, 0.0, 2.0]));
        let y = tape.relu(x);
        let loss = tape.sum_all(y);
        let err = preflight_tape(&tape, loss, None).expect_err("must reject");
        let PreflightError::StaticViolations { findings } = err else {
            panic!("wrong rejection kind: {err}");
        };
        assert!(
            findings.iter().any(|f| f.to_lowercase().contains("finite")),
            "violation should name the non-finite value: {findings:?}"
        );

        // Malformed genomes are rejected even earlier, without building a
        // model at all.
        let pf = SanePreflight::new(SaneSpace::paper());
        let mut bad = vec![0usize; pf.space().len()];
        bad[0] = 99;
        assert!(matches!(pf.check(&bad), Err(PreflightError::GenomeValue { .. })));
    }
}
