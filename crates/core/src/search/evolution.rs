//! Regularized evolution (Real et al., 2019) over a categorical space —
//! one of the "more advanced NAS approaches" the paper's conclusion points
//! to as future work.
//!
//! A fixed-size population evolves by tournament selection: the best of a
//! random sample is mutated in one decision and evaluated; the *oldest*
//! population member is evicted (ageing keeps exploration alive without an
//! explicit entropy term).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::search::oracle::GenomeOracle;
use crate::space::CategoricalSpace;

/// Regularized-evolution settings.
#[derive(Clone, Debug)]
pub struct EvolutionConfig {
    /// Total evaluations (population warm-up included).
    pub evaluations: usize,
    /// Population size.
    pub population: usize,
    /// Tournament sample size.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self { evaluations: 200, population: 20, tournament: 5, seed: 0 }
    }
}

/// Runs regularized evolution through the oracle.
pub fn evolution_search(
    space: &CategoricalSpace,
    oracle: &mut GenomeOracle<'_>,
    cfg: &EvolutionConfig,
) {
    assert!(cfg.population >= 2, "population must be at least 2");
    assert!(cfg.tournament >= 1, "tournament must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: VecDeque<(Vec<usize>, f64)> = VecDeque::with_capacity(cfg.population);

    // Warm-up: random individuals.
    let warmup = cfg.population.min(cfg.evaluations);
    for _ in 0..warmup {
        let genome = space.sample(&mut rng);
        let fitness = oracle.evaluate(&genome);
        population.push_back((genome, fitness));
    }

    for _ in warmup..cfg.evaluations {
        // Tournament: best of a random sample.
        let indices: Vec<usize> = (0..population.len()).collect();
        let sample: Vec<usize> = indices
            .choose_multiple(&mut rng, cfg.tournament.min(population.len()))
            .copied()
            .collect();
        let parent_idx = sample
            .into_iter()
            .max_by(|&a, &b| {
                population[a].1.partial_cmp(&population[b].1).expect("finite fitness")
                // lint:allow(expect) -- finite fitness
            })
            .expect("non-empty tournament"); // lint:allow(expect) -- non-empty tournament
        let mut child = population[parent_idx].0.clone();
        space.mutate(&mut child, &mut rng);
        let fitness = oracle.evaluate(&child);
        population.push_back((child, fitness));
        // Ageing: evict the oldest.
        if population.len() > cfg.population {
            population.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainOutcome;

    fn run(seed: u64, evaluations: usize) -> f64 {
        let space = CategoricalSpace::new(vec![7; 6]);
        let target = [2usize, 5, 0, 3, 6, 1];
        let mut oracle = GenomeOracle::new(|g: &[usize]| {
            let score = g.iter().zip(&target).filter(|(a, b)| a == b).count() as f64 / 6.0;
            TrainOutcome { val_metric: score, test_metric: score, epochs_run: 1 }
        });
        evolution_search(
            &space,
            &mut oracle,
            &EvolutionConfig { evaluations, population: 12, tournament: 4, seed },
        );
        oracle.best().unwrap().1.val_metric
    }

    #[test]
    fn evolution_climbs_a_separable_objective() {
        // 7^6 ≈ 118k genomes; 120 evaluations of random search average
        // ~2.5/6 matches. Evolution must do clearly better.
        let best = run(3, 120);
        assert!(best >= 5.0 / 6.0, "evolution best {best}");
    }

    #[test]
    fn evolution_is_deterministic() {
        assert_eq!(run(9, 60), run(9, 60));
    }

    #[test]
    fn handles_budget_smaller_than_population() {
        let space = CategoricalSpace::new(vec![3, 3]);
        let mut oracle = GenomeOracle::new(|_: &[usize]| TrainOutcome {
            val_metric: 0.5,
            test_metric: 0.5,
            epochs_run: 1,
        });
        evolution_search(
            &space,
            &mut oracle,
            &EvolutionConfig { evaluations: 3, population: 10, tournament: 3, seed: 0 },
        );
        assert!(oracle.evaluations() <= 3);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn rejects_tiny_population() {
        let space = CategoricalSpace::new(vec![2]);
        let mut oracle = GenomeOracle::new(|_: &[usize]| TrainOutcome {
            val_metric: 0.0,
            test_metric: 0.0,
            epochs_run: 1,
        });
        evolution_search(
            &space,
            &mut oracle,
            &EvolutionConfig { population: 1, ..EvolutionConfig::default() },
        );
    }
}
