//! The SANE search algorithm (Algorithm 1 of the paper): differentiable
//! architecture search on the supernet.
//!
//! Each epoch performs one Adam step on `α` against the *validation* loss
//! and one Adam step on `w` against the *training* loss. The paper runs
//! the ξ = 0 first-order approximation of Eq. (8); the full second-order
//! rule (ξ > 0) is implemented too, using DARTS' finite-difference
//! approximation of the Hessian-vector product:
//!
//! ```text
//! ∇α L_val(w*, α) ≈ ∇α L_val(w', α)
//!                   - ξ · [∇α L_tra(w⁺, α) - ∇α L_tra(w⁻, α)] / (2ε)
//! w' = w - ξ ∇w L_tra(w, α),   w± = w ± ε ∇w' L_val(w', α)
//! ```
//!
//! The ε-random-explore knob of Section IV-E1 is included: with
//! probability ε an epoch samples one discrete path and updates only that
//! path's weights (no `α` update). ε = 0 is Algorithm 1; ε = 1 degenerates
//! into random search with weight sharing, and the final architecture is
//! then chosen by weight-sharing evaluation instead of arg-max over the
//! never-trained `α`.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sane_autodiff::metrics::accuracy;
use sane_autodiff::optim::Adam;
use sane_autodiff::{Gradients, ParamId, Tape, Tensor, VarStore};
use sane_gnn::Architecture;
use sane_telemetry as tel;

use crate::obs;
use crate::supernet::{
    AlphaSnapshot, MixedView, SampledPath, SampledView, Supernet, SupernetConfig,
};
use crate::train::{eval_inductive, MultiTask, NodeTask, Task};

/// Settings for one SANE search run.
#[derive(Clone, Debug)]
pub struct SaneSearchConfig {
    /// Supernet shape (layers, hidden width, dropout, activation).
    pub supernet: SupernetConfig,
    /// Search epochs `T` (paper: 200).
    pub epochs: usize,
    /// Learning rate for the operation weights `w` (paper: 5e-3).
    pub lr_w: f32,
    /// Weight decay for `w` (paper: 2e-4).
    pub wd_w: f32,
    /// Learning rate for the architecture parameters `α`.
    pub lr_alpha: f32,
    /// Weight decay for `α`.
    pub wd_alpha: f32,
    /// Inner learning rate ξ of Eq. (8). `0.0` selects the first-order
    /// approximation the paper uses in all experiments.
    pub xi: f32,
    /// Random-explore probability ε (Fig. 4a ablation; 0 = Algorithm 1).
    pub epsilon: f64,
    /// Record a derived-architecture checkpoint every this many epochs
    /// (0 disables; used to draw Figure 3's SANE trajectory).
    pub checkpoint_every: usize,
    /// Audit the mixed-supernet tape every this many epochs and emit the
    /// [`sane_autodiff::TapeReport`] as a `search.audit` telemetry event
    /// (0 disables). Debug aid: catches shape drift, dead `α`/`w`
    /// parameters and NaN onset during search without slowing the normal
    /// path.
    pub audit_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaneSearchConfig {
    fn default() -> Self {
        Self {
            supernet: SupernetConfig::default(),
            epochs: 200,
            lr_w: 5e-3,
            wd_w: 2e-4,
            lr_alpha: 3e-3,
            wd_alpha: 1e-3,
            xi: 0.0,
            epsilon: 0.0,
            checkpoint_every: 0,
            audit_every: 0,
            seed: 0,
        }
    }
}

/// Output of one SANE search run.
pub struct SaneSearchOutput {
    /// The derived top-1 architecture.
    pub arch: Architecture,
    /// Search wall-clock in seconds (the quantity in the paper's Table VII).
    pub wall_seconds: f64,
    /// `(seconds, derived architecture)` checkpoints for trajectory plots.
    pub checkpoints: Vec<(f64, Architecture)>,
    /// Final softmaxed `α` values.
    pub alphas: AlphaSnapshot,
}

/// Which loss a gradient computation targets.
#[derive(Copy, Clone, PartialEq, Eq)]
pub(crate) enum Split {
    Train,
    Val,
}

/// Runs the SANE search on a task.
pub fn sane_search(task: &Task, cfg: &SaneSearchConfig) -> SaneSearchOutput {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let net = Supernet::new(
        cfg.supernet.clone(),
        task.feature_dim(),
        task.num_outputs(),
        &mut store,
        &mut rng,
    );
    let mut opt_w = Adam::new(cfg.lr_w, cfg.wd_w);
    let mut opt_alpha = Adam::new(cfg.lr_alpha, cfg.wd_alpha);
    let mut checkpoints = Vec::new();

    let _search_span = tel::span_with(
        "search",
        &[("task", task.name().into()), ("epochs", cfg.epochs.into()), ("seed", cfg.seed.into())],
    );

    for epoch in 0..cfg.epochs {
        let _epoch_span = tel::span("search.epoch");
        let explore = cfg.epsilon > 0.0 && rng.gen_bool(cfg.epsilon);
        let mut loss_w = None;
        let mut grad_norm_w = None;
        if explore {
            let _step_span = tel::phase_span("search.explore_step", "explore_step");
            let path = net.sample_path(&mut rng);
            step_weights_sampled(task, &net, &mut store, &mut opt_w, &path, cfg.seed, epoch);
        } else {
            // Line 2–3 of Algorithm 1: update α on the validation loss.
            {
                let _step_span = tel::phase_span("search.arch_step", "arch_step");
                if cfg.xi > 0.0 {
                    step_alpha_second_order(task, &net, &mut store, &mut opt_alpha, cfg, epoch);
                } else {
                    let grads = mixed_grads(task, &net, &store, Split::Val, cfg.seed, epoch);
                    opt_alpha.step_subset(&mut store, &grads, net.alpha_params());
                    grads.recycle();
                }
            }
            // Line 4–5: update w on the training loss.
            let _step_span = tel::phase_span("search.weight_step", "weight_step");
            let (tape, loss) = mixed_loss_tape(task, &net, &store, Split::Train, cfg.seed, epoch);
            loss_w = Some(tape.value(loss).as_scalar());
            let mut grads = tape.backward(loss);
            if cfg.audit_every > 0 && (epoch + 1) % cfg.audit_every == 0 {
                let report = tape.audit_with_gradients(loss, Some(&store), &grads);
                obs::record_audit("search.audit", epoch, &report);
            }
            grad_norm_w = Some(grads.clip_global_norm(5.0));
            opt_w.step_subset(&mut store, &grads, net.weight_params());
            grads.recycle();
        }
        emit_epoch_telemetry(task, &net, &store, epoch, explore, loss_w, grad_norm_w);
        if cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0 {
            checkpoints.push((start.elapsed().as_secs_f64(), net.derive(&store)));
        }
    }

    let arch = if cfg.epsilon >= 0.999 {
        // α was (almost) never trained: pick among random paths by
        // weight-sharing validation accuracy instead.
        best_path_by_val(task, &net, &store, &mut rng, 10)
    } else {
        net.derive(&store)
    };
    let alphas = net.alpha_snapshot(&store);
    tel::info(
        "search.done",
        &[
            ("genotype", arch.describe().into()),
            ("wall_seconds", start.elapsed().as_secs_f64().into()),
        ],
    );
    SaneSearchOutput { arch, wall_seconds: start.elapsed().as_secs_f64(), checkpoints, alphas }
}

/// Per-epoch trace output: the softmaxed `α` distributions (one
/// `search.alpha` row per mixed op, enough to re-plot Fig. 3/4), the
/// derived genotype and the mixed-supernet validation metric, all in one
/// `search.epoch` event.
///
/// Everything here is read-only — the evaluation forward runs with
/// `training = false` on a fresh tape, consuming no search RNG — so a
/// search traced at `info` matches an untraced one bitwise (the
/// `telemetry_does_not_disturb_search` test holds this line). Gated on
/// [`tel::enabled`] so untraced runs skip the extra forward entirely.
fn emit_epoch_telemetry(
    task: &Task,
    net: &Supernet,
    store: &VarStore,
    epoch: usize,
    explore: bool,
    loss_w: Option<f32>,
    grad_norm_w: Option<f32>,
) {
    if !tel::enabled(tel::Level::Info) {
        return;
    }
    // Epoch evaluation (mixed-val forward) is its own attribution phase so
    // the profiler can separate it from arch/weight updates.
    let _eval_span = tel::phase_span("search.epoch_eval", "epoch_eval");
    let snap = net.alpha_snapshot(store);
    let groups: [(&'static str, &[Vec<f32>]); 2] = [("node", &snap.node), ("skip", &snap.skip)];
    for (group, rows) in groups {
        for (index, probs) in rows.iter().enumerate() {
            emit_alpha_row(epoch, group, index, probs);
        }
    }
    if !snap.layer.is_empty() {
        emit_alpha_row(epoch, "layer", 0, &snap.layer);
    }
    let mut fields: Vec<(&'static str, tel::Value)> = vec![
        ("epoch", epoch.into()),
        ("explore", explore.into()),
        ("genotype", net.derive(store).describe().into()),
        ("val_metric", eval_mixed_val(task, net, store).into()),
    ];
    if let Some(l) = loss_w {
        fields.push(("loss_w", l.into()));
    }
    if let Some(g) = grad_norm_w {
        fields.push(("grad_norm_w", g.into()));
    }
    tel::info("search.epoch", &fields);
}

fn emit_alpha_row(epoch: usize, group: &'static str, index: usize, probs: &[f32]) {
    tel::info(
        "search.alpha",
        &[
            ("epoch", epoch.into()),
            ("group", group.into()),
            ("index", index.into()),
            ("probs", probs.into()),
            ("entropy", obs::entropy(probs).into()),
        ],
    );
}

/// Validation metric of the fully-mixed supernet (no discretisation),
/// evaluated without dropout.
fn eval_mixed_val(task: &Task, net: &Supernet, store: &VarStore) -> f64 {
    match task {
        Task::Node(t) => {
            let mut tape = Tape::new(0);
            let x = tape.input(Arc::clone(&t.data.features));
            let logits = net.forward_mixed(&mut tape, store, &t.ctx, x, false);
            accuracy(tape.value(logits), &t.data.labels, &t.data.val)
        }
        Task::Multi(t) => eval_inductive(t, &MixedView(net), store, &t.data.val_graphs),
    }
}

/// Gradients of the fully-mixed supernet loss on one split.
pub(crate) fn mixed_grads(
    task: &Task,
    net: &Supernet,
    store: &VarStore,
    split: Split,
    seed: u64,
    epoch: usize,
) -> Gradients {
    let (tape, loss) = mixed_loss_tape(task, net, store, split, seed, epoch);
    tape.backward(loss)
}

/// Records the fully-mixed supernet forward + loss on one split and returns
/// the tape with the loss node, so callers can audit the tape as well as
/// run backward.
pub(crate) fn mixed_loss_tape(
    task: &Task,
    net: &Supernet,
    store: &VarStore,
    split: Split,
    seed: u64,
    epoch: usize,
) -> (Tape, Tensor) {
    let tape_seed = seed ^ ((epoch as u64) << 1 | u64::from(split == Split::Train));
    match task {
        Task::Node(t) => {
            let mut tape = Tape::new(tape_seed);
            let x = tape.input(Arc::clone(&t.data.features));
            let logits = net.forward_mixed(&mut tape, store, &t.ctx, x, true);
            let rows = match split {
                Split::Train => &t.data.train,
                Split::Val => &t.data.val,
            };
            let loss = tape.cross_entropy(logits, &t.data.labels, rows);
            (tape, loss)
        }
        Task::Multi(t) => {
            let graphs = match split {
                Split::Train => &t.data.train_graphs,
                Split::Val => &t.data.val_graphs,
            };
            let gi = graphs[epoch % graphs.len()];
            let g = &t.data.graphs[gi];
            let mut tape = Tape::new(tape_seed);
            let x = tape.input(Arc::clone(&g.features));
            let logits = net.forward_mixed(&mut tape, store, &t.ctxs[gi], x, true);
            let rows = g.all_nodes();
            let loss = tape.bce_with_logits(logits, &g.targets, &rows);
            (tape, loss)
        }
    }
}

/// Adds `scale * grads[id]` into each listed parameter's value.
fn apply_delta(store: &mut VarStore, ids: &[ParamId], grads: &Gradients, scale: f32) {
    for &id in ids {
        if let Some(g) = grads.get(id) {
            store.value_mut(id).add_scaled_assign(g, scale);
        }
    }
}

/// The full Eq. (8) update with the DARTS finite-difference Hessian-vector
/// approximation (see module docs).
fn step_alpha_second_order(
    task: &Task,
    net: &Supernet,
    store: &mut VarStore,
    opt_alpha: &mut Adam,
    cfg: &SaneSearchConfig,
    epoch: usize,
) {
    let w_ids: Vec<ParamId> = net.weight_params().to_vec();
    let backup = store.snapshot();

    // w' = w - ξ ∇w L_tra(w, α).
    let g_tra = mixed_grads(task, net, store, Split::Train, cfg.seed, epoch);
    apply_delta(store, &w_ids, &g_tra, -cfg.xi);
    g_tra.recycle();

    // ∇ L_val at (w', α): the α part is term 1, the w' part drives the
    // finite difference.
    let mut g_val = mixed_grads(task, net, store, Split::Val, cfg.seed, epoch);
    let gw_norm = g_val.l2_norm_subset(&w_ids);
    store.restore(&backup);

    if gw_norm > 1e-12 {
        let eps = 0.01 / gw_norm;
        apply_delta(store, &w_ids, &g_val, eps);
        let g_plus = mixed_grads(task, net, store, Split::Train, cfg.seed, epoch);
        store.restore(&backup);
        apply_delta(store, &w_ids, &g_val, -eps);
        let g_minus = mixed_grads(task, net, store, Split::Train, cfg.seed, epoch);
        store.restore(&backup);
        // g_val's weight slots also accumulate the correction; harmless —
        // the optimizer below only reads the α slots.
        g_val.add_scaled(&g_plus, -cfg.xi / (2.0 * eps));
        g_val.add_scaled(&g_minus, cfg.xi / (2.0 * eps));
        g_plus.recycle();
        g_minus.recycle();
    }
    opt_alpha.step_subset(store, &g_val, net.alpha_params());
    g_val.recycle();
}

fn step_weights_sampled(
    task: &Task,
    net: &Supernet,
    store: &mut VarStore,
    opt: &mut Adam,
    path: &SampledPath,
    seed: u64,
    epoch: usize,
) {
    let tape_seed = seed ^ ((epoch as u64) << 1 | 1);
    let mut grads = match task {
        Task::Node(t) => {
            let mut tape = Tape::new(tape_seed);
            let x = tape.input(Arc::clone(&t.data.features));
            let logits = net.forward_sampled(&mut tape, store, &t.ctx, x, true, path);
            let loss = tape.cross_entropy(logits, &t.data.labels, &t.data.train);
            tape.backward(loss)
        }
        Task::Multi(t) => {
            let gi = t.data.train_graphs[epoch % t.data.train_graphs.len()];
            let g = &t.data.graphs[gi];
            let mut tape = Tape::new(tape_seed);
            let x = tape.input(Arc::clone(&g.features));
            let logits = net.forward_sampled(&mut tape, store, &t.ctxs[gi], x, true, path);
            let rows = g.all_nodes();
            let loss = tape.bce_with_logits(logits, &g.targets, &rows);
            tape.backward(loss)
        }
    };
    grads.clip_global_norm(5.0);
    opt.step_subset(store, &grads, net.weight_params());
    grads.recycle();
}

/// Validation metric of one sampled path under the shared weights.
pub fn eval_path_val(task: &Task, net: &Supernet, store: &VarStore, path: &SampledPath) -> f64 {
    match task {
        Task::Node(t) => {
            let mut tape = Tape::new(0);
            let x = tape.input(Arc::clone(&t.data.features));
            let logits = net.forward_sampled(&mut tape, store, &t.ctx, x, false, path);
            accuracy(tape.value(logits), &t.data.labels, &t.data.val)
        }
        Task::Multi(t) => {
            let view = SampledView { net, path: path.clone() };
            eval_inductive(t, &view, store, &t.data.val_graphs)
        }
    }
}

fn best_path_by_val(
    task: &Task,
    net: &Supernet,
    store: &VarStore,
    rng: &mut StdRng,
    samples: usize,
) -> Architecture {
    let mut best: Option<(f64, SampledPath)> = None;
    for _ in 0..samples {
        let path = net.sample_path(rng);
        let val = eval_path_val(task, net, store, &path);
        if best.as_ref().map(|(b, _)| val > *b).unwrap_or(true) {
            best = Some((val, path));
        }
    }
    net.path_architecture(&best.expect("samples >= 1").1) // lint:allow(expect) -- samples >= 1
}

/// Helper for tests and `NodeTask` consumers.
pub fn node_task_of(task: &Task) -> Option<&NodeTask> {
    match task {
        Task::Node(t) => Some(t),
        _ => None,
    }
}

/// Helper for tests and `MultiTask` consumers.
pub fn multi_task_of(task: &Task) -> Option<&MultiTask> {
    match task {
        Task::Multi(t) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernet::SupernetConfig;
    use sane_data::CitationConfig;
    use sane_gnn::Activation;

    fn tiny_task() -> Task {
        Task::node(CitationConfig::cora().scaled(0.025).generate())
    }

    fn tiny_cfg(epochs: usize) -> SaneSearchConfig {
        SaneSearchConfig {
            supernet: SupernetConfig {
                k: 2,
                hidden: 8,
                dropout: 0.2,
                activation: Activation::Relu,
                use_layer_agg: true,
            },
            epochs,
            checkpoint_every: 0,
            ..Default::default()
        }
    }

    #[test]
    fn search_produces_valid_architecture() {
        let task = tiny_task();
        let out = sane_search(&task, &tiny_cfg(8));
        out.arch.validate();
        assert_eq!(out.arch.depth(), 2);
        assert!(out.arch.layer_agg.is_some());
        assert!(out.wall_seconds > 0.0);
    }

    #[test]
    fn alpha_moves_away_from_uniform() {
        let task = tiny_task();
        let out = sane_search(&task, &tiny_cfg(15));
        // After 15 epochs at least one node-aggregator mixture should have
        // drifted from the uniform 1/11.
        let max_dev = out
            .alphas
            .node
            .iter()
            .flat_map(|row| row.iter().map(|&p| (p - 1.0 / 11.0).abs()))
            .fold(0.0f32, f32::max);
        assert!(max_dev > 1e-4, "alphas did not move (max dev {max_dev})");
    }

    #[test]
    fn checkpoints_are_recorded() {
        let task = tiny_task();
        let mut cfg = tiny_cfg(9);
        cfg.checkpoint_every = 3;
        let out = sane_search(&task, &cfg);
        assert_eq!(out.checkpoints.len(), 3);
        assert!(out.checkpoints.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn epsilon_one_uses_weight_sharing_derivation() {
        let task = tiny_task();
        let mut cfg = tiny_cfg(6);
        cfg.epsilon = 1.0;
        let out = sane_search(&task, &cfg);
        out.arch.validate();
        // α stayed uniform: every softmax entry near 1/11.
        for row in &out.alphas.node {
            for &p in row {
                assert!((p - 1.0 / 11.0).abs() < 1e-3, "alpha trained under ε=1: {p}");
            }
        }
    }

    /// The supernet's real mixed forward + loss must satisfy every op's
    /// declared shape/arity contract and leave no dead parameters: every
    /// `α` and every `w` recorded on the tape must receive gradient.
    #[test]
    fn supernet_mixed_tape_audits_clean() {
        let task = tiny_task();
        let cfg = tiny_cfg(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = VarStore::new();
        let net = Supernet::new(
            cfg.supernet.clone(),
            task.feature_dim(),
            task.num_outputs(),
            &mut store,
            &mut rng,
        );
        let (tape, loss) = mixed_loss_tape(&task, &net, &store, Split::Train, cfg.seed, 0);
        let grads = tape.backward(loss);
        let report = tape.audit_with_gradients(loss, Some(&store), &grads);
        assert!(report.is_clean(), "supernet tape has findings:\n{report}");
        // Shared inputs (features, per-layer hidden states) feed several
        // mixture branches, so accumulation points must exist.
        assert!(report.fan.accumulation_points > 0, "{report}");
        assert_eq!(report.reachable_nodes, report.num_nodes, "{report}");
    }

    #[test]
    fn audit_flag_does_not_disturb_search() {
        let task = tiny_task();
        let mut cfg = tiny_cfg(4);
        cfg.audit_every = 2;
        let audited = sane_search(&task, &cfg);
        let plain = sane_search(&task, &tiny_cfg(4));
        assert_eq!(audited.arch, plain.arch, "auditing changed the search result");
    }

    #[test]
    fn search_is_deterministic_by_seed() {
        let task = tiny_task();
        let a = sane_search(&task, &tiny_cfg(6));
        let b = sane_search(&task, &tiny_cfg(6));
        assert_eq!(a.arch, b.arch);
    }

    #[test]
    fn second_order_search_runs_and_derives() {
        let task = tiny_task();
        let mut cfg = tiny_cfg(6);
        cfg.xi = cfg.lr_w;
        let out = sane_search(&task, &cfg);
        out.arch.validate();
        // The second-order correction must leave α finite and normalised.
        for row in out.alphas.node.iter().chain(out.alphas.skip.iter()) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn second_order_differs_from_first_order() {
        let task = tiny_task();
        let first = sane_search(&task, &tiny_cfg(10));
        let mut cfg2 = tiny_cfg(10);
        cfg2.xi = 0.1;
        let second = sane_search(&task, &cfg2);
        // The α trajectories must diverge (the final snapshots differ),
        // even if the derived argmax architecture happens to coincide.
        assert_ne!(
            format!("{:?}", first.alphas.node),
            format!("{:?}", second.alphas.node),
            "ξ > 0 had no effect on the α trajectory"
        );
    }
}
