//! Evaluation oracles: map a genome to a validation score, recording
//! wall-clock traces and caching repeats.
//!
//! The trial-and-error searchers (Random, Bayesian/TPE, GraphNAS) only see
//! this interface, so the same searcher runs over the SANE space, the
//! GraphNAS space (Table IX) and the MLP space (Table X), and with either
//! train-from-scratch or weight-sharing evaluation.

use std::collections::HashMap;
use std::time::Instant;

use sane_telemetry as tel;

use crate::search::preflight::PreflightError;
use crate::search::trace::{SearchTrace, TracePoint};
use crate::train::TrainOutcome;

/// The boxed evaluation closure held by a [`GenomeOracle`].
type EvalFn<'a> = Box<dyn FnMut(&[usize]) -> TrainOutcome + 'a>;

/// The boxed static pre-flight validator, if one is installed.
type PreflightFn<'a> = Box<dyn FnMut(&[usize]) -> Result<(), PreflightError> + 'a>;

/// A genome evaluator with bookkeeping.
pub struct GenomeOracle<'a> {
    eval: EvalFn<'a>,
    preflight: Option<PreflightFn<'a>>,
    cache: HashMap<Vec<usize>, TrainOutcome>,
    trace: SearchTrace,
    start: Instant,
    evaluations: usize,
    rejected: usize,
    best: Option<(Vec<usize>, TrainOutcome)>,
}

impl<'a> GenomeOracle<'a> {
    /// Wraps an evaluation function (typically: decode genome, train,
    /// return the outcome).
    pub fn new(eval: impl FnMut(&[usize]) -> TrainOutcome + 'a) -> Self {
        Self {
            eval: Box::new(eval),
            preflight: None,
            cache: HashMap::new(),
            trace: SearchTrace::default(),
            start: Instant::now(),
            evaluations: 0,
            rejected: 0,
            best: None,
        }
    }

    /// Installs a static pre-flight validator (e.g.
    /// [`SanePreflight::check`](crate::search::preflight::SanePreflight)).
    /// A genome the validator rejects never reaches the training closure:
    /// it scores `-inf` (so every searcher ranks it below any trained
    /// candidate), does not touch the best/trace bookkeeping, and is
    /// counted under `search.preflight.rejected`.
    pub fn with_preflight(
        mut self,
        preflight: impl FnMut(&[usize]) -> Result<(), PreflightError> + 'a,
    ) -> Self {
        self.preflight = Some(Box::new(preflight));
        self
    }

    /// Evaluates a genome (cached) and returns its validation metric.
    pub fn evaluate(&mut self, genome: &[usize]) -> f64 {
        if let Some(hit) = self.cache.get(genome) {
            return hit.val_metric;
        }
        if let Some(pf) = &mut self.preflight {
            tel::counter_add("search.preflight.checked", 1);
            if let Err(err) = pf(genome) {
                tel::counter_add("search.preflight.rejected", 1);
                tel::warn(
                    "search.preflight.rejected",
                    &[("genome", format!("{genome:?}").into()), ("error", err.to_string().into())],
                );
                self.rejected += 1;
                // Cache the sentinel so a stubborn proposer does not re-pay
                // the (cheap but nonzero) static analysis.
                self.cache.insert(
                    genome.to_vec(),
                    TrainOutcome {
                        val_metric: f64::NEG_INFINITY,
                        test_metric: f64::NEG_INFINITY,
                        epochs_run: 0,
                    },
                );
                return f64::NEG_INFINITY;
            }
        }
        let outcome = (self.eval)(genome);
        self.evaluations += 1;
        let is_better =
            self.best.as_ref().map(|(_, b)| outcome.val_metric > b.val_metric).unwrap_or(true);
        if is_better {
            self.best = Some((genome.to_vec(), outcome.clone()));
        }
        let best = self.best.as_ref().expect("just set"); // lint:allow(expect) -- just set
        self.trace.push(TracePoint {
            seconds: self.start.elapsed().as_secs_f64(),
            evaluations: self.evaluations,
            best_val: best.1.val_metric,
            test_at_best: best.1.test_metric,
        });
        let val = outcome.val_metric;
        self.cache.insert(genome.to_vec(), outcome);
        val
    }

    /// Number of (uncached) evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Number of genomes the pre-flight validator rejected before training.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The best genome and its outcome, if any evaluation happened.
    pub fn best(&self) -> Option<(&[usize], &TrainOutcome)> {
        self.best.as_ref().map(|(g, o)| (g.as_slice(), o))
    }

    /// The recorded trajectory.
    pub fn trace(&self) -> &SearchTrace {
        &self.trace
    }

    /// Consumes the oracle, returning `(best genome, best outcome, trace)`.
    ///
    /// # Panics
    /// Panics if no evaluation was performed.
    pub fn finish(self) -> (Vec<usize>, TrainOutcome, SearchTrace) {
        let (g, o) = self.best.expect("oracle finished without evaluations"); // lint:allow(expect) -- oracle finished without evaluations
        (g, o, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(val: f64) -> TrainOutcome {
        TrainOutcome { val_metric: val, test_metric: val - 0.05, epochs_run: 1 }
    }

    #[test]
    fn oracle_tracks_best_and_caches() {
        let mut calls = 0usize;
        {
            let mut oracle = GenomeOracle::new(|g: &[usize]| {
                calls += 1;
                outcome(g[0] as f64 / 10.0)
            });
            assert_eq!(oracle.evaluate(&[3]), 0.3);
            assert_eq!(oracle.evaluate(&[7]), 0.7);
            assert_eq!(oracle.evaluate(&[3]), 0.3); // cached
            assert_eq!(oracle.evaluations(), 2);
            let (g, o) = oracle.best().unwrap();
            assert_eq!(g, &[7]);
            assert!((o.test_metric - 0.65).abs() < 1e-12);
            assert_eq!(oracle.trace().points.len(), 2);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn trace_best_is_monotone() {
        let mut oracle = GenomeOracle::new(|g: &[usize]| outcome(g[0] as f64));
        for &v in &[5usize, 2, 9, 1] {
            oracle.evaluate(&[v]);
        }
        let best_vals: Vec<f64> = oracle.trace().points.iter().map(|p| p.best_val).collect();
        assert_eq!(best_vals, vec![5.0, 5.0, 9.0, 9.0]);
    }

    #[test]
    fn preflight_rejection_skips_training_and_bookkeeping() {
        let mut trained: Vec<Vec<usize>> = Vec::new();
        let mut oracle = GenomeOracle::new(|g: &[usize]| {
            trained.push(g.to_vec());
            outcome(g[0] as f64 / 10.0)
        })
        .with_preflight(|g: &[usize]| {
            if g[0] >= 5 {
                Err(PreflightError::GenomeValue { index: 0, value: g[0], cardinality: 5 })
            } else {
                Ok(())
            }
        });

        // Rejected: sentinel score, no training call, no trace point.
        assert_eq!(oracle.evaluate(&[7]), f64::NEG_INFINITY);
        assert_eq!(oracle.evaluations(), 0);
        assert_eq!(oracle.rejected(), 1);
        assert!(oracle.best().is_none());
        assert!(oracle.trace().points.is_empty());

        // The rejection is cached: re-proposing does not re-validate.
        assert_eq!(oracle.evaluate(&[7]), f64::NEG_INFINITY);
        assert_eq!(oracle.rejected(), 1);

        // A valid genome trains normally and outranks the sentinel.
        assert_eq!(oracle.evaluate(&[3]), 0.3);
        assert_eq!(oracle.best().unwrap().0, &[3]);
        drop(oracle);
        assert_eq!(trained, vec![vec![3]]);
    }

    #[test]
    #[should_panic(expected = "without evaluations")]
    fn finish_requires_evaluations() {
        let oracle = GenomeOracle::new(|_: &[usize]| outcome(0.0));
        let _ = oracle.finish();
    }
}
