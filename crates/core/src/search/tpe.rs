//! Tree-structured Parzen estimator (Bergstra et al. 2011) over
//! categorical spaces — the paper's "Bayesian" baseline (hyperopt).
//!
//! For purely categorical dimensions the Parzen estimators reduce to
//! smoothed categorical distributions: observations are split into a
//! "good" set (top `gamma` quantile by score) and a "bad" set, per-dimension
//! counts give `l(x)` and `g(x)`, and candidates drawn from `l` are ranked
//! by the expected-improvement proxy `l(x) / g(x)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::search::oracle::GenomeOracle;
use crate::space::CategoricalSpace;

/// TPE settings.
#[derive(Clone, Debug)]
pub struct TpeConfig {
    /// Total evaluations (paper: 200).
    pub samples: usize,
    /// Uniform random warm-up evaluations before the model kicks in.
    pub warmup: usize,
    /// Quantile separating good from bad observations.
    pub gamma: f64,
    /// Candidates drawn from `l(x)` per iteration.
    pub candidates: usize,
    /// Laplace smoothing added to every category count.
    pub smoothing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        Self { samples: 200, warmup: 20, gamma: 0.25, candidates: 24, smoothing: 1.0, seed: 0 }
    }
}

/// Per-dimension smoothed categorical distribution.
struct Parzen {
    probs: Vec<Vec<f64>>,
}

impl Parzen {
    fn fit(space: &CategoricalSpace, observations: &[&Vec<usize>], smoothing: f64) -> Self {
        let probs = space
            .dims
            .iter()
            .enumerate()
            .map(|(d, &card)| {
                let mut counts = vec![smoothing; card];
                for obs in observations {
                    counts[obs[d]] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                counts.into_iter().map(|c| c / total).collect()
            })
            .collect();
        Self { probs }
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        self.probs
            .iter()
            .map(|p| {
                let mut u: f64 = rng.gen();
                for (i, &pi) in p.iter().enumerate() {
                    if u < pi {
                        return i;
                    }
                    u -= pi;
                }
                p.len() - 1
            })
            .collect()
    }

    fn log_prob(&self, genome: &[usize]) -> f64 {
        self.probs.iter().zip(genome).map(|(p, &g)| p[g].ln()).sum()
    }
}

/// Runs TPE through the oracle.
pub fn tpe_search(space: &CategoricalSpace, oracle: &mut GenomeOracle<'_>, cfg: &TpeConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history: Vec<(Vec<usize>, f64)> = Vec::with_capacity(cfg.samples);

    for step in 0..cfg.samples {
        let genome = if step < cfg.warmup || history.len() < 4 {
            space.sample(&mut rng)
        } else {
            // Split observations by score quantile.
            let mut sorted: Vec<&(Vec<usize>, f64)> = history.iter().collect();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores")); // lint:allow(expect) -- finite scores
            let n_good =
                ((sorted.len() as f64 * cfg.gamma).ceil() as usize).clamp(1, sorted.len() - 1);
            let good: Vec<&Vec<usize>> = sorted[..n_good].iter().map(|(g, _)| g).collect();
            let bad: Vec<&Vec<usize>> = sorted[n_good..].iter().map(|(g, _)| g).collect();
            let l = Parzen::fit(space, &good, cfg.smoothing);
            let g = Parzen::fit(space, &bad, cfg.smoothing);
            // Draw candidates from l, rank by l/g.
            let mut best_candidate = l.sample(&mut rng);
            let mut best_score = l.log_prob(&best_candidate) - g.log_prob(&best_candidate);
            for _ in 1..cfg.candidates {
                let c = l.sample(&mut rng);
                let s = l.log_prob(&c) - g.log_prob(&c);
                if s > best_score {
                    best_score = s;
                    best_candidate = c;
                }
            }
            best_candidate
        };
        let val = oracle.evaluate(&genome);
        history.push((genome, val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainOutcome;

    /// A separable objective: score = Σ matches with a hidden target.
    fn run_tpe(samples: usize, seed: u64) -> f64 {
        let space = CategoricalSpace::new(vec![6; 6]);
        let target = [1usize, 4, 2, 0, 5, 3];
        let mut oracle = GenomeOracle::new(|g: &[usize]| {
            let score = g.iter().zip(&target).filter(|(a, b)| a == b).count() as f64;
            TrainOutcome { val_metric: score, test_metric: score, epochs_run: 1 }
        });
        tpe_search(
            &space,
            &mut oracle,
            &TpeConfig { samples, warmup: 10, seed, ..TpeConfig::default() },
        );
        oracle.best().unwrap().1.val_metric
    }

    #[test]
    fn tpe_beats_random_on_separable_objective() {
        // With 6^6 = 46,656 configurations and 80 samples, random search
        // rarely exceeds 4/6 matches; TPE should consistently reach ≥ 5.
        let best = run_tpe(80, 3);
        assert!(best >= 5.0, "tpe best {best}");
    }

    #[test]
    fn tpe_is_deterministic_by_seed() {
        assert_eq!(run_tpe(40, 11), run_tpe(40, 11));
    }

    #[test]
    fn parzen_fit_is_a_distribution() {
        let space = CategoricalSpace::new(vec![3, 2]);
        let obs1 = vec![0usize, 1];
        let obs2 = vec![2usize, 1];
        let obs = vec![&obs1, &obs2];
        let p = Parzen::fit(&space, &obs, 0.5);
        for dim in &p.probs {
            let s: f64 = dim.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(dim.iter().all(|&v| v > 0.0));
        }
        // Observed categories get more mass than unobserved.
        assert!(p.probs[0][0] > p.probs[0][1]);
    }

    #[test]
    fn parzen_sampling_respects_probs() {
        let space = CategoricalSpace::new(vec![2]);
        let heavy = vec![0usize];
        let obs = vec![&heavy, &heavy, &heavy, &heavy];
        let p = Parzen::fit(&space, &obs, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let zeros = (0..200).filter(|_| p.sample(&mut rng)[0] == 0).count();
        assert!(zeros > 150, "sampled zero {zeros}/200 times");
    }
}
