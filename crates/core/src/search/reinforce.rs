//! REINFORCE controller — the GraphNAS baseline (Gao et al. 2020).
//!
//! GraphNAS trains an RL controller that emits one categorical decision
//! per search-space dimension; the reward is the validation metric of the
//! sampled architecture. We implement the policy as independent
//! per-dimension logits trained with REINFORCE and an exponential-moving-
//! average baseline. The weight-sharing variant ("GraphNAS-WS") differs
//! only in the oracle it is given: a shared-weight evaluator instead of
//! train-from-scratch (see [`crate::search::ws`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::search::oracle::GenomeOracle;
use crate::space::CategoricalSpace;

/// REINFORCE controller settings.
#[derive(Clone, Debug)]
pub struct ReinforceConfig {
    /// Controller episodes = architecture evaluations (paper: 200).
    pub episodes: usize,
    /// Policy-gradient learning rate.
    pub lr: f64,
    /// EMA decay of the reward baseline.
    pub baseline_decay: f64,
    /// Entropy bonus weight (keeps the policy exploring).
    pub entropy_weight: f64,
    /// Architectures sampled from the trained controller at the end; the
    /// best by (already recorded) validation score is the result.
    pub final_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self {
            episodes: 200,
            lr: 0.1,
            baseline_decay: 0.9,
            entropy_weight: 1e-3,
            final_samples: 10,
            seed: 0,
        }
    }
}

/// The categorical policy: independent logits per decision.
pub struct Controller {
    logits: Vec<Vec<f64>>,
}

impl Controller {
    /// Uniform-initialised policy for `space`.
    pub fn new(space: &CategoricalSpace) -> Self {
        Self { logits: space.dims.iter().map(|&d| vec![0.0; d]).collect() }
    }

    fn probs(&self, dim: usize) -> Vec<f64> {
        let row = &self.logits[dim];
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|v| v / sum).collect()
    }

    /// Samples a genome from the current policy.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        (0..self.logits.len())
            .map(|d| {
                let p = self.probs(d);
                let mut u: f64 = rng.gen();
                for (i, &pi) in p.iter().enumerate() {
                    if u < pi {
                        return i;
                    }
                    u -= pi;
                }
                p.len() - 1
            })
            .collect()
    }

    /// The most likely genome under the current policy.
    pub fn argmax(&self) -> Vec<usize> {
        self.logits
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits")) // lint:allow(expect) -- finite logits
                    .map(|(i, _)| i)
                    .expect("non-empty dim") // lint:allow(expect) -- non-empty dim
            })
            .collect()
    }

    /// REINFORCE update: `logits += lr * advantage * ∇ log π(genome)`,
    /// plus an entropy bonus.
    pub fn update(&mut self, genome: &[usize], advantage: f64, lr: f64, entropy_weight: f64) {
        for (d, &choice) in genome.iter().enumerate() {
            let p = self.probs(d);
            for (i, logit) in self.logits[d].iter_mut().enumerate() {
                let indicator = if i == choice { 1.0 } else { 0.0 };
                let grad_logp = indicator - p[i];
                // Entropy gradient: -Σ p log p w.r.t. logits = -p (log p + H)
                let entropy_grad = -p[i] * (p[i].ln() + entropy(&p));
                *logit += lr * (advantage * grad_logp + entropy_weight * entropy_grad);
            }
        }
    }
}

fn entropy(p: &[f64]) -> f64 {
    -p.iter().filter(|&&v| v > 0.0).map(|&v| v * v.ln()).sum::<f64>()
}

/// Runs the REINFORCE search through the oracle.
pub fn reinforce_search(
    space: &CategoricalSpace,
    oracle: &mut GenomeOracle<'_>,
    cfg: &ReinforceConfig,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut controller = Controller::new(space);
    let mut baseline = 0.0f64;
    let mut baseline_initialised = false;

    for _ in 0..cfg.episodes {
        let genome = controller.sample(&mut rng);
        let reward = oracle.evaluate(&genome);
        if !baseline_initialised {
            baseline = reward;
            baseline_initialised = true;
        }
        let advantage = reward - baseline;
        baseline = cfg.baseline_decay * baseline + (1.0 - cfg.baseline_decay) * reward;
        controller.update(&genome, advantage, cfg.lr, cfg.entropy_weight);
    }

    // Final sampling phase (the paper samples 10 and keeps the best 5 by
    // validation accuracy; the oracle records validation scores, so
    // evaluating them here folds the selection into `oracle.best()`).
    for _ in 0..cfg.final_samples {
        let genome = controller.sample(&mut rng);
        oracle.evaluate(&genome);
    }
    oracle.evaluate(&controller.argmax());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainOutcome;

    #[test]
    fn controller_concentrates_on_rewarding_choice() {
        let space = CategoricalSpace::new(vec![4]);
        let mut controller = Controller::new(&space);
        let mut rng = StdRng::seed_from_u64(0);
        // Reward only choice 2.
        for _ in 0..300 {
            let g = controller.sample(&mut rng);
            let reward = if g[0] == 2 { 1.0 } else { 0.0 };
            controller.update(&g, reward - 0.25, 0.2, 0.0);
        }
        assert_eq!(controller.argmax(), vec![2]);
        let p = controller.probs(0);
        assert!(p[2] > 0.8, "policy prob {p:?}");
    }

    #[test]
    fn reinforce_search_finds_good_genome() {
        let space = CategoricalSpace::new(vec![5; 4]);
        let target = [3usize, 1, 4, 0];
        let mut oracle = GenomeOracle::new(|g: &[usize]| {
            let score = g.iter().zip(&target).filter(|(a, b)| a == b).count() as f64 / 4.0;
            TrainOutcome { val_metric: score, test_metric: score, epochs_run: 1 }
        });
        reinforce_search(
            &space,
            &mut oracle,
            &ReinforceConfig { episodes: 150, seed: 5, ..ReinforceConfig::default() },
        );
        let best = oracle.best().unwrap().1.val_metric;
        assert!(best >= 0.75, "reinforce best {best}");
    }

    #[test]
    fn entropy_bonus_keeps_probs_soft() {
        let space = CategoricalSpace::new(vec![3]);
        let mut c = Controller::new(&space);
        // Hammer choice 0 with reward but large entropy weight.
        for _ in 0..200 {
            c.update(&[0], 1.0, 0.1, 0.5);
        }
        let p = c.probs(0);
        assert!(p[0] < 0.999, "entropy failed to regularise: {p:?}");
    }

    #[test]
    fn update_is_probability_preserving() {
        let space = CategoricalSpace::new(vec![6]);
        let mut c = Controller::new(&space);
        c.update(&[1], 0.5, 0.3, 0.01);
        let p = c.probs(0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > 1.0 / 6.0, "rewarded choice should gain mass");
    }
}
