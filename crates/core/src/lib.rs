//! # sane-core
//!
//! SANE — *Search to Aggregate NEighborhood* (Zhao, Yao & Tu, ICDE 2021):
//! differentiable neural architecture search for graph neural networks,
//! reproduced in Rust.
//!
//! The crate provides:
//!
//! * [`space`] — the SANE search space (Table I; `11^K · 2^K · 3`
//!   architectures), plus the GraphNAS-style space of Table IX and the
//!   MLP-aggregator space of Table X, all behind one categorical encoding.
//! * [`supernet`] — the continuous relaxation of Eq. (2)–(5): every
//!   candidate op instantiated once, mixed by softmaxed `α` parameters.
//! * [`search`] — Algorithm 1 (first-order bi-level gradient descent) with
//!   the ε-random-explore ablation, and the baselines: Random, Bayesian
//!   (TPE), GraphNAS (REINFORCE) with and without weight sharing.
//! * [`train`] — shared training / evaluation loops for transductive and
//!   inductive tasks.
//! * [`hyper`] — the post-search hyper-parameter fine-tuning stage
//!   (hyperopt stand-in, Table XII).
//!
//! ## Quick start
//!
//! ```
//! use sane_core::prelude::*;
//! use sane_data::CitationConfig;
//!
//! // A small synthetic citation graph and a short search budget so the
//! // example runs in seconds; scale both up for real experiments.
//! let task = Task::node(CitationConfig::cora().scaled(0.02).generate());
//! let cfg = SaneSearchConfig {
//!     supernet: SupernetConfig { k: 2, hidden: 8, ..Default::default() },
//!     epochs: 5,
//!     ..Default::default()
//! };
//! let result = sane_search(&task, &cfg);
//! println!("searched architecture: {}", result.arch.describe());
//! ```

#![forbid(unsafe_code)]

pub mod graphcls;
pub mod hyper;
mod obs;
pub mod search;
pub mod space;
pub mod supernet;
pub mod train;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::hyper::{fine_tune, FineTuneConfig};
    pub use crate::search::{
        evolution_search, random_search, reinforce_search, sane_search, tpe_search,
        EvolutionConfig, GenomeOracle, PreflightError, RandomSearchConfig, ReinforceConfig,
        SanePreflight, SaneSearchConfig, SearchTrace, TpeConfig, WsEvaluator,
    };
    pub use crate::space::{CategoricalSpace, GraphNasSpace, MlpSpace, SaneSpace};
    pub use crate::supernet::{SampledPath, Supernet, SupernetConfig};
    pub use crate::train::{
        repeated_test_metrics, train_architecture, Task, TrainConfig, TrainOutcome,
    };
    pub use sane_gnn::{Architecture, LayerAggKind, ModelHyper, NodeAggKind, SkipOp};
}
