//! Whole-graph classification — the paper's future-work extension
//! (Section V): the SANE search space augmented with searchable **graph
//! pooling** ops, plus trainers and a differentiable supernet for the
//! graph-level task.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sane_autodiff::metrics::argmax_row;
use sane_autodiff::optim::Adam;
use sane_autodiff::{glorot_init, Matrix, ParamId, Tape, Tensor, VarStore};
use sane_data::GraphClsDataset;
use sane_gnn::{
    Architecture, GraphClsModel, GraphContext, GraphPooling, Linear, ModelHyper, PoolingKind,
};

use crate::space::{CategoricalSpace, SaneSpace};
use crate::supernet::{Supernet, SupernetConfig};
use crate::train::{TrainConfig, TrainOutcome};

/// A prepared graph-classification task.
pub struct GraphClsTask {
    /// The dataset.
    pub data: GraphClsDataset,
    /// One context per graph.
    pub ctxs: Vec<GraphContext>,
}

impl GraphClsTask {
    /// Builds contexts for every graph.
    pub fn new(data: GraphClsDataset) -> Self {
        let ctxs = data.graphs.iter().map(|g| GraphContext::new(&g.graph)).collect();
        Self { data, ctxs }
    }
}

/// The extended genotype: a node-level architecture plus a pooling readout.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphClsGenotype {
    /// The node-embedding architecture.
    pub arch: Architecture,
    /// The pooling readout.
    pub pooling: PoolingKind,
}

impl GraphClsGenotype {
    /// Human-readable description.
    pub fn describe(&self) -> String {
        format!("{} pooling={}", self.arch.describe(), self.pooling.name())
    }
}

/// The extended search space: `SaneSpace x O_p`
/// (`11^K · 2^K · 3 · 4` architectures).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphClsSpace {
    /// Number of GNN layers `K`.
    pub k: usize,
}

impl GraphClsSpace {
    /// The categorical encoding: the SANE dims plus one pooling dim.
    pub fn space(&self) -> CategoricalSpace {
        let mut dims = SaneSpace { k: self.k }.space().dims;
        dims.push(PoolingKind::ALL.len());
        CategoricalSpace::new(dims)
    }

    /// Decodes a genome.
    pub fn decode(&self, genome: &[usize]) -> GraphClsGenotype {
        self.space().check(genome);
        let arch = SaneSpace { k: self.k }.decode(&genome[..genome.len() - 1]);
        GraphClsGenotype { arch, pooling: PoolingKind::ALL[genome[genome.len() - 1]] }
    }
}

/// Mini-batch size (graphs per optimisation step).
const BATCH: usize = 16;

fn eval_split(
    task: &GraphClsTask,
    model: &GraphClsModel,
    store: &VarStore,
    split: &[usize],
) -> f64 {
    let mut correct = 0usize;
    for &gi in split {
        let g = &task.data.graphs[gi];
        let mut tape = Tape::new(0);
        let x = tape.input(Arc::clone(&g.features));
        let logits = model.forward(&mut tape, store, &task.ctxs[gi], x, false);
        if argmax_row(tape.value(logits).row(0)) == g.label as usize {
            correct += 1;
        }
    }
    correct as f64 / split.len().max(1) as f64
}

/// Trains a graph classifier and reports validation/test accuracy at the
/// best-validation epoch.
pub fn train_graph_classifier(
    task: &GraphClsTask,
    genotype: &GraphClsGenotype,
    hyper: &ModelHyper,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let model = GraphClsModel::new(
        genotype.arch.clone(),
        genotype.pooling,
        task.data.feature_dim,
        task.data.num_classes,
        hyper.clone(),
        &mut store,
        &mut rng,
    );
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay);

    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    let mut since_best = 0usize;
    let mut epochs_run = 0;
    let mut order_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A11);
    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        // Shuffle so mini-batches mix classes (the split lists graphs in
        // class-sorted order).
        let mut order = task.data.train.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rand::Rng::gen_range(&mut order_rng, 0..=i));
        }
        for (b, batch) in order.chunks(BATCH).enumerate() {
            let mut tape = Tape::new(cfg.seed.wrapping_add((epoch * 977 + b) as u64));
            let mut rows = Vec::with_capacity(batch.len());
            for &gi in batch {
                let g = &task.data.graphs[gi];
                let x = tape.input(Arc::clone(&g.features));
                rows.push(model.forward(&mut tape, &store, &task.ctxs[gi], x, true));
            }
            // Stack the per-graph logit rows; CE over the batch.
            let logits = if rows.len() == 1 { rows[0] } else { stack_rows(&mut tape, &rows) };
            let labels =
                Arc::new(batch.iter().map(|&gi| task.data.graphs[gi].label).collect::<Vec<_>>());
            let idx = Arc::new((0..batch.len() as u32).collect::<Vec<_>>());
            let loss = tape.cross_entropy(logits, &labels, &idx);
            let mut grads = tape.backward(loss);
            grads.clip_global_norm(5.0);
            opt.step(&mut store, &grads);
            grads.recycle();
        }
        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let val = eval_split(task, &model, &store, &task.data.val);
            if val > best_val {
                best_val = val;
                test_at_best = eval_split(task, &model, &store, &task.data.test);
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience && epoch + 1 >= cfg.epochs / 4 {
                    break;
                }
            }
        }
    }
    TrainOutcome { val_metric: best_val.max(0.0), test_metric: test_at_best, epochs_run }
}

/// Vertically stacks `1 x c` rows into an `m x c` matrix. Implemented with
/// per-row scatter through gather indices (differentiable by composition).
fn stack_rows(tape: &mut Tape, rows: &[Tensor]) -> Tensor {
    // Concatenate along columns after transposing is wasteful; instead sum
    // padded one-hot placements. For the small batch sizes used here a
    // simpler construction works: concat columns of transposed rows is not
    // available, so place each row by multiplying a fixed m x 1 indicator.
    let m = rows.len();
    let mut acc: Option<Tensor> = None;
    for (i, &row) in rows.iter().enumerate() {
        let mut indicator = Matrix::zeros(m, 1);
        indicator.set(i, 0, 1.0);
        let ind = tape.constant(indicator);
        let placed = tape.matmul(ind, row);
        acc = Some(match acc {
            Some(a) => tape.add(a, placed),
            None => placed,
        });
    }
    acc.expect("rows is non-empty") // lint:allow(expect) -- rows is non-empty
}

/// Configuration of the differentiable graph-classification search.
#[derive(Clone, Debug)]
pub struct GraphClsSearchConfig {
    /// Supernet shape.
    pub supernet: SupernetConfig,
    /// Search epochs.
    pub epochs: usize,
    /// Learning rate for `w`.
    pub lr_w: f32,
    /// Learning rate for `α` (including the pooling mixture).
    pub lr_alpha: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphClsSearchConfig {
    fn default() -> Self {
        Self {
            supernet: SupernetConfig { k: 2, hidden: 16, dropout: 0.2, ..Default::default() },
            epochs: 40,
            lr_w: 5e-3,
            lr_alpha: 3e-3,
            seed: 0,
        }
    }
}

/// Differentiable search over architecture *and* pooling: the node-level
/// supernet produces embeddings, four pooling candidates are mixed by a
/// softmaxed `α_p`, and the bi-level alternation of Algorithm 1 runs on
/// batched graph-level losses.
pub fn graphcls_search(task: &GraphClsTask, cfg: &GraphClsSearchConfig) -> GraphClsGenotype {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let hidden = cfg.supernet.hidden;
    // The supernet's classifier head becomes a projection to `hidden`.
    let net =
        Supernet::new(cfg.supernet.clone(), task.data.feature_dim, hidden, &mut store, &mut rng);
    let poolings: Vec<GraphPooling> = PoolingKind::ALL
        .iter()
        .map(|&k| GraphPooling::new(k, &mut store, &mut rng, hidden))
        .collect();
    let alpha_pool =
        store.add("alpha_pool", Matrix::from_fn(1, PoolingKind::ALL.len(), |_, _| 0.0));
    let classifier =
        Linear::new(&mut store, &mut rng, "graphcls.head", hidden, task.data.num_classes);

    let mut w_params: Vec<ParamId> = net.weight_params().to_vec();
    for p in &poolings {
        w_params.extend(p.params());
    }
    w_params.extend(classifier.params());
    let mut alpha_params: Vec<ParamId> = net.alpha_params().to_vec();
    alpha_params.push(alpha_pool);

    let mut opt_w = Adam::new(cfg.lr_w, 1e-4);
    let mut opt_alpha = Adam::new(cfg.lr_alpha, 1e-3);

    // Mixed forward for one graph: supernet embeddings -> mixed pooling ->
    // classifier logits (1 x C).
    let forward_one = |tape: &mut Tape, store: &VarStore, gi: usize, training: bool| -> Tensor {
        let g = &task.data.graphs[gi];
        let x = tape.input(Arc::clone(&g.features));
        let emb = net.forward_mixed(tape, store, &task.ctxs[gi], x, training);
        let ap = tape.param(store, alpha_pool);
        let wp = tape.softmax_rows(ap);
        let mut mixed: Option<Tensor> = None;
        for (j, pool) in poolings.iter().enumerate() {
            let pooled = pool.forward(tape, store, emb);
            let w_j = tape.slice_cols(wp, j, j + 1);
            let scaled = tape.mul_scalar_tensor(pooled, w_j);
            mixed = Some(match mixed {
                Some(acc) => tape.add(acc, scaled),
                None => scaled,
            });
        }
        classifier.forward(tape, store, mixed.expect("O_p is non-empty")) // lint:allow(expect) -- O_p is non-empty
    };

    let batch_grads = |store: &VarStore, split: &[usize], seed: u64| {
        let mut tape = Tape::new(seed);
        let batch: Vec<usize> = split.iter().copied().take(BATCH).collect();
        let rows: Vec<Tensor> =
            batch.iter().map(|&gi| forward_one(&mut tape, store, gi, true)).collect();
        let logits = if rows.len() == 1 { rows[0] } else { stack_rows(&mut tape, &rows) };
        let labels =
            Arc::new(batch.iter().map(|&gi| task.data.graphs[gi].label).collect::<Vec<_>>());
        let idx = Arc::new((0..batch.len() as u32).collect::<Vec<_>>());
        let loss = tape.cross_entropy(logits, &labels, &idx);
        tape.backward(loss)
    };

    for epoch in 0..cfg.epochs {
        // Rotate which slice of each split forms the step's batch.
        let rot = |split: &[usize], e: usize| -> Vec<usize> {
            let mut v = split.to_vec();
            let shift = (e * BATCH) % v.len().max(1);
            v.rotate_left(shift);
            v
        };
        let val_batch = rot(&task.data.val, epoch);
        let grads = batch_grads(&store, &val_batch, cfg.seed ^ (epoch as u64) << 1);
        opt_alpha.step_subset(&mut store, &grads, &alpha_params);
        grads.recycle();

        let train_batch = rot(&task.data.train, epoch);
        let mut grads = batch_grads(&store, &train_batch, cfg.seed ^ ((epoch as u64) << 1 | 1));
        grads.clip_global_norm(5.0);
        opt_w.step_subset(&mut store, &grads, &w_params);
        grads.recycle();
    }

    let arch = net.derive(&store);
    let pooling = PoolingKind::ALL[argmax_row(store.value(alpha_pool).row(0))];
    GraphClsGenotype { arch, pooling }
}

/// Seeded helper mirroring `glorot_init` for external callers building
/// custom graph-level heads.
pub fn init_readout(dim: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    glorot_init(dim, 1, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sane_data::GraphClsConfig;
    use sane_gnn::NodeAggKind;

    fn tiny_task() -> GraphClsTask {
        GraphClsTask::new(GraphClsConfig::topology().scaled(0.12).generate())
    }

    #[test]
    fn space_size_is_sane_times_pooling() {
        let s = GraphClsSpace { k: 3 };
        assert_eq!(s.space().size(), 31_944 * 4);
        let genome = vec![0usize; 2 * 3 + 1 + 1];
        let g = s.decode(&genome);
        assert_eq!(g.pooling, PoolingKind::Sum);
        assert_eq!(g.arch.depth(), 3);
    }

    #[test]
    fn classifier_learns_topology_families() {
        let task = tiny_task();
        let genotype = GraphClsGenotype {
            arch: Architecture::uniform(NodeAggKind::Gin, 2, None),
            pooling: PoolingKind::Mean,
        };
        let hyper = ModelHyper { hidden: 16, dropout: 0.2, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 40, patience: 0, ..TrainConfig::default() };
        let out = train_graph_classifier(&task, &genotype, &hyper, &cfg);
        // 3 balanced classes: random = 1/3. Topology families are easy for
        // a GIN + mean readout.
        assert!(out.val_metric > 0.55, "val acc {}", out.val_metric);
    }

    #[test]
    fn differentiable_search_returns_valid_genotype() {
        let task = tiny_task();
        let cfg = GraphClsSearchConfig { epochs: 6, ..Default::default() };
        let genotype = graphcls_search(&task, &cfg);
        genotype.arch.validate();
        assert!(PoolingKind::ALL.contains(&genotype.pooling));
        // Decode/encode through the categorical space roundtrips the arch.
        let space = GraphClsSpace { k: 2 };
        let mut genome = SaneSpace { k: 2 }.encode(&genotype.arch);
        genome.push(PoolingKind::ALL.iter().position(|&p| p == genotype.pooling).unwrap());
        assert_eq!(space.decode(&genome), genotype);
    }

    #[test]
    fn stack_rows_orders_and_grads() {
        let mut store = VarStore::new();
        let p = store.add("x", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut tape = Tape::new(0);
        let a = tape.param(&store, p);
        let b = tape.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let stacked = stack_rows(&mut tape, &[a, b]);
        assert_eq!(tape.value(stacked).row(0), &[1.0, 2.0]);
        assert_eq!(tape.value(stacked).row(1), &[3.0, 4.0]);
        let loss = tape.sum_all(stacked);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(p).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn training_is_deterministic() {
        let task = tiny_task();
        let genotype = GraphClsGenotype {
            arch: Architecture::uniform(NodeAggKind::SageMean, 1, None),
            pooling: PoolingKind::Sum,
        };
        let hyper = ModelHyper { hidden: 8, dropout: 0.0, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let a = train_graph_classifier(&task, &genotype, &hyper, &cfg);
        let b = train_graph_classifier(&task, &genotype, &hyper, &cfg);
        assert_eq!(a.val_metric, b.val_metric);
    }
}
