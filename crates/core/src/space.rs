//! Search-space definitions.
//!
//! Every space is presented to the searchers as a [`CategoricalSpace`] — a
//! vector of categorical decision dimensions — plus a decoder into a
//! concrete model specification. This lets Random, Bayesian/TPE and the
//! RL controller run unchanged over the SANE space (Table I), the
//! GraphNAS-style hyper-parameter space (Table IX) and the MLP-aggregator
//! space (Table X).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use sane_gnn::{Activation, AggChoice, Architecture, LayerAggKind, NodeAggKind, SkipOp};

/// A product of categorical decisions; `dims[i]` is the cardinality of
/// decision `i`. Genomes are index vectors.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalSpace {
    /// Cardinality of each decision.
    pub dims: Vec<usize>,
}

impl CategoricalSpace {
    /// Creates a space.
    ///
    /// # Panics
    /// Panics if any dimension has cardinality zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "every decision needs at least one option");
        Self { dims }
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True for a space with no decisions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Total number of architectures (saturating at `u128::MAX`).
    pub fn size(&self) -> u128 {
        self.dims.iter().fold(1u128, |acc, &d| acc.saturating_mul(d as u128))
    }

    /// Uniformly samples a genome.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        self.dims.iter().map(|&d| rng.gen_range(0..d)).collect()
    }

    /// Checks a genome is well-formed for this space.
    ///
    /// # Panics
    /// Panics if the genome length or any entry is out of range.
    pub fn check(&self, genome: &[usize]) {
        assert_eq!(genome.len(), self.dims.len(), "genome length mismatch");
        for (i, (&g, &d)) in genome.iter().zip(&self.dims).enumerate() {
            assert!(g < d, "genome[{i}] = {g} out of range 0..{d}");
        }
    }

    /// Mutates one random decision to a new value (used by tests and the
    /// RL controller's exploration).
    pub fn mutate(&self, genome: &mut [usize], rng: &mut StdRng) {
        self.check(genome);
        let i = rng.gen_range(0..self.dims.len());
        if self.dims[i] > 1 {
            let mut v = rng.gen_range(0..self.dims[i] - 1);
            if v >= genome[i] {
                v += 1;
            }
            genome[i] = v;
        }
    }
}

/// The SANE search space (Table I): `K` node aggregators from `O_n` (11
/// options), `K` skip ops from `O_s` (2 options) and one layer aggregator
/// from `O_l` (3 options). For `K = 3` this is `11³ · 2³ · 3 = 31,944`
/// architectures, as reported in Section III-C of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SaneSpace {
    /// Number of GNN layers `K`.
    pub k: usize,
}

impl SaneSpace {
    /// The paper's default 3-layer space.
    pub fn paper() -> Self {
        Self { k: 3 }
    }

    /// The categorical encoding: `K` node dims, `K` skip dims, 1 layer dim.
    pub fn space(&self) -> CategoricalSpace {
        let mut dims = vec![NodeAggKind::ALL.len(); self.k];
        dims.extend(vec![SkipOp::ALL.len(); self.k]);
        dims.push(LayerAggKind::ALL.len());
        CategoricalSpace::new(dims)
    }

    /// Decodes a genome into an [`Architecture`].
    ///
    /// # Panics
    /// Panics on a malformed genome.
    pub fn decode(&self, genome: &[usize]) -> Architecture {
        self.space().check(genome);
        let node_aggs =
            (0..self.k).map(|l| AggChoice::Standard(NodeAggKind::ALL[genome[l]])).collect();
        let skips = (0..self.k).map(|l| SkipOp::ALL[genome[self.k + l]]).collect();
        let layer_agg = Some(LayerAggKind::ALL[genome[2 * self.k]]);
        Architecture { node_aggs, skips, layer_agg }
    }

    /// Encodes an architecture back into a genome.
    ///
    /// # Panics
    /// Panics if the architecture does not belong to this space (wrong
    /// depth, non-standard aggregators, or no layer aggregator).
    pub fn encode(&self, arch: &Architecture) -> Vec<usize> {
        assert_eq!(arch.depth(), self.k, "architecture depth mismatch");
        let mut genome = Vec::with_capacity(2 * self.k + 1);
        for choice in &arch.node_aggs {
            let AggChoice::Standard(kind) = choice else {
                panic!("architecture uses a non-O_n aggregator");
            };
            genome.push(NodeAggKind::ALL.iter().position(|k| k == kind).expect("kind in O_n"));
            // lint:allow(expect) -- kind in O_n
        }
        for skip in &arch.skips {
            genome.push(SkipOp::ALL.iter().position(|s| s == skip).expect("skip in O_s"));
            // lint:allow(expect) -- skip in O_s
        }
        let la = arch.layer_agg.expect("SANE architectures have a layer aggregator"); // lint:allow(expect) -- SANE architectures have a layer aggregator
        genome.push(LayerAggKind::ALL.iter().position(|l| *l == la).expect("layer agg in O_l")); // lint:allow(expect) -- layer agg in O_l
        genome
    }
}

/// The MLP-aggregator space of Table X: per layer a width
/// `w ∈ {8, 16, 32, 64}` and depth `d ∈ {1, 2, 3}`, with the SANE skip /
/// layer-aggregator decisions unchanged.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlpSpace {
    /// Number of GNN layers `K`.
    pub k: usize,
}

/// MLP widths searched in Table X.
pub const MLP_WIDTHS: [usize; 4] = [8, 16, 32, 64];
/// MLP depths searched in Table X.
pub const MLP_DEPTHS: [usize; 3] = [1, 2, 3];

impl MlpSpace {
    /// Encoding: per layer `(width, depth)`, then `K` skips, then the
    /// layer aggregator.
    pub fn space(&self) -> CategoricalSpace {
        let mut dims = Vec::with_capacity(3 * self.k + 1);
        for _ in 0..self.k {
            dims.push(MLP_WIDTHS.len());
            dims.push(MLP_DEPTHS.len());
        }
        dims.extend(vec![SkipOp::ALL.len(); self.k]);
        dims.push(LayerAggKind::ALL.len());
        CategoricalSpace::new(dims)
    }

    /// Decodes a genome into an [`Architecture`] of MLP aggregators.
    pub fn decode(&self, genome: &[usize]) -> Architecture {
        self.space().check(genome);
        let node_aggs = (0..self.k)
            .map(|l| AggChoice::Mlp(MLP_WIDTHS[genome[2 * l]], MLP_DEPTHS[genome[2 * l + 1]]))
            .collect();
        let skips = (0..self.k).map(|l| SkipOp::ALL[genome[2 * self.k + l]]).collect();
        let layer_agg = Some(LayerAggKind::ALL[genome[3 * self.k]]);
        Architecture { node_aggs, skips, layer_agg }
    }
}

/// Aggregators available per layer in the GraphNAS-style space. GraphNAS
/// searches attention type + aggregator jointly; we expose the same
/// functional variety through `O_n` members.
pub const GRAPHNAS_AGGS: [NodeAggKind; 8] = [
    NodeAggKind::Gcn,
    NodeAggKind::SageSum,
    NodeAggKind::SageMean,
    NodeAggKind::SageMax,
    NodeAggKind::Gat,
    NodeAggKind::GatSym,
    NodeAggKind::GatCos,
    NodeAggKind::GatLinear,
];
/// Activations searched by GraphNAS.
pub const GRAPHNAS_ACTS: [Activation; 3] = [Activation::Relu, Activation::Elu, Activation::Tanh];
/// Hidden sizes searched by GraphNAS.
pub const GRAPHNAS_HIDDEN: [usize; 4] = [8, 16, 32, 64];

/// One layer of a GraphNAS-style model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNasLayer {
    /// Aggregator kind.
    pub agg: NodeAggKind,
    /// Post-layer activation.
    pub act: Activation,
    /// Hidden width of this layer.
    pub hidden: usize,
}

/// A decoded GraphNAS-style model specification.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNasSpec {
    /// Per-layer choices.
    pub layers: Vec<GraphNasLayer>,
}

/// The GraphNAS-style search space of Table IX: per layer an aggregator
/// (8), an activation (3) and a hidden width (4) — no skip connections and
/// no layer aggregator. Mixing architecture with hyper-parameters is
/// exactly the design choice the paper criticises; for `K = 3` this space
/// has `(8·3·4)³ ≈ 8.8 × 10⁵` architectures versus SANE's `3.2 × 10⁴`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphNasSpace {
    /// Number of GNN layers `K`.
    pub k: usize,
}

impl GraphNasSpace {
    /// The categorical encoding: per layer `(agg, act, hidden)`.
    pub fn space(&self) -> CategoricalSpace {
        let mut dims = Vec::with_capacity(3 * self.k);
        for _ in 0..self.k {
            dims.push(GRAPHNAS_AGGS.len());
            dims.push(GRAPHNAS_ACTS.len());
            dims.push(GRAPHNAS_HIDDEN.len());
        }
        CategoricalSpace::new(dims)
    }

    /// Decodes a genome into a model spec.
    pub fn decode(&self, genome: &[usize]) -> GraphNasSpec {
        self.space().check(genome);
        let layers = (0..self.k)
            .map(|l| GraphNasLayer {
                agg: GRAPHNAS_AGGS[genome[3 * l]],
                act: GRAPHNAS_ACTS[genome[3 * l + 1]],
                hidden: GRAPHNAS_HIDDEN[genome[3 * l + 2]],
            })
            .collect();
        GraphNasSpec { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sane_space_size_matches_paper() {
        // Section III-C: 11³ × 2³ × 3 = 31,944 for K = 3.
        assert_eq!(SaneSpace::paper().space().size(), 31_944);
    }

    #[test]
    fn sane_encode_decode_roundtrip() {
        let space = SaneSpace { k: 3 };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let genome = space.space().sample(&mut rng);
            let arch = space.decode(&genome);
            assert_eq!(space.encode(&arch), genome);
        }
    }

    #[test]
    fn sane_space_emulates_table2_baselines() {
        // Every human-designed baseline of Table II must be expressible.
        let space = SaneSpace { k: 3 };
        for kind in NodeAggKind::ALL {
            for layer_agg in LayerAggKind::ALL {
                let arch = Architecture::uniform(kind, 3, Some(layer_agg));
                let genome = space.encode(&arch);
                assert_eq!(space.decode(&genome), arch);
            }
        }
    }

    #[test]
    fn mlp_space_size() {
        // Per layer 4 × 3, plus 2^k skips and 3 layer aggs.
        let space = MlpSpace { k: 3 };
        assert_eq!(space.space().size(), (12u128).pow(3) * 8 * 3);
        let mut rng = StdRng::seed_from_u64(0);
        let genome = space.space().sample(&mut rng);
        let arch = space.decode(&genome);
        assert_eq!(arch.depth(), 3);
        assert!(matches!(arch.node_aggs[0], AggChoice::Mlp(_, _)));
    }

    #[test]
    fn graphnas_space_is_orders_larger_than_sane() {
        let gn = GraphNasSpace { k: 3 }.space().size();
        let sane = SaneSpace { k: 3 }.space().size();
        assert!(gn > 10 * sane, "graphnas {gn} vs sane {sane}");
    }

    #[test]
    fn graphnas_decode_shapes() {
        let space = GraphNasSpace { k: 2 };
        let spec = space.decode(&[0, 0, 0, 7, 2, 3]);
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.layers[0].agg, NodeAggKind::Gcn);
        assert_eq!(spec.layers[1].agg, NodeAggKind::GatLinear);
        assert_eq!(spec.layers[1].hidden, 64);
    }

    #[test]
    fn categorical_space_checks_genomes() {
        let s = CategoricalSpace::new(vec![2, 3]);
        s.check(&[1, 2]);
        assert!(std::panic::catch_unwind(|| s.check(&[2, 0])).is_err());
        assert!(std::panic::catch_unwind(|| s.check(&[0])).is_err());
    }

    #[test]
    fn mutate_changes_exactly_one_dim() {
        let s = CategoricalSpace::new(vec![5; 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let base = s.sample(&mut rng);
        let mut mutated = base.clone();
        s.mutate(&mut mutated, &mut rng);
        let diff = base.iter().zip(&mutated).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
    }
}
