//! Training and evaluation loops shared by every searcher.
//!
//! The loops are generic over a [`NodeModel`] so the same machinery trains
//! (a) discrete [`Architecture`]s, (b) the GraphNAS per-layer-dimension
//! models of Table IX and (c) supernet-sampled paths. Transductive tasks
//! use full-batch training with masked cross-entropy; inductive
//! (multi-graph) tasks iterate the training graphs each epoch and use
//! multi-label BCE with micro-F1.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sane_autodiff::metrics::{accuracy, micro_f1};
use sane_autodiff::optim::Adam;
use sane_autodiff::{Tape, Tensor, VarStore};
use sane_data::{MultiGraphDataset, NodeDataset};
use sane_gnn::{Architecture, GnnModel, GraphContext, ModelHyper};
use sane_telemetry as tel;

use crate::obs;

/// A prepared task: dataset plus precomputed graph contexts.
#[derive(Clone)]
pub enum Task {
    /// Transductive node classification (Cora / CiteSeer / PubMed-like).
    Node(Arc<NodeTask>),
    /// Inductive multi-graph, multi-label classification (PPI-like).
    Multi(Arc<MultiTask>),
}

/// Transductive task state.
pub struct NodeTask {
    /// The dataset.
    pub data: NodeDataset,
    /// Precomputed aggregation operators.
    pub ctx: GraphContext,
}

/// Inductive task state.
pub struct MultiTask {
    /// The dataset.
    pub data: MultiGraphDataset,
    /// One context per graph (same order as `data.graphs`).
    pub ctxs: Vec<GraphContext>,
}

impl Task {
    /// Prepares a transductive task.
    pub fn node(data: NodeDataset) -> Self {
        let ctx = GraphContext::new(&data.graph);
        Task::Node(Arc::new(NodeTask { data, ctx }))
    }

    /// Prepares an inductive task.
    pub fn multi(data: MultiGraphDataset) -> Self {
        let ctxs = data.graphs.iter().map(|g| GraphContext::new(&g.graph)).collect();
        Task::Multi(Arc::new(MultiTask { data, ctxs }))
    }

    /// Task name (dataset name).
    pub fn name(&self) -> &str {
        match self {
            Task::Node(t) => &t.data.name,
            Task::Multi(t) => &t.data.name,
        }
    }

    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        match self {
            Task::Node(t) => t.data.feature_dim(),
            Task::Multi(t) => t.data.feature_dim(),
        }
    }

    /// Output dimension (classes or labels).
    pub fn num_outputs(&self) -> usize {
        match self {
            Task::Node(t) => t.data.num_classes,
            Task::Multi(t) => t.data.num_labels,
        }
    }

    /// True for multi-label (BCE / micro-F1) tasks.
    pub fn is_multilabel(&self) -> bool {
        matches!(self, Task::Multi(_))
    }
}

/// Anything that maps node features to logits on a tape.
pub trait NodeModel {
    /// Records the forward pass and returns `n x num_outputs` logits.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &VarStore,
        ctx: &GraphContext,
        features: Tensor,
        training: bool,
    ) -> Tensor;
}

impl NodeModel for GnnModel {
    fn forward(
        &self,
        tape: &mut Tape,
        store: &VarStore,
        ctx: &GraphContext,
        features: Tensor,
        training: bool,
    ) -> Tensor {
        GnnModel::forward(self, tape, store, ctx, features, training)
    }
}

/// Optimisation settings for one training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// Early-stopping patience in evaluation rounds (0 disables).
    pub patience: usize,
    /// Evaluate every `eval_every` epochs.
    pub eval_every: usize,
    /// Audit the training tape every this many epochs and emit the
    /// [`sane_autodiff::TapeReport`] as a `train.audit` telemetry event
    /// (0 disables). Debug aid for shape drift, dead parameters and NaN
    /// onset.
    pub audit_every: usize,
    /// RNG seed (weight init and dropout).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 120,
            lr: 5e-3,
            weight_decay: 5e-4,
            patience: 10,
            eval_every: 2,
            audit_every: 0,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Epochs that must elapse before early stopping may fire. BCE-trained
    /// multi-label models predict *nothing* during the first epochs (all
    /// logits start negative for sparse labels), so a flat early metric
    /// must not abort the run.
    pub(crate) fn min_epochs(&self) -> usize {
        (self.epochs / 4).max(self.patience * self.eval_every.max(1))
    }
}

/// Result of training one model once.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Best validation metric observed.
    pub val_metric: f64,
    /// Test metric at the best-validation epoch.
    pub test_metric: f64,
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
}

/// Trains any [`NodeModel`] whose parameters live in `store`.
pub fn train_model(
    task: &Task,
    model: &dyn NodeModel,
    store: &mut VarStore,
    cfg: &TrainConfig,
) -> TrainOutcome {
    match task {
        Task::Node(t) => train_transductive(t, model, store, cfg),
        Task::Multi(t) => train_inductive(t, model, store, cfg),
    }
}

/// Builds a [`GnnModel`] for `task` from `arch` + `hyper`, trains it and
/// returns the outcome. This is the evaluation oracle of the paper's
/// trial-and-error searchers.
pub fn train_architecture(
    task: &Task,
    arch: &Architecture,
    hyper: &ModelHyper,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = VarStore::new();
    let model = GnnModel::new(
        arch.clone(),
        task.feature_dim(),
        task.num_outputs(),
        hyper.clone(),
        &mut store,
        &mut rng,
    );
    train_model(task, &model, &mut store, cfg)
}

fn train_transductive(
    t: &NodeTask,
    model: &dyn NodeModel,
    store: &mut VarStore,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay);
    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    let mut since_best = 0usize;
    let mut epochs_run = 0;
    let _span = tel::phase_span_with("train", "train", &[("task", t.data.name.as_str().into())]);
    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let mut tape = Tape::new(cfg.seed.wrapping_add(epoch as u64 + 1));
        let x = tape.input(Arc::clone(&t.data.features));
        let logits = model.forward(&mut tape, store, &t.ctx, x, true);
        let loss = tape.cross_entropy(logits, &t.data.labels, &t.data.train);
        let loss_value = tape.value(loss).as_scalar();
        let mut grads = tape.backward(loss);
        if cfg.audit_every > 0 && (epoch + 1) % cfg.audit_every == 0 {
            let report = tape.audit_with_gradients(loss, Some(store), &grads);
            obs::record_audit("train.audit", epoch, &report);
        }
        let grad_norm = grads.clip_global_norm(5.0);
        opt.step(store, &grads);
        grads.recycle();
        tel::debug(
            "train.epoch",
            &[
                ("epoch", epoch.into()),
                ("loss", loss_value.into()),
                ("grad_norm", grad_norm.into()),
                ("lr", cfg.lr.into()),
            ],
        );

        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let mut eval = Tape::new(0);
            let x = eval.input(Arc::clone(&t.data.features));
            let logits = model.forward(&mut eval, store, &t.ctx, x, false);
            let lv = eval.value(logits);
            let val = accuracy(lv, &t.data.labels, &t.data.val);
            let improved = val > best_val;
            tel::debug(
                "train.eval",
                &[
                    ("epoch", epoch.into()),
                    ("val_metric", val.into()),
                    ("improved", improved.into()),
                ],
            );
            if improved {
                best_val = val;
                test_at_best = accuracy(lv, &t.data.labels, &t.data.test);
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience && epoch + 1 >= cfg.min_epochs() {
                    break;
                }
            }
        }
    }
    TrainOutcome { val_metric: best_val.max(0.0), test_metric: test_at_best, epochs_run }
}

/// Mean per-graph micro-F1 of `model` over a set of graphs (macro over
/// graphs, micro within each graph).
pub fn eval_inductive(
    t: &MultiTask,
    model: &dyn NodeModel,
    store: &VarStore,
    graph_ids: &[usize],
) -> f64 {
    let mut scores = Vec::with_capacity(graph_ids.len());
    for &gi in graph_ids {
        let g = &t.data.graphs[gi];
        let mut tape = Tape::new(0);
        let x = tape.input(Arc::clone(&g.features));
        let logits = model.forward(&mut tape, store, &t.ctxs[gi], x, false);
        let rows: Vec<u32> = (0..g.graph.num_nodes() as u32).collect();
        scores.push(micro_f1(tape.value(logits), &g.targets, &rows));
    }
    scores.iter().sum::<f64>() / scores.len().max(1) as f64
}

fn train_inductive(
    t: &MultiTask,
    model: &dyn NodeModel,
    store: &mut VarStore,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay);
    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    let mut since_best = 0usize;
    let mut epochs_run = 0;
    let _span = tel::phase_span_with("train", "train", &[("task", t.data.name.as_str().into())]);
    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let mut epoch_loss = 0.0f64;
        let mut epoch_grad_norm = 0.0f64;
        for &gi in &t.data.train_graphs {
            let g = &t.data.graphs[gi];
            let mut tape = Tape::new(cfg.seed.wrapping_add((epoch * 131 + gi) as u64));
            let x = tape.input(Arc::clone(&g.features));
            let logits = model.forward(&mut tape, store, &t.ctxs[gi], x, true);
            let rows = g.all_nodes();
            let loss = tape.bce_with_logits(logits, &g.targets, &rows);
            epoch_loss += f64::from(tape.value(loss).as_scalar());
            let mut grads = tape.backward(loss);
            if cfg.audit_every > 0 && (epoch + 1) % cfg.audit_every == 0 {
                let report = tape.audit_with_gradients(loss, Some(store), &grads);
                obs::record_audit("train.audit", epoch, &report);
            }
            epoch_grad_norm += f64::from(grads.clip_global_norm(5.0));
            opt.step(store, &grads);
            grads.recycle();
        }
        let graphs = t.data.train_graphs.len().max(1) as f64;
        tel::debug(
            "train.epoch",
            &[
                ("epoch", epoch.into()),
                ("loss", (epoch_loss / graphs).into()),
                ("grad_norm", (epoch_grad_norm / graphs).into()),
                ("lr", cfg.lr.into()),
            ],
        );

        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let val = eval_inductive(t, model, store, &t.data.val_graphs);
            let improved = val > best_val;
            tel::debug(
                "train.eval",
                &[
                    ("epoch", epoch.into()),
                    ("val_metric", val.into()),
                    ("improved", improved.into()),
                ],
            );
            if improved {
                best_val = val;
                test_at_best = eval_inductive(t, model, store, &t.data.test_graphs);
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience && epoch + 1 >= cfg.min_epochs() {
                    break;
                }
            }
        }
    }
    TrainOutcome { val_metric: best_val.max(0.0), test_metric: test_at_best, epochs_run }
}

/// Trains an architecture `repeats` times with different seeds and returns
/// the per-run test metrics (the paper reports mean ± std over 5 runs).
pub fn repeated_test_metrics(
    task: &Task,
    arch: &Architecture,
    hyper: &ModelHyper,
    cfg: &TrainConfig,
    repeats: usize,
) -> Vec<f64> {
    (0..repeats)
        .map(|r| {
            let run_cfg =
                TrainConfig { seed: cfg.seed.wrapping_add(1000 + r as u64), ..cfg.clone() };
            train_architecture(task, arch, hyper, &run_cfg).test_metric
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sane_data::{CitationConfig, PpiConfig};
    use sane_gnn::NodeAggKind;

    fn tiny_node_task() -> Task {
        Task::node(CitationConfig::cora().scaled(0.03).generate())
    }

    #[test]
    fn gcn_learns_tiny_citation_graph() {
        let task = tiny_node_task();
        let arch = Architecture::uniform(NodeAggKind::Gcn, 2, None);
        let hyper = ModelHyper { hidden: 16, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 60, patience: 0, ..TrainConfig::default() };
        let out = train_architecture(&task, &arch, &hyper, &cfg);
        // 7 classes => random is ~0.14; learning must beat it clearly.
        assert!(out.val_metric > 0.4, "val {}", out.val_metric);
        assert!(out.test_metric > 0.3, "test {}", out.test_metric);
    }

    #[test]
    fn early_stopping_cuts_epochs() {
        let task = tiny_node_task();
        let arch = Architecture::uniform(NodeAggKind::SageMean, 1, None);
        let hyper = ModelHyper { hidden: 8, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 300, patience: 3, eval_every: 1, ..TrainConfig::default() };
        let out = train_architecture(&task, &arch, &hyper, &cfg);
        assert!(out.epochs_run < 300, "early stopping never triggered");
    }

    #[test]
    fn inductive_training_beats_empty_prediction() {
        let data = PpiConfig { num_graphs: 4, ..PpiConfig::ppi().scaled(0.03) }.generate();
        let task = Task::multi(data);
        let arch = Architecture::uniform(NodeAggKind::SageSum, 2, None);
        let hyper = ModelHyper { hidden: 16, dropout: 0.2, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 40, patience: 0, ..TrainConfig::default() };
        let out = train_architecture(&task, &arch, &hyper, &cfg);
        assert!(out.test_metric > 0.3, "micro-F1 {}", out.test_metric);
    }

    /// A real GNN training tape must satisfy every op's declared contract:
    /// training with periodic audits enabled must match an unaudited run.
    #[test]
    fn audit_flag_does_not_disturb_training() {
        let task = tiny_node_task();
        let arch = Architecture::uniform(NodeAggKind::Gat, 2, Some(sane_gnn::LayerAggKind::Concat));
        let hyper = ModelHyper { hidden: 8, ..ModelHyper::default() };
        let plain_cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let audit_cfg = TrainConfig { audit_every: 3, ..plain_cfg.clone() };
        let plain = train_architecture(&task, &arch, &hyper, &plain_cfg);
        let audited = train_architecture(&task, &arch, &hyper, &audit_cfg);
        assert_eq!(plain.val_metric, audited.val_metric);
        assert_eq!(plain.test_metric, audited.test_metric);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let task = tiny_node_task();
        let arch = Architecture::uniform(NodeAggKind::Gcn, 2, None);
        let hyper = ModelHyper { hidden: 8, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let a = train_architecture(&task, &arch, &hyper, &cfg);
        let b = train_architecture(&task, &arch, &hyper, &cfg);
        assert_eq!(a.val_metric, b.val_metric);
        assert_eq!(a.test_metric, b.test_metric);
    }

    #[test]
    fn repeated_metrics_vary_with_seed() {
        let task = tiny_node_task();
        let arch = Architecture::uniform(NodeAggKind::Gcn, 1, None);
        let hyper = ModelHyper { hidden: 8, ..ModelHyper::default() };
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let runs = repeated_test_metrics(&task, &arch, &hyper, &cfg, 3);
        assert_eq!(runs.len(), 3);
    }
}
