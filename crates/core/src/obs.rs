//! Shared telemetry helpers for the search and training loops.
//!
//! Event names follow the span convention in `sane_telemetry`'s docs:
//! `<subsystem>.<what>` (`search.epoch`, `train.audit`, `ws.eval`).

use sane_autodiff::TapeReport;
use sane_telemetry as tel;

/// Softmax entropy (nats) of one probability row.
pub(crate) fn entropy(probs: &[f32]) -> f64 {
    probs
        .iter()
        .map(|&p| {
            let p = f64::from(p);
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// Emits a tape-audit report as a telemetry event and wires its per-tape
/// pool stats into the metrics registry: activity counters accumulate
/// across audits, occupancy gauges reflect the latest audit.
pub(crate) fn record_audit(scope: &'static str, epoch: usize, report: &TapeReport) {
    let level = if report.has_errors() { tel::Level::Error } else { tel::Level::Info };
    tel::event(
        level,
        scope,
        &[
            ("epoch", epoch.into()),
            ("nodes", report.num_nodes.into()),
            ("reachable", report.reachable_nodes.into()),
            ("findings", report.findings.len().into()),
            ("report", report.to_string().into()),
        ],
    );
    tel::counter_add("pool.hits", report.pool.hits);
    tel::counter_add("pool.misses", report.pool.misses);
    tel::counter_add("pool.recycled", report.pool.recycled);
    tel::counter_add("pool.dropped", report.pool.dropped);
    tel::gauge_set("pool.buffers", report.pool.buffers as f64);
    tel::gauge_set("pool.floats", report.pool.floats as f64);
    tel::gauge_set("pool.hit_rate", report.pool.hit_rate());
}
